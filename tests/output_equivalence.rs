//! The paper's central correctness requirement, tested across the whole
//! stack: given the same query and database, the serial reference,
//! mpiBLAST, and pioBLAST produce **byte-identical** output — for any
//! worker count, fragment count, platform, and volume layout.

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use blast_core::Molecule;
use mpiblast::report::{serial_report, ReportOptions};
use mpiblast::setup::{stage_fragments, stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, MpiBlastConfig, Platform};
use pioblast::PioBlastConfig;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::sampler::sample_queries;
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::Sim;

fn build_db(seed: u64, residues: u64, volume_cap: Option<u64>) -> (FormattedDb, Vec<SeqRecord>) {
    let records = generate(&SynthConfig::nr_like(seed, residues));
    let cfg = FormatDbConfig {
        title: "nr-eq".into(),
        molecule: Molecule::Protein,
        volume_residue_cap: volume_cap,
    };
    (format_records(&records, &cfg), records)
}

fn run_mpi(
    db: &FormattedDb,
    queries: &[SeqRecord],
    nprocs: usize,
    nfrags: usize,
    platform: Platform,
) -> Vec<u8> {
    let sim = Sim::new(nprocs);
    let env = ClusterEnv::new(&sim, &platform);
    let fragment_names = stage_fragments(&env.shared, db, nfrags);
    let query_path = stage_queries(&env.shared, queries);
    let cfg = MpiBlastConfig {
        platform,
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        fragment_names,
        query_path,
        output_path: "out.txt".into(),
        fault_detection: false,
    };
    sim.run(|ctx| mpiblast::run_rank(&ctx, &cfg));
    env.shared.peek("out.txt").expect("mpi output")
}

fn run_pio(
    db: &FormattedDb,
    queries: &[SeqRecord],
    nprocs: usize,
    nfrags: Option<usize>,
    platform: Platform,
    collective: bool,
) -> Vec<u8> {
    let sim = Sim::new(nprocs);
    let env = ClusterEnv::new(&sim, &platform);
    let db_alias = stage_shared_db(&env.shared, db);
    let query_path = stage_queries(&env.shared, queries);
    let cfg = PioBlastConfig {
        platform,
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "out.txt".into(),
        num_fragments: nfrags,
        collective_output: collective,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: Default::default(),
        fault: Default::default(),
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
    env.shared.peek("out.txt").expect("pio output")
}

#[test]
fn all_three_implementations_agree() {
    let (db, records) = build_db(99, 60_000, None);
    let queries = sample_queries(&records, 1200, 5);
    let oracle = serial_report(
        &SearchParams::blastp(),
        queries.clone(),
        &db,
        ReportOptions::default(),
    )
    .expect("serial oracle");
    assert!(!oracle.is_empty());
    let mpi = run_mpi(&db, &queries, 5, 4, Platform::altix());
    let pio = run_pio(&db, &queries, 5, None, Platform::altix(), true);
    assert_eq!(
        String::from_utf8_lossy(&mpi),
        String::from_utf8_lossy(&oracle),
        "mpiBLAST differs from the serial oracle"
    );
    assert_eq!(
        String::from_utf8_lossy(&pio),
        String::from_utf8_lossy(&oracle),
        "pioBLAST differs from the serial oracle"
    );
}

#[test]
fn agreement_holds_across_worker_counts() {
    let (db, records) = build_db(7, 50_000, None);
    let queries = sample_queries(&records, 800, 3);
    let reference = run_pio(&db, &queries, 3, None, Platform::altix(), true);
    for nprocs in [2usize, 4, 9] {
        let out = run_pio(&db, &queries, nprocs, None, Platform::altix(), true);
        assert_eq!(out, reference, "pio with {nprocs} procs");
        let out = run_mpi(&db, &queries, nprocs, nprocs.max(3) - 1, Platform::altix());
        assert_eq!(out, reference, "mpi with {nprocs} procs");
    }
}

#[test]
fn agreement_holds_for_weird_fragment_counts() {
    let (db, records) = build_db(13, 50_000, None);
    let queries = sample_queries(&records, 800, 3);
    let reference = run_pio(&db, &queries, 4, None, Platform::altix(), true);
    for nfrags in [1usize, 2, 17, 40] {
        let out = run_mpi(&db, &queries, 4, nfrags, Platform::altix());
        assert_eq!(out, reference, "mpi with {nfrags} fragments");
        let out = run_pio(&db, &queries, 4, Some(nfrags), Platform::altix(), true);
        assert_eq!(out, reference, "pio with {nfrags} virtual fragments");
    }
}

#[test]
fn agreement_holds_on_multivolume_databases() {
    let (db_multi, records) = build_db(21, 60_000, Some(20_000));
    assert!(db_multi.volumes.len() >= 3, "want a multi-volume database");
    let (db_single, _) = build_db(21, 60_000, None);
    let queries = sample_queries(&records, 800, 3);
    let a = run_pio(&db_multi, &queries, 5, None, Platform::altix(), true);
    let b = run_pio(&db_single, &queries, 5, None, Platform::altix(), true);
    let c = run_mpi(&db_multi, &queries, 5, 4, Platform::altix());
    assert_eq!(a, b, "volume layout must not change output");
    assert_eq!(a, c);
}

#[test]
fn agreement_holds_on_the_nfs_platform_and_without_collectives() {
    let (db, records) = build_db(31, 40_000, None);
    let queries = sample_queries(&records, 600, 3);
    let a = run_pio(&db, &queries, 4, None, Platform::altix(), true);
    let b = run_pio(&db, &queries, 4, None, Platform::blade_cluster(), true);
    let c = run_pio(&db, &queries, 4, None, Platform::blade_cluster(), false);
    let d = run_mpi(&db, &queries, 4, 3, Platform::blade_cluster());
    assert_eq!(a, b);
    assert_eq!(a, c, "independent-write ablation must not change bytes");
    assert_eq!(a, d);
}
