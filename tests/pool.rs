//! Pooled-execution invariance and shutdown tests.
//!
//! The DES engine runs ranks as resumable continuations on a worker
//! pool; the contract is that the pool width is *invisible*: any width
//! produces bit-identical reports, clocks, stats, and trace exports.
//! These tests pin that contract end to end through a full pioBLAST
//! run, and pin the panic-shutdown path: a rank-body panic must drain
//! the pool and surface a typed error, never deadlock the run.

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, PioBlastConfig};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{default_pool_threads, FaultPlan, Sim, SimDuration, SimError};
use tracelog::{chrome, Tracer};

fn small_db(seed: u64) -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(seed, 30_000));
    format_records(&recs, &FormatDbConfig::protein("nr-pool"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 17) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

/// One full pioBLAST run at an explicit pool width; returns the report
/// bytes, the Chrome trace export, the virtual wall clock, and the
/// engine stats — everything the invariance contract covers.
fn run_at_pool(
    pool: usize,
    nranks: usize,
    nfrags: usize,
    db_seed: u64,
) -> (Vec<u8>, String, u64, simcluster::engine::EngineStats) {
    let db = small_db(db_seed);
    let queries = sample_queries(&db, 2);
    let sim = Sim::with_pool(nranks, pool);
    let tracer = Tracer::new(nranks);
    sim.set_tracer(tracer.clone());
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Off,
        checkpoint: false,
        rank_compute: None,
        threads: 2,
        io: Default::default(),
        service: None,
    };
    let out = sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
    for r in &out.outputs {
        r.as_ref().expect("rank failed");
    }
    let report = env.shared.peek("results.txt").expect("report exists");
    let wall = out.elapsed.since(simcluster::SimTime::ZERO).0;
    let trace = tracer.finish(wall);
    (
        report.to_vec(),
        chrome::export_chrome(&trace, None),
        wall,
        out.stats,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Pool widths 1, 2, and ncpus (the default) produce byte-identical
    /// reports AND byte-identical trace exports for the same seed.
    #[test]
    fn pool_width_never_changes_report_or_trace_bytes(
        nranks in 3usize..=5,
        nfrags in 3usize..=6,
        db_seed in 40u64..43,
    ) {
        let base = run_at_pool(1, nranks, nfrags, db_seed);
        for pool in [2, default_pool_threads()] {
            let got = run_at_pool(pool, nranks, nfrags, db_seed);
            prop_assert_eq!(&got.0, &base.0, "report bytes diverged at pool={}", pool);
            prop_assert_eq!(&got.1, &base.1, "trace export diverged at pool={}", pool);
            prop_assert_eq!(got.2, base.2, "wall clock diverged at pool={}", pool);
            prop_assert_eq!(got.3, base.3, "engine stats diverged at pool={}", pool);
        }
    }
}

#[test]
fn rank_panic_drains_pool_and_reports_typed_error() {
    // Many ranks parked in receives across a small pool; one panics.
    // The run must return (drain, not deadlock) with the panic typed.
    for pool in [1, 2, 4] {
        let err = Sim::with_pool(12, pool)
            .try_run_faulty(FaultPlan::none(), |ctx| {
                ctx.charge(SimDuration::from_micros(ctx.rank() as u64));
                if ctx.rank() == 7 {
                    panic!("injected failure on rank 7");
                }
                let _ = ctx.recv(None, None);
            })
            .expect_err("rank 7 panics");
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 7, "pool={pool}");
                assert_eq!(message, "injected failure on rank 7");
            }
            other => panic!("pool={pool}: expected RankPanic, got {other}"),
        }
    }
}

#[test]
fn panic_mid_collective_surfaces_not_hangs() {
    // A panic inside a real pioBLAST worker body (mid-protocol, peers
    // blocked in engine receives) must surface through run's legacy
    // panic path with the same message format as the thread-per-rank
    // engine produced.
    let db = small_db(50);
    let queries = sample_queries(&db, 1);
    let sim = Sim::with_pool(4, 2);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(4),
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Off,
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    let err = sim
        .try_run_faulty(FaultPlan::none(), |ctx| {
            if ctx.rank() == 2 {
                ctx.charge(SimDuration::from_micros(3));
                panic!("worker 2 died mid-run");
            }
            pioblast::run_rank(&ctx, &cfg)
        })
        .expect_err("worker 2 panics");
    assert_eq!(err.to_string(), "rank 2 panicked: worker 2 died mid-run");
}
