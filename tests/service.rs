//! Property tests for query-stream service mode (`pioblast serve`):
//! every stream batch's per-batch report must be byte-identical to
//! running that batch's queries as an ordinary one-shot job — across
//! affinity on/off, resident-store capacities, the nonblocking I/O
//! plane, intra-rank compute slots, and single-worker kills under
//! `FaultMode::Recover`.
//!
//! Affinity and residency change *which worker* searches a fragment and
//! *whether its bytes come from the store or the file system* — neither
//! may ever change the report. The resident store is a cache, not a
//! scheduler: the deterministic metrics test pins down that it actually
//! hits (rate > 50% once the stream revisits fragments) and that a
//! zero-capacity store never does.

use std::sync::OnceLock;

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{
    FaultMode, FragmentSchedule, IoOptions, PioBlastConfig, QueryStreamPlan, ServiceMetrics,
    ServiceOptions,
};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{FaultPlan, Sim};
use tracelog::Tracer;

/// Queries the whole stream consumes (kept tiny: every proptest case
/// pays one one-shot reference run per stream batch).
const N_QUERIES: usize = 5;
const MEAN_GAP_NS: u64 = 2_000_000;

fn small_db() -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(47, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-svc"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

struct ServiceRun {
    /// Per-stream-batch report bytes (`results.txt.q<b>`).
    batches: Vec<Vec<u8>>,
    killed: Vec<usize>,
    metrics: ServiceMetrics,
}

#[allow(clippy::too_many_arguments)]
fn run_service(
    nranks: usize,
    nfrags: usize,
    plan: &QueryStreamPlan,
    resident_bytes: u64,
    affinity: bool,
    io_async: bool,
    threads: usize,
    fault: FaultMode,
    fplan: FaultPlan,
) -> ServiceRun {
    let db = small_db();
    let queries = sample_queries(&db, plan.total_queries());
    let sim = Sim::new(nranks);
    let tracer = Tracer::new(nranks);
    sim.set_tracer(tracer.clone());
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: false,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault,
        checkpoint: false,
        rank_compute: None,
        threads,
        io: IoOptions {
            io_async,
            ..Default::default()
        },
        service: Some(ServiceOptions {
            plan: plan.clone(),
            resident_bytes,
            affinity,
        }),
    };
    let out = sim.run_faulty(fplan, |ctx| pioblast::run_rank(&ctx, &cfg));
    let trace = tracer.finish(out.elapsed.since(simcluster::SimTime::ZERO).0);
    let batches = (0..plan.batches.len())
        .map(|b| {
            env.shared
                .peek(&format!("results.txt.q{b}"))
                .unwrap_or_default()
        })
        .collect();
    ServiceRun {
        batches,
        killed: out.killed,
        metrics: ServiceMetrics::from_trace(&trace),
    }
}

/// Run one stream batch's queries as an ordinary fault-free one-shot
/// job: the reference bytes its service-mode report must reproduce.
fn one_shot(nranks: usize, nfrags: usize, queries: &[SeqRecord]) -> Vec<u8> {
    let db = small_db();
    let sim = Sim::new(nranks);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: false,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Off,
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    let out = sim.run_faulty(FaultPlan::none(), |ctx| pioblast::run_rank(&ctx, &cfg));
    assert!(out.killed.is_empty());
    let bytes = env.shared.peek("results.txt").unwrap_or_default();
    assert!(!bytes.is_empty(), "reference run produced no output");
    bytes
}

/// Per-batch one-shot reference bytes for `plan` at this cluster shape.
fn references(nranks: usize, nfrags: usize, plan: &QueryStreamPlan) -> Vec<Vec<u8>> {
    let db = small_db();
    let queries = sample_queries(&db, plan.total_queries());
    let parts = plan.partition(&queries).expect("plan matches its queries");
    parts
        .iter()
        .map(|batch| one_shot(nranks, nfrags, batch))
        .collect()
}

fn fixed_plan() -> QueryStreamPlan {
    QueryStreamPlan::generate(3, 4, N_QUERIES, MEAN_GAP_NS, 42)
}

fn fixed_references() -> &'static Vec<Vec<u8>> {
    static REFS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    REFS.get_or_init(|| references(4, 9, &fixed_plan()))
}

/// Cheap deterministic guard independent of the proptest machinery: a
/// fault-free sweep over affinity x residency x the async I/O plane x
/// slot counts must reproduce every batch's one-shot bytes.
#[test]
fn service_reports_match_one_shot_runs_without_faults() {
    let plan = fixed_plan();
    let refs = fixed_references();
    for affinity in [false, true] {
        for io_async in [false, true] {
            for threads in [1, 4] {
                let resident = if affinity { 64 << 20 } else { 0 };
                let run = run_service(
                    4,
                    9,
                    &plan,
                    resident,
                    affinity,
                    io_async,
                    threads,
                    FaultMode::Off,
                    FaultPlan::none(),
                );
                assert!(run.killed.is_empty());
                assert_eq!(run.batches.len(), refs.len());
                for (b, (got, want)) in run.batches.iter().zip(refs.iter()).enumerate() {
                    assert_eq!(
                        got, want,
                        "batch {b} diverged: affinity={affinity} \
                         io_async={io_async} threads={threads}"
                    );
                }
            }
        }
    }
}

/// The resident store must actually serve re-grants: with affinity on
/// and a capacious store, every batch after the first hits (> 50% of
/// all grants once the stream revisits each fragment), while the
/// zero-capacity affinity-off baseline never hits and re-reads
/// everything. Residency must not slow the virtual clock down.
#[test]
fn affinity_reuses_resident_fragments_across_the_stream() {
    let plan = fixed_plan();
    let nbatches = plan.batches.len();
    let on = run_service(
        4,
        9,
        &plan,
        64 << 20,
        true,
        false,
        1,
        FaultMode::Off,
        FaultPlan::none(),
    );
    let off = run_service(
        4,
        9,
        &plan,
        0,
        false,
        false,
        1,
        FaultMode::Off,
        FaultPlan::none(),
    );
    assert!(on.killed.is_empty() && off.killed.is_empty());
    assert_eq!(on.metrics.queries, nbatches, "every stream batch seals");
    assert_eq!(off.metrics.queries, nbatches);

    // Grants total nfrags per batch on both sides.
    let grants = (9 * nbatches) as u64;
    assert_eq!(on.metrics.cache_hits + on.metrics.cache_misses, grants);
    assert_eq!(off.metrics.cache_hits, 0, "a zero-cap store never hits");
    assert_eq!(off.metrics.cache_misses, grants);

    // With stable affinity placement, only batch 0 misses.
    assert_eq!(on.metrics.cache_misses, 9, "only the cold batch reads");
    assert!(
        on.metrics.hit_rate() > 0.5,
        "hit rate {:.2} not > 0.5",
        on.metrics.hit_rate()
    );

    // Skipped reads can only shrink the virtual wall.
    assert!(on.metrics.wall_s <= off.metrics.wall_s);
    assert!(on.metrics.queries_per_sec >= off.metrics.queries_per_sec);
    assert!(on.metrics.p50_latency_s > 0.0);
    assert!(on.metrics.p99_latency_s >= on.metrics.p50_latency_s);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full matrix the issue names: stream plans x affinity on/off x
    /// `--io-async` x `--threads` x a single-worker kill under Recover.
    /// Every batch's report must be byte-identical to its one-shot
    /// reference, whatever the placement, residency, and recovery path.
    #[test]
    fn stream_batches_recover_byte_identically(
        nranks in 3usize..=5,
        nfrags in 4usize..=8,
        plan_seed in 0u64..64,
        affinity in any::<bool>(),
        io_async in any::<bool>(),
        threads in 1usize..=4,
        victim_seed in 0usize..64,
        kill_after in 1u64..=8,
    ) {
        // The plan seed also picks the stream shape (the vendored
        // proptest tops out at 8 strategy slots).
        let users = 1 + (plan_seed % 3) as u32;
        let nbatches = 2 + (plan_seed / 3 % 2) as usize;
        let plan = QueryStreamPlan::generate(users, nbatches, N_QUERIES, MEAN_GAP_NS, plan_seed);
        let refs = references(nranks, nfrags, &plan);
        let victim = 1 + victim_seed % (nranks - 1);
        let fplan = FaultPlan::none().kill_after_sends(victim, kill_after);
        let resident = if affinity { 64 << 20 } else { 0 };
        let run = run_service(
            nranks, nfrags, &plan, resident, affinity, io_async, threads,
            FaultMode::Recover, fplan,
        );
        // The trigger may never fire (the victim outlives its
        // kill_after-th send); either way every batch must match.
        prop_assert!(run.killed.is_empty() || run.killed == vec![victim]);
        prop_assert_eq!(run.batches.len(), refs.len());
        for (b, (got, want)) in run.batches.iter().zip(refs.iter()).enumerate() {
            prop_assert_eq!(
                got, want,
                "batch {} diverged: nranks={} nfrags={} users={} nbatches={} \
                 affinity={} io_async={} threads={} victim={} kill_after={} \
                 killed={:?}",
                b, nranks, nfrags, users, nbatches, affinity, io_async,
                threads, victim, kill_after, run.killed
            );
        }
    }
}
