//! Property and degradation tests for the nonblocking I/O plane
//! (`--io-async`).
//!
//! The async plane changes *when* bytes move — fragment read-ahead
//! overlaps input with search, checkpoint and output writes fire and
//! collect at epoch fences — but must never change *what* lands in the
//! report. The properties here drive arbitrary interleavings of
//! begin/wait orderings (schedules, strategies, batching, skewed rank
//! speeds, worker kills with operations in flight) and pin the output
//! to the synchronous plane's bytes.
//!
//! The degradation tests cover the purged panic paths: malformed setup
//! files (alias, query FASTA, volume index) and a full file system must
//! surface as typed errors on every rank — no panic, no deadlock.

use std::sync::OnceLock;

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, InputError, PioBlastConfig, PioError};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{FaultPlan, Sim};

fn small_db() -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(21, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-async"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

#[derive(Clone)]
struct Opts {
    nranks: usize,
    nfrags: usize,
    platform: Platform,
    io_async: bool,
    strategy: mpiio::IoStrategy,
    collective_input: bool,
    collective_output: bool,
    schedule: FragmentSchedule,
    fault: FaultMode,
    checkpoint: bool,
    query_batch: Option<usize>,
    rank_compute: Option<Vec<f64>>,
    threads: usize,
    plan: FaultPlan,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            nranks: 4,
            nfrags: 9,
            platform: Platform::altix(),
            io_async: false,
            strategy: mpiio::IoStrategy::TwoPhase,
            collective_input: false,
            collective_output: true,
            schedule: FragmentSchedule::Static,
            fault: FaultMode::Off,
            checkpoint: false,
            query_batch: None,
            rank_compute: None,
            threads: 1,
            plan: FaultPlan::none(),
        }
    }
}

fn run_opts(opts: Opts) -> (Vec<u8>, Vec<usize>) {
    let db = small_db();
    let queries = sample_queries(&db, 3);
    let sim = Sim::new(opts.nranks);
    let env = ClusterEnv::new(&sim, &opts.platform);
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: opts.platform.clone(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(opts.nfrags),
        collective_output: opts.collective_output,
        local_prune: false,
        query_batch: opts.query_batch,
        collective_input: opts.collective_input,
        schedule: opts.schedule,
        fault: opts.fault,
        checkpoint: opts.checkpoint,
        rank_compute: opts.rank_compute.clone(),
        threads: opts.threads,
        io: mpiio::IoOptions {
            strategy: opts.strategy,
            io_async: opts.io_async,
            ..Default::default()
        },
        service: None,
    };
    let out = sim.run_faulty(opts.plan.clone(), |ctx| pioblast::run_rank(&ctx, &cfg));
    let bytes = env.shared.peek("results.txt").unwrap_or_default();
    (bytes, out.killed)
}

fn reference_bytes() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let (bytes, killed) = run_opts(Opts::default());
        assert!(killed.is_empty());
        assert!(!bytes.is_empty(), "reference run produced no output");
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of begin/wait orderings the async plane can
    /// produce — every strategy, both platforms, static and dynamic
    /// schedules, batched epochs (handles fired during a batch's
    /// searches are collected at its fence), skewed per-rank compute
    /// speeds to shuffle which rank's operations are in flight when —
    /// yields bytes identical to the synchronous plane's.
    #[test]
    fn async_interleavings_are_byte_identical_to_sync(
        nranks in 3usize..=5,
        nfrags in 4usize..=10,
        strategy_pick in 0usize..3,
        flags in 0u32..16,
        batch_pick in 0usize..=2,
        skew in prop::collection::vec(0.5f64..2.0, 5),
    ) {
        let strategy = [
            mpiio::IoStrategy::Independent,
            mpiio::IoStrategy::Sieve,
            mpiio::IoStrategy::TwoPhase,
        ][strategy_pick];
        let (blade, dynamic) = (flags & 1 != 0, flags & 2 != 0);
        let (collective_input, collective_output) = (flags & 4 != 0, flags & 8 != 0);
        let query_batch = if batch_pick == 0 { None } else { Some(batch_pick) };
        let opts = Opts {
            nranks,
            nfrags,
            platform: if blade { Platform::blade_cluster() } else { Platform::altix() },
            io_async: true,
            strategy,
            collective_input,
            collective_output,
            schedule: if dynamic { FragmentSchedule::Dynamic } else { FragmentSchedule::Static },
            query_batch,
            rank_compute: Some(skew[..nranks].to_vec()),
            ..Opts::default()
        };
        let (bytes, killed) = run_opts(opts);
        prop_assert!(killed.is_empty());
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} strategy={} blade={} dynamic={} ci={} co={} batch={:?}",
            nranks, nfrags, strategy, blade, dynamic,
            collective_input, collective_output, query_batch
        );
    }

    /// A worker killed with asynchronous operations in flight —
    /// read-ahead reads, fire-and-collect checkpoint blobs that may
    /// straddle the kill point — must not corrupt recovery:
    /// `FaultMode::Recover` still produces the fault-free bytes. The
    /// dead rank's in-flight writes are discarded, so a half-written
    /// checkpoint decodes as garbage and the fragment is re-queued,
    /// exactly like the synchronous plane's partial write.
    #[test]
    fn kill_with_async_ops_in_flight_recovers_byte_identically(
        nranks in 3usize..=5,
        nfrags in 4usize..=10,
        victim_seed in 0usize..64,
        kill_after in 1u64..=8,
        checkpoint in any::<bool>(),
        batch_pick in 0usize..=2,
    ) {
        let victim = 1 + victim_seed % (nranks - 1);
        let query_batch = if batch_pick == 0 { None } else { Some(batch_pick) };
        let opts = Opts {
            nranks,
            nfrags,
            io_async: true,
            collective_output: false,
            schedule: FragmentSchedule::Dynamic,
            fault: FaultMode::Recover,
            checkpoint,
            query_batch,
            plan: FaultPlan::none().kill_after_sends(victim, kill_after),
            ..Opts::default()
        };
        let (bytes, killed) = run_opts(opts);
        prop_assert!(killed.is_empty() || killed == vec![victim]);
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} victim={} kill_after={} ckpt={} batch={:?} killed={:?}",
            nranks, nfrags, victim, kill_after, checkpoint, query_batch, killed
        );
    }
}

// ---------------------------------------------------------------------
// Degradation: the purged panic paths
// ---------------------------------------------------------------------

/// Run with a post-staging corruption applied to the shared store; every
/// rank must return an error (typed, no panic, no deadlock). The closure
/// may also redirect the alias path (the missing-file case).
fn run_corrupted(
    fault: FaultMode,
    corrupt: impl Fn(&parafs::SimFs, &mut String),
) -> Vec<Result<mpiblast::RankReport, PioError>> {
    let db = small_db();
    let queries = sample_queries(&db, 2);
    let sim = Sim::new(3);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let mut db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    corrupt(&env.shared, &mut db_alias);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: None,
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: if fault == FaultMode::Recover {
            FragmentSchedule::Dynamic
        } else {
            FragmentSchedule::Static
        },
        fault,
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    sim.run(|ctx| pioblast::run_rank(&ctx, &cfg)).outputs
}

fn assert_master_input_error(outputs: &[Result<mpiblast::RankReport, PioError>]) {
    match &outputs[0] {
        Err(PioError::Input(InputError::Malformed(_) | InputError::Store(_))) => {}
        other => panic!("master should fail with a typed input error, got {other:?}"),
    }
    for (rank, r) in outputs.iter().enumerate().skip(1) {
        assert!(r.is_err(), "worker {rank} should error, got {r:?}");
    }
}

#[test]
fn malformed_alias_degrades_without_abort() {
    for fault in [FaultMode::Off, FaultMode::Detect] {
        let outputs = run_corrupted(fault, |fs, alias| {
            fs.preload(alias, b"this is not an alias file".to_vec());
        });
        assert_master_input_error(&outputs);
    }
}

#[test]
fn missing_alias_degrades_without_abort() {
    let outputs = run_corrupted(FaultMode::Off, |_, alias| {
        *alias = "no-such-db.al".into();
    });
    assert_master_input_error(&outputs);
}

#[test]
fn malformed_query_fasta_degrades_without_abort() {
    for fault in [FaultMode::Off, FaultMode::Detect] {
        let outputs = run_corrupted(fault, |fs, _| {
            // Protein residues outside the alphabet fail the parse.
            fs.preload("queries.fa", b">q1\n@@##!!\n".to_vec());
        });
        assert_master_input_error(&outputs);
    }
}

#[test]
fn malformed_volume_index_degrades_without_abort() {
    let db = small_db();
    let vol = db.volumes[0].name.clone();
    for fault in [FaultMode::Off, FaultMode::Detect] {
        let outputs = run_corrupted(fault, |fs, _| {
            fs.preload(&format!("db/{vol}.idx"), vec![0xAB; 17]);
        });
        assert_master_input_error(&outputs);
    }
}

#[test]
fn full_file_system_degrades_output_to_typed_errors() {
    for io_async in [false, true] {
        let db = small_db();
        let queries = sample_queries(&db, 2);
        let sim = Sim::new(3);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        // Nothing written past this point fits: every report write
        // must surface `StoreError::NoSpace` as `PioError::Output`.
        env.shared.set_capacity(0);
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".into(),
            num_fragments: None,
            collective_output: true,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule: FragmentSchedule::Static,
            fault: FaultMode::Off,
            checkpoint: false,
            rank_compute: None,
            threads: 1,
            io: mpiio::IoOptions {
                io_async,
                ..Default::default()
            },
            service: None,
        };
        let outputs = sim.run(|ctx| pioblast::run_rank(&ctx, &cfg)).outputs;
        let writers = outputs
            .iter()
            .filter(|r| matches!(r, Err(PioError::Output(parafs::StoreError::NoSpace { .. }))))
            .count();
        assert!(
            writers > 0,
            "io_async={io_async}: at least one rank must report NoSpace, got {outputs:?}"
        );
        for (rank, r) in outputs.iter().enumerate() {
            assert!(
                r.is_err(),
                "io_async={io_async}: rank {rank} should degrade to an error, got {r:?}"
            );
        }
    }
}
