//! End-to-end nucleotide (blastn) runs: the whole stack is
//! molecule-generic, so an nt-like DNA database searches through the same
//! parallel machinery, and the three implementations still agree
//! byte-for-byte.

use blast_core::search::SearchParams;
use blast_core::Molecule;
use mpiblast::report::{serial_report, ReportOptions};
use mpiblast::setup::{stage_fragments, stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, MpiBlastConfig, Platform};
use pioblast::PioBlastConfig;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::sampler::sample_queries;
use seqfmt::synth::{generate_dna, SynthConfig};
use simcluster::Sim;

#[test]
fn blastn_all_three_implementations_agree() {
    let records = generate_dna(&SynthConfig::nt_like_dna(17, 120_000));
    assert!(records.iter().all(|r| r.molecule == Molecule::Dna));
    let cfg = FormatDbConfig {
        title: "nt-e2e".into(),
        molecule: Molecule::Dna,
        volume_residue_cap: None,
    };
    let db = format_records(&records, &cfg);
    let queries = sample_queries(&records, 3000, 9);
    let params = SearchParams::blastn();

    let oracle = serial_report(&params, queries.clone(), &db, ReportOptions::default())
        .expect("serial oracle");
    let text = String::from_utf8_lossy(&oracle);
    assert!(text.contains("BLASTN 2.2.10-sim"), "blastn banner expected");
    assert!(
        text.contains("Score = "),
        "queries sampled from nt must hit"
    );

    // pioBLAST.
    let sim = Sim::new(4);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let pio_cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastn(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "pio.txt".into(),
        num_fragments: None,
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: Default::default(),
        fault: Default::default(),
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    sim.run(|ctx| pioblast::run_rank(&ctx, &pio_cfg));
    let pio = env.shared.peek("pio.txt").unwrap();
    assert_eq!(
        String::from_utf8_lossy(&pio),
        String::from_utf8_lossy(&oracle)
    );

    // mpiBLAST.
    let sim = Sim::new(4);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let fragment_names = stage_fragments(&env.shared, &db, 3);
    let query_path = stage_queries(&env.shared, &queries);
    let mpi_cfg = MpiBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastn(),
        report: ReportOptions::default(),
        fragment_names,
        query_path,
        output_path: "mpi.txt".into(),
        fault_detection: false,
    };
    sim.run(|ctx| mpiblast::run_rank(&ctx, &mpi_cfg));
    let mpi = env.shared.peek("mpi.txt").unwrap();
    assert_eq!(mpi, oracle);
}

#[test]
fn dna_bases_are_roughly_uniform() {
    let records = generate_dna(&SynthConfig::nt_like_dna(3, 100_000));
    let mut counts = [0u64; 5];
    let mut total = 0u64;
    for r in &records {
        for &b in &r.residues {
            counts[b as usize] += 1;
            total += 1;
        }
    }
    for (base, &count) in counts.iter().enumerate().take(4) {
        let f = count as f64 / total as f64;
        assert!((0.2..0.3).contains(&f), "base {base} frequency {f}");
    }
    assert_eq!(counts[4], 0, "no N bases generated");
}
