//! Cross-crate behavioural tests of the simulated cluster runs: phase
//! accounting, file-system traffic, determinism, and the paper's headline
//! performance orderings at test scale.

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::report::ReportOptions;
use mpiblast::setup::{stage_fragments, stage_queries, stage_shared_db};
use mpiblast::{phases, ClusterEnv, ComputeModel, MpiBlastConfig, Platform};
use pioblast::PioBlastConfig;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::sampler::sample_queries;
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{Sim, SimDuration};

fn workload(seed: u64) -> (FormattedDb, Vec<SeqRecord>) {
    let records = generate(&SynthConfig::nr_like(seed, 80_000));
    let db = format_records(&records, &FormatDbConfig::protein("nr-beh"));
    let queries = sample_queries(&records, 1500, seed ^ 1);
    (db, queries)
}

#[test]
fn pioblast_moves_less_shared_fs_data_than_mpiblast() {
    let (db, queries) = workload(3);
    let nprocs = 5;

    // mpiBLAST on the Altix profile: fragments are copied to shared
    // scratch and read back — three traversals of the database.
    let sim = Sim::new(nprocs);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let fragment_names = stage_fragments(&env.shared, &db, nprocs - 1);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = MpiBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        fragment_names,
        query_path,
        output_path: "out.txt".into(),
        fault_detection: false,
    };
    sim.run(|ctx| mpiblast::run_rank(&ctx, &cfg));
    let mpi_counters = env.shared.counters();

    // pioBLAST: one ranged traversal.
    let sim = Sim::new(nprocs);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "out.txt".into(),
        num_fragments: None,
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: Default::default(),
        fault: Default::default(),
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
    let pio_counters = env.shared.counters();

    // On the Altix profile the scratch "local" copy lives on the shared
    // file system, so mpiBLAST traverses the database twice (copy +
    // mmap-read) where pioBLAST reads it once.
    assert!(
        pio_counters.bytes_read * 3 < mpi_counters.bytes_read * 2,
        "pio read {} bytes, mpi read {} bytes",
        pio_counters.bytes_read,
        mpi_counters.bytes_read
    );
    // mpiBLAST also writes the fragment copies; pioBLAST writes only the
    // report.
    assert!(pio_counters.bytes_written < mpi_counters.bytes_written);
}

#[test]
fn phase_totals_cover_the_run() {
    let (db, queries) = workload(5);
    let sim = Sim::new(4);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "out.txt".into(),
        num_fragments: None,
        collective_output: true,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: Default::default(),
        fault: Default::default(),
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    let outcome = sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
    let total = outcome.elapsed.since(simcluster::SimTime::ZERO);
    for (rank, report) in outcome.outputs.iter().enumerate() {
        let report = report.as_ref().expect("rank completed");
        let sum = report.phases.total();
        assert!(
            sum <= total + SimDuration::from_millis(1),
            "rank {rank}: phase sum {sum} exceeds total {total}"
        );
        if rank > 0 {
            assert!(report.phases.get(phases::SEARCH) > SimDuration::ZERO);
        }
    }
}

#[test]
fn virtual_time_is_host_independent() {
    // Two modeled runs must agree to the nanosecond, regardless of host
    // load — the property that makes the figure harnesses reproducible.
    let elapsed: Vec<u64> = (0..2)
        .map(|_| {
            let (db, queries) = workload(7);
            let sim = Sim::new(6);
            let env = ClusterEnv::new(&sim, &Platform::blade_cluster());
            let db_alias = stage_shared_db(&env.shared, &db);
            let query_path = stage_queries(&env.shared, &queries);
            let cfg = PioBlastConfig {
                platform: Platform::blade_cluster(),
                env: env.clone(),
                compute: ComputeModel::modeled(),
                params: SearchParams::blastp(),
                report: ReportOptions::default(),
                db_alias,
                query_path,
                output_path: "out.txt".into(),
                num_fragments: None,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                collective_input: false,
                schedule: Default::default(),
                fault: Default::default(),
                checkpoint: false,
                rank_compute: None,
                threads: 1,
                io: Default::default(),
                service: None,
            };
            let out = sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
            out.elapsed.0
        })
        .collect();
    assert_eq!(elapsed[0], elapsed[1]);
}

#[test]
fn measured_and_modeled_modes_agree_on_results() {
    // The compute mode only changes virtual-time charges; the report
    // bytes must be identical.
    let (db, queries) = workload(13);
    let mut outputs = Vec::new();
    for compute in [ComputeModel::modeled(), ComputeModel::measured()] {
        let sim = Sim::new(4);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env: env.clone(),
            compute,
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "out.txt".into(),
            num_fragments: None,
            collective_output: true,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule: Default::default(),
            fault: Default::default(),
            checkpoint: false,
            rank_compute: None,
            threads: 1,
            io: Default::default(),
            service: None,
        };
        sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
        outputs.push(env.shared.peek("out.txt").unwrap());
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn nfs_slows_everything_down() {
    let (db, queries) = workload(11);
    let mut totals = Vec::new();
    for platform in [Platform::altix(), Platform::blade_cluster()] {
        let sim = Sim::new(4);
        let env = ClusterEnv::new(&sim, &platform);
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: platform.clone(),
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "out.txt".into(),
            num_fragments: None,
            collective_output: true,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule: Default::default(),
            fault: Default::default(),
            checkpoint: false,
            rank_compute: None,
            threads: 1,
            io: Default::default(),
            service: None,
        };
        totals.push(sim.run(|ctx| pioblast::run_rank(&ctx, &cfg)).elapsed);
    }
    assert!(
        totals[1] > totals[0],
        "NFS run ({}) must be slower than XFS run ({})",
        totals[1],
        totals[0]
    );
}
