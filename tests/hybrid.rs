//! Property tests for intra-rank compute slots (`--threads`): the
//! sharded subject scan plus deterministic merge must be byte-identical
//! to the serial kernel for every slot count, every fragment shape, and
//! under `FaultMode::Recover` worker kills — with and without the
//! nonblocking I/O plane's fragment read-ahead, which the slot fork
//! composes with inside the worker ingest loop.
//!
//! Slot parallelism changes *virtual time* (the DES charges the max
//! slot load instead of the serial sum), so kill triggers land at
//! different protocol points than in the serial runs — which is the
//! point: recovery must re-shard re-granted fragments and still merge
//! into the exact reference bytes.

use std::sync::OnceLock;

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, IoOptions, PioBlastConfig};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{FaultPlan, Sim};

fn small_db() -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(33, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-hy"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

fn run_hybrid(
    nranks: usize,
    nfrags: usize,
    threads: usize,
    io_async: bool,
    plan: FaultPlan,
) -> (Vec<u8>, Vec<usize>) {
    let db = small_db();
    let queries = sample_queries(&db, 3);
    let sim = Sim::new(nranks);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: false,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Recover,
        checkpoint: false,
        rank_compute: None,
        threads,
        io: IoOptions {
            io_async,
            ..Default::default()
        },
        service: None,
    };
    let out = sim.run_faulty(plan, |ctx| pioblast::run_rank(&ctx, &cfg));
    let bytes = env.shared.peek("results.txt").unwrap_or_default();
    (bytes, out.killed)
}

fn reference_bytes() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let (bytes, killed) = run_hybrid(4, 9, 1, false, FaultPlan::none());
        assert!(killed.is_empty());
        assert!(!bytes.is_empty(), "reference run produced no output");
        bytes
    })
}

/// Cheap deterministic guard independent of the proptest machinery: a
/// fault-free sweep over slot counts (including oversharded ones far
/// past the subject-per-fragment count) must reproduce the serial bytes.
#[test]
fn slot_sweep_is_byte_identical_without_faults() {
    for threads in [2, 3, 4, 8, 16] {
        for io_async in [false, true] {
            let (bytes, killed) = run_hybrid(4, 9, threads, io_async, FaultPlan::none());
            assert!(killed.is_empty());
            assert_eq!(
                &bytes[..],
                reference_bytes(),
                "threads={threads} io_async={io_async} diverged from serial"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full matrix: shard counts x fragment shapes x recovery kills
    /// x the async I/O plane. Whatever the virtual-time interleaving,
    /// the merged report must be the serial fault-free bytes.
    #[test]
    fn sharded_scan_recovers_byte_identically(
        nranks in 3usize..=5,
        nfrags in 4usize..=10,
        threads in 1usize..=6,
        io_async in any::<bool>(),
        victim_seed in 0usize..64,
        kill_after in 1u64..=8,
    ) {
        let victim = 1 + victim_seed % (nranks - 1);
        let plan = FaultPlan::none().kill_after_sends(victim, kill_after);
        let (bytes, killed) = run_hybrid(nranks, nfrags, threads, io_async, plan);
        // The trigger may never fire (the victim finishes before its
        // kill_after-th send); either way the bytes must match.
        prop_assert!(killed.is_empty() || killed == vec![victim]);
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} threads={} io_async={} victim={} kill_after={} killed={:?}",
            nranks, nfrags, threads, io_async, victim, kill_after, killed
        );
    }
}
