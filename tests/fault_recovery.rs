//! Property test for the fault-recovery protocol: under an arbitrary
//! single-worker failure — any victim rank, any kill point in the
//! protocol — a Dynamic-schedule pioBLAST run in `FaultMode::Recover`
//! produces output byte-identical to a fault-free run.
//!
//! The kill trigger counts the victim's *sends* (initial fragment
//! request, per-grant acks, submission, merge acknowledgment), so the
//! sampled kill points land at every stage of the master/worker
//! exchange. Triggers past the victim's last send simply never fire;
//! the run then completes fault-free and must still match the
//! reference, so both branches of the property are meaningful.

use std::sync::OnceLock;

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, PioBlastConfig};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{FaultPlan, Sim};

fn small_db() -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(21, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-ft"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

fn run_recover_opts(
    nranks: usize,
    nfrags: usize,
    query_batch: Option<usize>,
    checkpoint: bool,
    collective_input: bool,
    plan: FaultPlan,
) -> (Vec<u8>, Vec<usize>) {
    let db = small_db();
    let queries = sample_queries(&db, 3);
    let sim = Sim::new(nranks);
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: false,
        local_prune: false,
        query_batch,
        collective_input,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Recover,
        checkpoint,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    let out = sim.run_faulty(plan, |ctx| pioblast::run_rank(&ctx, &cfg));
    let bytes = env.shared.peek("results.txt").unwrap_or_default();
    (bytes, out.killed)
}

fn run_recover(nranks: usize, nfrags: usize, plan: FaultPlan) -> (Vec<u8>, Vec<usize>) {
    run_recover_opts(nranks, nfrags, None, false, false, plan)
}

fn reference_bytes() -> &'static [u8] {
    static REF: OnceLock<Vec<u8>> = OnceLock::new();
    REF.get_or_init(|| {
        let (bytes, killed) = run_recover(4, 9, FaultPlan::none());
        assert!(killed.is_empty());
        assert!(!bytes.is_empty(), "reference run produced no output");
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_single_worker_failure_recovers_byte_identically(
        nranks in 3usize..=5,
        nfrags in 4usize..=10,
        victim_seed in 0usize..64,
        kill_after in 1u64..=8,
    ) {
        let victim = 1 + victim_seed % (nranks - 1);
        let plan = FaultPlan::none().kill_after_sends(victim, kill_after);
        let (bytes, killed) = run_recover(nranks, nfrags, plan);
        // The trigger may never fire (the victim finishes before its
        // kill_after-th send); either way the bytes must match.
        prop_assert!(killed.is_empty() || killed == vec![victim]);
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} victim={} kill_after={} killed={:?}",
            nranks, nfrags, victim, kill_after, killed
        );
    }

    /// Query batching multiplies the protocol cycle: every batch replays
    /// the distribute/collect/write exchange, so a kill can land in any
    /// batch — including at a batch boundary, where the victim holds
    /// nothing. With or without fragment checkpointing, the recovered
    /// output must stay byte-identical to the fault-free reference.
    #[test]
    fn kill_during_any_batch_of_a_batched_run_recovers_byte_identically(
        nranks in 3usize..=4,
        nfrags in 4usize..=8,
        query_batch in 1usize..=2,
        victim_seed in 0usize..64,
        kill_after in 1u64..=14,
        checkpoint in any::<bool>(),
    ) {
        let victim = 1 + victim_seed % (nranks - 1);
        let plan = FaultPlan::none().kill_after_sends(victim, kill_after);
        let (bytes, killed) =
            run_recover_opts(nranks, nfrags, Some(query_batch), checkpoint, false, plan);
        prop_assert!(killed.is_empty() || killed == vec![victim]);
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} batch={} victim={} kill_after={} ckpt={} killed={:?}",
            nranks, nfrags, query_batch, victim, kill_after, checkpoint, killed
        );
    }

    /// The lifted restriction: `collective_input` now composes with the
    /// dynamic schedule and `FaultMode::Recover` (the plane degrades the
    /// read pattern to per-rank sieved access off the collective path
    /// instead of rejecting the config). Under an arbitrary worker kill,
    /// with and without fragment checkpointing, aggregated input must
    /// still recover byte-identically to the plain fault-free reference.
    #[test]
    fn collective_input_under_recovery_is_byte_identical(
        nranks in 3usize..=5,
        nfrags in 4usize..=10,
        victim_seed in 0usize..64,
        kill_after in 1u64..=8,
        checkpoint in any::<bool>(),
    ) {
        let victim = 1 + victim_seed % (nranks - 1);
        let plan = FaultPlan::none().kill_after_sends(victim, kill_after);
        let (bytes, killed) =
            run_recover_opts(nranks, nfrags, None, checkpoint, true, plan);
        prop_assert!(killed.is_empty() || killed == vec![victim]);
        prop_assert_eq!(
            &bytes[..],
            reference_bytes(),
            "nranks={} nfrags={} victim={} kill_after={} ckpt={} killed={:?}",
            nranks, nfrags, victim, kill_after, checkpoint, killed
        );
    }
}
