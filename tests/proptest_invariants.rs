//! Property-based tests of cross-crate invariants.

use blast_core::alphabet::Molecule;
use blast_core::seq::SeqRecord;
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::{virtual_fragments, FragmentData, VolumeIndex};

/// Arbitrary small protein records (encoded residues 0..20).
fn arb_records() -> impl Strategy<Value = Vec<SeqRecord>> {
    prop::collection::vec(
        (prop::collection::vec(0u8..20, 1..80), "[a-z]{1,12}"),
        1..24,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (residues, name))| SeqRecord {
                defline: format!("gi|{i}| {name}"),
                residues,
                molecule: Molecule::Protein,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// formatdb -> reader round-trips every residue and defline, for any
    /// record set and any volume cap.
    #[test]
    fn formatdb_round_trips(records in arb_records(), cap in prop::option::of(20u64..200)) {
        let cfg = FormatDbConfig {
            title: "prop".into(),
            molecule: Molecule::Protein,
            volume_residue_cap: cap,
        };
        let db = format_records(&records, &cfg);
        // Indexes decode from their own bytes.
        let mut seen = 0usize;
        for vol in &db.volumes {
            let decoded = VolumeIndex::decode(&vol.idx).unwrap();
            prop_assert_eq!(&decoded, &vol.index);
            let frag = FragmentData::from_volume(vol);
            use blast_core::search::SubjectSource;
            for i in 0..frag.num_subjects() {
                let s = frag.subject(i);
                let orig = &records[seen];
                prop_assert_eq!(s.residues, &orig.residues[..]);
                prop_assert_eq!(s.defline, orig.defline.as_bytes());
                prop_assert_eq!(s.oid as usize, seen);
                seen += 1;
            }
        }
        prop_assert_eq!(seen, records.len());
    }

    /// Virtual fragmentation is a partition: disjoint, covering, in
    /// order, for any record set and any requested fragment count; and
    /// materializing a fragment from its byte ranges equals slicing the
    /// volume directly.
    #[test]
    fn virtual_fragments_partition(records in arb_records(), n in 1usize..40) {
        let db = format_records(&records, &FormatDbConfig::protein("prop"));
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, n);
        let mut oid = 0u64;
        for spec in &specs {
            prop_assert_eq!(spec.base_oid, oid);
            prop_assert!(spec.num_seqs() > 0);
            oid += spec.num_seqs();

            let vol = &db.volumes[spec.volume];
            let reference = FragmentData::from_volume_slice(vol, spec);
            let idx_seq = &vol.idx[spec.idx_seq_range.0 as usize..spec.idx_seq_range.1 as usize];
            let idx_hdr = &vol.idx[spec.idx_hdr_range.0 as usize..spec.idx_hdr_range.1 as usize];
            let seq = vol.seq[spec.seq_range.0 as usize..spec.seq_range.1 as usize].to_vec();
            let hdr = vol.hdr[spec.hdr_range.0 as usize..spec.hdr_range.1 as usize].to_vec();
            let from_ranges = FragmentData::from_ranges(
                Molecule::Protein, spec.base_oid, idx_seq, idx_hdr, seq, hdr,
            ).unwrap();
            prop_assert_eq!(from_ranges, reference);
        }
        prop_assert_eq!(oid, records.len() as u64);
    }

    /// FASTA write -> parse is the identity on encoded records, for any
    /// wrap width.
    #[test]
    fn fasta_round_trips(records in arb_records(), width in 1usize..100) {
        let text = blast_core::fasta::to_string(&records, width);
        let parsed = blast_core::fasta::parse(Molecule::Protein, text.as_bytes()).unwrap();
        prop_assert_eq!(parsed, records);
    }
}

mod collective_io {
    use super::*;
    use mpiio::{CollectiveHints, FileView, MpiFile};
    use mpisim::{Comm, NetProfile};
    use parafs::{FsProfile, SimFs};
    use simcluster::Sim;

    /// Per-rank disjoint region sets over a shared record grid.
    fn arb_layout() -> impl Strategy<Value = (usize, Vec<Vec<u64>>, usize)> {
        (2usize..6, 1usize..5, 1usize..40, 1usize..5).prop_flat_map(
            |(nranks, aggs, nrec, reclen)| {
                // Assign each record to a rank.
                prop::collection::vec(0..nranks, nrec)
                    .prop_map(move |owners| {
                        let mut per_rank: Vec<Vec<u64>> = vec![Vec::new(); nranks];
                        for (rec, owner) in owners.iter().enumerate() {
                            per_rank[*owner].push((rec * reclen) as u64);
                        }
                        (nranks, per_rank, reclen)
                    })
                    .prop_map(move |(nranks, per_rank, reclen)| {
                        let _ = aggs;
                        (nranks, per_rank, reclen)
                    })
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A two-phase collective write of any disjoint record layout
        /// produces exactly the bytes a serial writer would.
        #[test]
        fn collective_write_equals_serial((nranks, per_rank, reclen) in arb_layout(), aggs in 1usize..5) {
            let sim = Sim::new(nranks);
            let fs = SimFs::new(sim.handle(), "prop", FsProfile::altix_xfs());
            let fs2 = fs.clone();
            let per_rank2 = per_rank.clone();
            sim.run(move |ctx| {
                let comm = Comm::new(&ctx, NetProfile { latency: 1e-6, bandwidth: 1e9 });
                let offsets = &per_rank2[ctx.rank()];
                let regions: Vec<(u64, u64)> =
                    offsets.iter().map(|&o| (o, reclen as u64)).collect();
                let view = FileView::new(0, regions).unwrap();
                let data: Vec<u8> = offsets
                    .iter()
                    .flat_map(|&o| vec![(o / reclen as u64) as u8; reclen])
                    .collect();
                let file = MpiFile::open(&comm, &fs2, "f")
                    .with_hints(CollectiveHints { aggregators: aggs });
                file.write_at_all(&view, &data);
            });
            // Serial oracle.
            let total: usize = per_rank.iter().map(|v| v.len()).sum();
            if total > 0 {
                let max_off = per_rank
                    .iter()
                    .flatten()
                    .max()
                    .map(|&o| o as usize + reclen)
                    .unwrap();
                let mut expect = vec![0u8; max_off];
                for offsets in &per_rank {
                    for &o in offsets {
                        for i in 0..reclen {
                            expect[o as usize + i] = (o / reclen as u64) as u8;
                        }
                    }
                }
                prop_assert_eq!(fs.peek("f").unwrap(), expect);
            }
        }

        /// A two-phase collective read of any disjoint record layout
        /// returns exactly the bytes a serial reader would, in view order.
        #[test]
        fn collective_read_equals_serial((nranks, per_rank, reclen) in arb_layout(), aggs in 1usize..5) {
            let total_recs: usize = per_rank.iter().map(|v| v.len()).sum();
            if total_recs == 0 {
                return Ok(());
            }
            let file_len = per_rank
                .iter()
                .flatten()
                .max()
                .map(|&o| o as usize + reclen)
                .unwrap();
            let content: Vec<u8> = (0..file_len).map(|i| (i % 251) as u8).collect();
            let sim = Sim::new(nranks);
            let fs = SimFs::new(sim.handle(), "prop", FsProfile::altix_xfs());
            fs.preload("f", content.clone());
            let fs2 = fs.clone();
            let per_rank2 = per_rank.clone();
            let out = sim.run(move |ctx| {
                let comm = Comm::new(&ctx, NetProfile { latency: 1e-6, bandwidth: 1e9 });
                let offsets = &per_rank2[ctx.rank()];
                let regions: Vec<(u64, u64)> =
                    offsets.iter().map(|&o| (o, reclen as u64)).collect();
                let view = FileView::new(0, regions).unwrap();
                let file = MpiFile::open(&comm, &fs2, "f")
                    .with_hints(CollectiveHints { aggregators: aggs });
                file.read_at_all(&view).unwrap()
            });
            for (rank, got) in out.outputs.iter().enumerate() {
                let expect: Vec<u8> = per_rank[rank]
                    .iter()
                    .flat_map(|&o| content[o as usize..o as usize + reclen].to_vec())
                    .collect();
                prop_assert_eq!(got, &expect, "rank {}", rank);
            }
        }
    }
}
