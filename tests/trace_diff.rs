//! Golden tests for trace diffing (`tracelog::diff`, surfaced as the
//! `pioblast-sim trace-diff` subcommand).
//!
//! The diff aligns two exported runs by `(rank, lane, phase)` and must
//! name the lane that actually moved:
//!
//! * `--threads 4` vs serial: the divergence is in the Search
//!   compute-slot sub-lanes (`search slot k`) — threading reshapes the
//!   search timeline and nothing about the report;
//! * `--io-async` vs sync: the divergence includes the Io lane — the
//!   read-ahead plane overlaps reads that the sync plane serializes;
//! * identical configurations: the diff is empty, byte-for-byte — the
//!   determinism contract seen through the diff tool.

use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, IoOptions, PioBlastConfig};
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::Sim;
use tracelog::diff::{diff_profiles, profile_chrome, render_diff, TraceDiff};
use tracelog::{chrome, Tracer};

fn small_db(seed: u64) -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(seed, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-diff"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

/// Run a modeled pioBLAST job and return its Chrome export plus the
/// report bytes.
fn run_export(threads: usize, io_async: bool) -> (String, Vec<u8>) {
    let db = small_db(33);
    let queries = sample_queries(&db, 3);
    let sim = Sim::new(4);
    let tracer = Tracer::new(4);
    sim.set_tracer(tracer.clone());
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(6),
        collective_output: false,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault: FaultMode::Off,
        checkpoint: false,
        rank_compute: None,
        threads,
        io: IoOptions {
            io_async,
            ..Default::default()
        },
        service: None,
    };
    let out = sim.run(|ctx| pioblast::run_rank(&ctx, &cfg));
    for r in &out.outputs {
        r.as_ref().expect("rank failed");
    }
    let report = env.shared.peek("results.txt").expect("report exists");
    let trace = tracer.finish(out.elapsed.since(simcluster::SimTime::ZERO).0);
    (chrome::export_chrome(&trace, None), report.to_vec())
}

fn diff_of(a: &str, b: &str) -> TraceDiff {
    diff_profiles(
        &profile_chrome(a).expect("run A parses"),
        &profile_chrome(b).expect("run B parses"),
    )
}

#[test]
fn identical_runs_diff_empty() {
    let (a, _) = run_export(1, false);
    let (b, _) = run_export(1, false);
    assert_eq!(a, b, "determinism: identical configs export identically");
    let d = diff_of(&a, &b);
    assert!(d.is_empty(), "diff must be empty: {}", render_diff(&d, 20));
    assert!(render_diff(&d, 20).contains("equivalent"));
}

#[test]
fn threaded_vs_serial_diverges_in_search_slot_lanes() {
    let (serial, report_serial) = run_export(1, false);
    let (threaded, report_threaded) = run_export(4, false);
    assert_eq!(
        report_serial, report_threaded,
        "threading must not change report bytes"
    );
    let d = diff_of(&serial, &threaded);
    assert!(!d.is_empty());
    let slot_rows: Vec<_> = d
        .cluster
        .iter()
        .filter(|r| r.lane.starts_with("search slot"))
        .collect();
    assert!(
        !slot_rows.is_empty(),
        "slot sub-lanes must appear in the diff: {}",
        render_diff(&d, 20)
    );
    // Slot lanes exist only in the threaded run: the serial side of
    // every slot row is zero.
    assert!(slot_rows.iter().all(|r| r.a_ns == 0 && r.b_ns > 0));
    let text = render_diff(&d, 20);
    assert!(text.contains("search slot"), "{text}");
}

#[test]
fn async_vs_sync_io_diverges_in_io_lane() {
    let (sync, report_sync) = run_export(1, false);
    let (asynch, report_async) = run_export(1, true);
    assert_eq!(
        report_sync, report_async,
        "read-ahead must not change report bytes"
    );
    let d = diff_of(&sync, &asynch);
    assert!(!d.is_empty());
    assert!(
        d.cluster.iter().any(|r| r.lane == "io"),
        "the io lane must be named: {}",
        render_diff(&d, 20)
    );
    // With the same rank count, the per-rank section pins divergence to
    // specific ranks.
    assert!(d.per_rank.iter().any(|r| r.lane == "io"));
}
