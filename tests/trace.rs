//! Integration tests for the observability plane (`tracelog`):
//!
//! * **Determinism** — the exported Chrome trace of a modeled-compute
//!   run is byte-identical across repeated executions of the same
//!   configuration (the DES is deterministic, and so must be every
//!   layer of the trace pipeline: stamping, merging, exporting).
//! * **Recovery sequences** — a `FaultMode::Recover` run with a worker
//!   kill leaves a legible `worker_dead -> requeue -> epoch_start`
//!   record on the master's runtime lane.
//! * **Acceptance** — a 16-process blade/NFS pioBLAST run produces a
//!   validator-clean Chrome trace whose per-rank phase timelines each
//!   partition the DES wall clock exactly, and whose critical-path
//!   breakdown is exactly what `RunSummary` reports (the scaling hack
//!   is gone).

use blast_bench::runner::PHASE_PRECEDENCE;
use blast_bench::{run_traced, PioOptions, Program};
use blast_core::search::SearchParams;
use blast_core::seq::SeqRecord;
use mpiblast::setup::{stage_queries, stage_shared_db};
use mpiblast::{ClusterEnv, ComputeModel, Platform, ReportOptions};
use pioblast::{FaultMode, FragmentSchedule, PioBlastConfig};
use proptest::prelude::*;
use seqfmt::formatdb::{format_records, FormatDbConfig};
use seqfmt::synth::{generate, SynthConfig};
use seqfmt::FormattedDb;
use simcluster::{FaultPlan, Sim};
use tracelog::{analyze, chrome, Lane, Trace, Tracer};

fn small_db(seed: u64) -> FormattedDb {
    let recs = generate(&SynthConfig::nr_like(seed, 40_000));
    format_records(&recs, &FormatDbConfig::protein("nr-trace"))
}

fn sample_queries(db: &FormattedDb, n: usize) -> Vec<SeqRecord> {
    use blast_core::search::SubjectSource;
    let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
    (0..n)
        .map(|i| {
            let s = frag.subject((i * 13) % frag.num_subjects());
            SeqRecord {
                defline: format!("query_{i:05} sampled"),
                residues: s.residues.to_vec(),
                molecule: blast_core::Molecule::Protein,
            }
        })
        .collect()
}

/// Run a traced pioBLAST job (modeled compute, so virtual time — and
/// therefore the trace — is a pure function of the configuration).
fn run_pio_traced(
    nranks: usize,
    nfrags: usize,
    db_seed: u64,
    fault: FaultMode,
    plan: FaultPlan,
) -> (Trace, Vec<usize>) {
    let db = small_db(db_seed);
    let queries = sample_queries(&db, 3);
    let sim = Sim::new(nranks);
    let tracer = Tracer::new(nranks);
    sim.set_tracer(tracer.clone());
    let env = ClusterEnv::new(&sim, &Platform::altix());
    let db_alias = stage_shared_db(&env.shared, &db);
    let query_path = stage_queries(&env.shared, &queries);
    let cfg = PioBlastConfig {
        platform: Platform::altix(),
        env: env.clone(),
        compute: ComputeModel::modeled(),
        params: SearchParams::blastp(),
        report: ReportOptions::default(),
        db_alias,
        query_path,
        output_path: "results.txt".into(),
        num_fragments: Some(nfrags),
        collective_output: false,
        local_prune: false,
        query_batch: None,
        collective_input: false,
        schedule: FragmentSchedule::Dynamic,
        fault,
        checkpoint: false,
        rank_compute: None,
        threads: 1,
        io: Default::default(),
        service: None,
    };
    let out = sim.run_faulty(plan, |ctx| pioblast::run_rank(&ctx, &cfg));
    let trace = tracer.finish(out.elapsed.since(simcluster::SimTime::ZERO).0);
    (trace, out.killed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same configuration, same seed -> byte-identical Chrome export.
    #[test]
    fn traces_are_byte_identical_across_repeated_runs(
        nranks in 3usize..=4,
        nfrags in 4usize..=8,
        db_seed in 20u64..24,
    ) {
        let (a, killed_a) =
            run_pio_traced(nranks, nfrags, db_seed, FaultMode::Off, FaultPlan::none());
        let (b, killed_b) =
            run_pio_traced(nranks, nfrags, db_seed, FaultMode::Off, FaultPlan::none());
        prop_assert!(killed_a.is_empty() && killed_b.is_empty());
        prop_assert_eq!(a.wall, b.wall);
        let json_a = chrome::export_chrome(&a, None);
        let json_b = chrome::export_chrome(&b, None);
        prop_assert!(!json_a.is_empty());
        prop_assert_eq!(json_a, json_b);
    }
}

/// Runtime-lane event names on the master, in merged order, filtered to
/// the recovery vocabulary.
fn recovery_sequence(trace: &Trace) -> Vec<String> {
    trace
        .rank_events(0)
        .filter(|e| e.lane == Lane::Runtime)
        .filter(|e| matches!(e.name.as_ref(), "epoch_start" | "worker_dead" | "requeue"))
        .map(|e| e.name.to_string())
        .collect()
}

#[test]
fn recover_run_emits_dead_requeue_epoch_sequence() {
    // Kill worker 1 after its second send (initial request + first
    // grant ack): it dies holding an unfinished fragment, so recovery
    // must requeue it and re-open collection.
    let plan = FaultPlan::none().kill_after_sends(1, 2);
    let (trace, killed) = run_pio_traced(4, 6, 21, FaultMode::Recover, plan);
    assert_eq!(killed, vec![1]);

    let seq = recovery_sequence(&trace);
    let dead = seq.iter().position(|n| n == "worker_dead");
    let requeue = seq.iter().position(|n| n == "requeue");
    let dead = dead.expect("the kill must surface as worker_dead");
    let requeue = requeue.expect("the victim's fragment must be requeued");
    assert!(dead < requeue, "death precedes its requeue: {seq:?}");
    assert!(
        seq.iter()
            .rposition(|n| n == "epoch_start")
            .expect("collection must re-open")
            > requeue,
        "an epoch must start after the requeue: {seq:?}"
    );
    // Exactly one death, and its rank is the victim.
    let deaths: Vec<_> = trace
        .rank_events(0)
        .filter(|e| e.lane == Lane::Runtime && e.name == "worker_dead")
        .collect();
    assert_eq!(deaths.len(), 1);
    assert!(deaths[0]
        .args
        .iter()
        .any(|(k, v)| *k == "rank" && *v == tracelog::ArgVal::U64(1)));

    // Golden: the same plan replays to the same sequence.
    let (trace2, killed2) = run_pio_traced(4, 6, 21, FaultMode::Recover, plan_clone());
    assert_eq!(killed2, vec![1]);
    assert_eq!(seq, recovery_sequence(&trace2));
}

fn plan_clone() -> FaultPlan {
    FaultPlan::none().kill_after_sends(1, 2)
}

#[test]
fn blade_16_proc_trace_is_valid_and_matches_the_summary() {
    let workload = blast_bench::workload::nr_like(60_000, 1024, 29);
    let (summary, trace) = run_traced(
        Program::PioBlast,
        16,
        None,
        &Platform::blade_cluster(),
        &workload,
        PioOptions::default(),
    );
    assert_eq!(trace.nranks, 16);
    assert_eq!(trace.dropped, 0);
    assert!(trace.wall > 0);

    // Every rank's phase timeline partitions [0, wall] exactly.
    for rank in 0..trace.nranks {
        let totals = analyze::rank_phase_totals(&trace, rank);
        assert_eq!(totals.total(), trace.wall, "rank {rank}");
    }

    // The summary's breakdown is the trace's critical path, and it
    // partitions the wall with no rescaling.
    let path = analyze::critical_path(&trace, &PHASE_PRECEDENCE);
    assert_eq!(path.total(), trace.wall);
    let secs = |name: &str| path.get(name) as f64 / 1e9;
    assert!((summary.search - secs("search")).abs() < 1e-9);
    assert!((summary.copy_input - secs("copy") - secs("input")).abs() < 1e-9);
    assert!((summary.output - secs("output")).abs() < 1e-9);
    let parts = summary.copy_input + summary.search + summary.output + summary.other;
    assert!((parts - summary.total).abs() < 1e-9);
    assert!(summary.search > 0.0);

    // The export is validator-clean (Perfetto-loadable shape).
    let json = chrome::export_chrome(&trace, None);
    let stats = tracelog::check::validate_chrome(&json).expect("exported trace validates");
    assert_eq!(stats.ranks, 16);
    assert!(stats.spans > 0 && stats.instants > 0);

    // Lane filtering drops the excluded subsystems but stays valid.
    let filtered = chrome::export_chrome(&trace, Some(&[Lane::Phase, Lane::Search]));
    let fstats = tracelog::check::validate_chrome(&filtered).expect("filtered trace validates");
    assert!(fstats.events < stats.events);
}
