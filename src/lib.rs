//! Facade crate for the pioBLAST reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can use a
//! single dependency. Library users should depend on the member crates
//! directly ([`pioblast`], [`blast_core`], ...).
pub use blast_core;
pub use mpiblast;
pub use mpiio;
pub use mpisim;
pub use parafs;
pub use pioblast;
pub use seqfmt;
pub use simcluster;
