//! Property-based tests of [`FileView`] construction and serialization.

use mpiio::{FileView, ViewError};
use proptest::prelude::*;

/// Sorted, disjoint, non-empty regions: cumulative positive gaps/lens.
/// `min` bounds the region count from below.
fn arb_valid_regions(min: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..1000, 1u64..1000), min..32).prop_map(|gaps| {
        let mut off = 0u64;
        gaps.into_iter()
            .map(|(gap, len)| {
                let o = off + gap;
                off = o + len;
                (o, len)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode -> decode is the identity on every valid view.
    #[test]
    fn encode_decode_round_trips(disp in 0u64..1_000_000, regions in arb_valid_regions(0)) {
        let view = FileView::new(disp, regions).unwrap();
        let decoded = FileView::decode(&view.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&view));
    }

    /// decode rejects any truncation or extension of a valid encoding.
    #[test]
    fn decode_rejects_length_corruption(
        disp in 0u64..1_000_000,
        regions in arb_valid_regions(0),
        cut in 1usize..16,
        grow in any::<bool>(),
    ) {
        let bytes = FileView::new(disp, regions).unwrap().encode();
        let corrupted = if grow {
            let mut b = bytes;
            b.extend_from_slice(&[0u8; 3]);
            b
        } else {
            bytes[..bytes.len().saturating_sub(cut)].to_vec()
        };
        prop_assert_eq!(FileView::decode(&corrupted), None);
    }

    /// Swapping two adjacent distinct regions makes the list unsorted,
    /// and `new` rejects it.
    #[test]
    fn new_rejects_out_of_order_regions(
        regions in arb_valid_regions(2),
        seed in 0usize..1024,
    ) {
        let i = seed % (regions.len() - 1);
        let mut shuffled = regions;
        shuffled.swap(i, i + 1);
        prop_assert_eq!(FileView::new(0, shuffled).unwrap_err(), ViewError::Unsorted);
    }

    /// Forcing any region to overlap its predecessor's tail is rejected.
    #[test]
    fn new_rejects_overlapping_regions(
        regions in arb_valid_regions(2),
        seed in 0usize..1024,
    ) {
        let i = 1 + seed % (regions.len() - 1);
        let mut overlapped = regions;
        let (prev_off, prev_len) = overlapped[i - 1];
        overlapped[i].0 = prev_off + prev_len - 1;
        prop_assert_eq!(FileView::new(0, overlapped).unwrap_err(), ViewError::Unsorted);
    }

    /// Zero-length regions are rejected wherever they appear.
    #[test]
    fn new_rejects_empty_regions(
        regions in arb_valid_regions(1),
        seed in 0usize..1024,
    ) {
        let i = seed % regions.len();
        let mut zeroed = regions;
        zeroed[i].1 = 0;
        prop_assert_eq!(FileView::new(0, zeroed).unwrap_err(), ViewError::EmptyRegion);
    }
}
