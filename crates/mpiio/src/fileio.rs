//! MPI-IO file handles: independent I/O and two-phase collective I/O.
//!
//! The collective path implements ROMIO's *two-phase* algorithm for real:
//! ranks exchange their file views, the touched file extent is split into
//! contiguous *file domains* owned by aggregator ranks, data moves
//! point-to-point (paying interconnect costs) so each aggregator holds
//! everything destined for its domain, and the aggregators then issue a
//! small number of large sequential transfers to the file system. This is
//! what turns pioBLAST's scattered per-worker result records into the
//! "large, sequential writes" the paper credits MPI-IO for.

use bytes::Bytes;
use mpisim::{Collectives, Comm};
use parafs::{AsyncIo, SimFs, StoreError};

use crate::view::FileView;

/// Collective-I/O tuning knobs (a tiny subset of ROMIO hints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveHints {
    /// Number of aggregator ranks (`cb_nodes`).
    pub aggregators: usize,
}

impl Default for CollectiveHints {
    fn default() -> CollectiveHints {
        CollectiveHints { aggregators: 8 }
    }
}

/// Tag space used by this module (below mpisim's reserved collectives,
/// above typical application tags).
const IO_TAG_BASE: u64 = 1 << 40;

/// An open file on a simulated file system, bound to a communicator.
pub struct MpiFile<'a, 'c> {
    comm: &'a Comm<'c>,
    fs: &'a SimFs,
    path: String,
    hints: CollectiveHints,
    op_seq: std::cell::Cell<u64>,
}

impl<'a, 'c> MpiFile<'a, 'c> {
    /// Open (or create) a file collectively. Every rank charges one
    /// metadata operation, like `MPI_File_open` hitting the file system.
    pub fn open(comm: &'a Comm<'c>, fs: &'a SimFs, path: &str) -> MpiFile<'a, 'c> {
        let _ = fs.stat(comm.ctx(), path);
        MpiFile {
            comm,
            fs,
            path: path.to_string(),
            hints: CollectiveHints::default(),
            op_seq: std::cell::Cell::new(0),
        }
    }

    /// Replace the collective hints.
    pub fn with_hints(mut self, hints: CollectiveHints) -> Self {
        self.hints = hints;
        self
    }

    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Independent ranged read (`MPI_File_read_at`).
    pub fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.fs.read_at(self.comm.ctx(), &self.path, offset, len)
    }

    /// Independent ranged write (`MPI_File_write_at`). Fails with
    /// [`StoreError::NoSpace`] on a full file system.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        self.fs.write_at(self.comm.ctx(), &self.path, offset, data)
    }

    fn next_tag(&self) -> u64 {
        let s = self.op_seq.get();
        self.op_seq.set(s + 1);
        IO_TAG_BASE | (s << 8)
    }

    /// Exchange every rank's view (gather at 0, broadcast the bundle).
    fn exchange_views(&self, view: &FileView) -> Result<Vec<FileView>, StoreError> {
        let mine = Bytes::from(view.encode());
        let gathered = self.comm.gather(0, mine);
        let bundle = if self.comm.rank() == 0 {
            let views = gathered.expect("root gathers");
            let mut buf = Vec::new();
            buf.extend_from_slice(&(views.len() as u32).to_le_bytes());
            for v in &views {
                buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                buf.extend_from_slice(v);
            }
            Bytes::from(buf)
        } else {
            Bytes::new()
        };
        let bundle = self.comm.bcast(0, bundle);
        decode_view_bundle(&bundle)
    }

    /// Exchange + receive phases of a collective write: route each of my
    /// chunks to its domain's aggregator (or stash it locally if that is
    /// me), then — if I aggregate a domain — receive every expected
    /// chunk in rank order and coalesce into maximal runs. Returns the
    /// runs this rank must write (empty for non-aggregators).
    fn gather_write_runs(
        &self,
        tag: u64,
        view: &FileView,
        data: &[u8],
        all_views: &[FileView],
        domains: &Domains,
    ) -> Vec<(u64, Vec<u8>)> {
        let me = self.comm.rank();
        let mut local_chunks: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut cursor = 0usize;
        for (abs, len) in view.absolute() {
            for (d, off, piece_len) in domains.split(abs, len) {
                let slice = &data[cursor..cursor + piece_len as usize];
                cursor += piece_len as usize;
                let dst = domains.agg_rank(d);
                if dst == me {
                    local_chunks.push((off, slice.to_vec()));
                } else {
                    let mut payload = Vec::with_capacity(8 + slice.len());
                    payload.extend_from_slice(&off.to_le_bytes());
                    payload.extend_from_slice(slice);
                    self.comm.send(dst, tag, Bytes::from(payload));
                }
            }
        }
        debug_assert_eq!(cursor, data.len());

        if let Some(my_domain) = domains.domain_of(me) {
            let mut chunks: Vec<(u64, Vec<u8>)> = Vec::new();
            for (src, view) in all_views.iter().enumerate() {
                for (abs, len) in view.absolute() {
                    for (d, off, piece_len) in domains.split(abs, len) {
                        if d != my_domain {
                            continue;
                        }
                        if src == me {
                            continue; // already stashed
                        }
                        let m = self.comm.recv(Some(src), Some(tag));
                        let got_off = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
                        debug_assert_eq!(got_off, off);
                        debug_assert_eq!(m.payload.len() as u64 - 8, piece_len);
                        chunks.push((got_off, m.payload[8..].to_vec()));
                    }
                }
            }
            chunks.extend(local_chunks);
            coalesce(chunks)
        } else {
            debug_assert!(local_chunks.is_empty());
            Vec::new()
        }
    }

    /// Collective write: `data` holds the bytes of `view`'s regions, in
    /// order. All ranks must call this together (a rank with nothing to
    /// write passes an empty view). A failed run write (e.g.
    /// [`StoreError::NoSpace`]) is reported after the closing barrier so
    /// the collective stays aligned across ranks.
    pub fn write_at_all(&self, view: &FileView, data: &[u8]) -> Result<(), StoreError> {
        assert_eq!(
            data.len() as u64,
            view.total_bytes(),
            "data must exactly fill the view"
        );
        let tag = self.next_tag();
        let all_views = self.exchange_views(view)?;
        let Some(domains) = Domains::compute(&all_views, self.comm.size(), self.hints) else {
            self.comm.barrier();
            return Ok(()); // nobody is writing anything
        };
        let mut err = None;
        for (run_off, run_data) in self.gather_write_runs(tag, view, data, &all_views, &domains) {
            if let Err(e) = self
                .fs
                .write_at(self.comm.ctx(), &self.path, run_off, &run_data)
            {
                err.get_or_insert(e);
            }
        }
        self.comm.barrier();
        err.map_or(Ok(()), Err)
    }

    /// Begin a split-collective write (`MPI_File_write_at_all_begin`):
    /// the view exchange, chunk routing, and aggregator coalescing run
    /// now, and the aggregators' large writes are issued asynchronously.
    /// Every rank must call this together and later join with
    /// [`MpiFile::write_at_all_end`]; the caller may compute in between
    /// while the file-system transfers proceed in virtual time. At most
    /// one split-collective operation may be outstanding per file.
    pub fn write_at_all_begin(
        &self,
        view: &FileView,
        data: &[u8],
    ) -> Result<PendingWriteAll, StoreError> {
        assert_eq!(
            data.len() as u64,
            view.total_bytes(),
            "data must exactly fill the view"
        );
        let tag = self.next_tag();
        let all_views = self.exchange_views(view)?;
        let Some(domains) = Domains::compute(&all_views, self.comm.size(), self.hints) else {
            return Ok(PendingWriteAll { ops: Vec::new() });
        };
        let ops = self
            .gather_write_runs(tag, view, data, &all_views, &domains)
            .into_iter()
            .map(|(run_off, run_data)| {
                self.fs
                    .write_at_begin(self.comm.ctx(), &self.path, run_off, run_data)
            })
            .collect();
        Ok(PendingWriteAll { ops })
    }

    /// Join a split-collective write: wait for this rank's outstanding
    /// run writes, then barrier. Errors (e.g. a full file system at
    /// completion time) are reported after the barrier.
    pub fn write_at_all_end(&self, pend: PendingWriteAll) -> Result<(), StoreError> {
        let mut err = None;
        for op in pend.ops {
            if let Err(e) = self.fs.io_wait(self.comm.ctx(), op) {
                err.get_or_insert(e);
            }
        }
        self.comm.barrier();
        err.map_or(Ok(()), Err)
    }

    /// Every chunk of my aggregation domain across all ranks, as
    /// `(src, off, len)` in deterministic rank order (empty if I
    /// aggregate no domain).
    fn wanted_chunks(&self, all_views: &[FileView], domains: &Domains) -> Vec<(usize, u64, u64)> {
        let Some(my_domain) = domains.domain_of(self.comm.rank()) else {
            return Vec::new();
        };
        let mut wanted = Vec::new();
        for (src, view) in all_views.iter().enumerate() {
            for (abs, len) in view.absolute() {
                for (d, off, piece_len) in domains.split(abs, len) {
                    if d == my_domain {
                        wanted.push((src, off, piece_len));
                    }
                }
            }
        }
        wanted
    }

    /// Serve + assembly phases of a collective read: slice each wanted
    /// chunk out of the aggregator's run data and send it to its rank
    /// (or stash locally), then collect my own chunks in view order.
    fn serve_and_assemble(
        &self,
        tag: u64,
        view: &FileView,
        domains: &Domains,
        wanted: Vec<(usize, u64, u64)>,
        run_data: Vec<(u64, Vec<u8>)>,
    ) -> Vec<u8> {
        let me = self.comm.rank();
        let mut served: Vec<(usize, u64, Vec<u8>)> = Vec::new(); // (dst, off, data) for me
        let fetch = |off: u64, len: u64| -> Vec<u8> {
            let (ro, rd) = run_data
                .iter()
                .find(|(ro, rd)| off >= *ro && off + len <= *ro + rd.len() as u64)
                .expect("chunk lies in a coalesced run");
            rd[(off - ro) as usize..(off - ro + len) as usize].to_vec()
        };
        for (dst, off, len) in wanted {
            let piece = fetch(off, len);
            if dst == me {
                served.push((me, off, piece));
            } else {
                self.comm.send(dst, tag, Bytes::from(piece));
            }
        }

        let mut out = Vec::with_capacity(view.total_bytes() as usize);
        let mut local_iter = served.into_iter();
        for (abs, len) in view.absolute() {
            for (d, _off, piece_len) in domains.split(abs, len) {
                let agg = domains.agg_rank(d);
                if agg == me {
                    let (_, _, piece) = local_iter.next().expect("local chunk available");
                    out.extend_from_slice(&piece);
                } else {
                    let m = self.comm.recv(Some(agg), Some(tag));
                    debug_assert_eq!(m.payload.len() as u64, piece_len);
                    out.extend_from_slice(&m.payload);
                }
            }
        }
        out
    }

    /// Collective read: returns the bytes of `view`'s regions, in order.
    pub fn read_at_all(&self, view: &FileView) -> Result<Vec<u8>, StoreError> {
        let tag = self.next_tag();
        let all_views = self.exchange_views(view)?;
        let Some(domains) = Domains::compute(&all_views, self.comm.size(), self.hints) else {
            self.comm.barrier();
            return Ok(Vec::new());
        };

        // I/O phase: aggregators read coalesced runs of their domain and
        // serve every rank's chunks in deterministic order.
        let wanted = self.wanted_chunks(&all_views, &domains);
        let runs = coalesce_ranges(wanted.iter().map(|&(_, o, l)| (o, l)).collect());
        let mut run_data: Vec<(u64, Vec<u8>)> = Vec::new();
        for (o, l) in runs {
            run_data.push((o, self.fs.read_at(self.comm.ctx(), &self.path, o, l)?));
        }
        let out = self.serve_and_assemble(tag, view, &domains, wanted, run_data);
        self.comm.barrier();
        Ok(out)
    }

    /// Begin a split-collective read (`MPI_File_read_at_all_begin`): the
    /// view exchange runs now and the aggregators' large coalesced reads
    /// are issued asynchronously. Every rank must call this together and
    /// later join with [`MpiFile::read_at_all_end`]; the caller may
    /// compute in between while the transfers proceed in virtual time.
    /// At most one split-collective operation may be outstanding per
    /// file.
    pub fn read_at_all_begin(&self, view: &FileView) -> Result<PendingReadAll, StoreError> {
        let tag = self.next_tag();
        let all_views = self.exchange_views(view)?;
        let Some(domains) = Domains::compute(&all_views, self.comm.size(), self.hints) else {
            return Ok(PendingReadAll {
                tag,
                view: view.clone(),
                domains: None,
                wanted: Vec::new(),
                runs: Vec::new(),
            });
        };
        let wanted = self.wanted_chunks(&all_views, &domains);
        let mut runs = Vec::new();
        for (o, l) in coalesce_ranges(wanted.iter().map(|&(_, o, l)| (o, l)).collect()) {
            runs.push((o, self.fs.read_at_begin(self.comm.ctx(), &self.path, o, l)?));
        }
        Ok(PendingReadAll {
            tag,
            view: view.clone(),
            domains: Some(domains),
            wanted,
            runs,
        })
    }

    /// Join a split-collective read: wait for this rank's outstanding
    /// run reads, serve every rank's chunks, assemble my view's bytes,
    /// and barrier.
    pub fn read_at_all_end(&self, pend: PendingReadAll) -> Result<Vec<u8>, StoreError> {
        let PendingReadAll {
            tag,
            view,
            domains,
            wanted,
            runs,
        } = pend;
        let Some(domains) = domains else {
            self.comm.barrier();
            return Ok(Vec::new());
        };
        let mut run_data: Vec<(u64, Vec<u8>)> = Vec::new();
        for (o, op) in runs {
            run_data.push((o, self.fs.io_wait(self.comm.ctx(), op)?));
        }
        let out = self.serve_and_assemble(tag, &view, &domains, wanted, run_data);
        self.comm.barrier();
        Ok(out)
    }
}

/// This rank's outstanding half of a split-collective write (see
/// [`MpiFile::write_at_all_begin`]).
pub struct PendingWriteAll {
    ops: Vec<AsyncIo>,
}

impl PendingWriteAll {
    /// Whether every underlying transfer has already completed (the
    /// `end` call would still barrier, but not block on the file
    /// system).
    pub fn is_done(&self) -> bool {
        self.ops.iter().all(AsyncIo::is_done)
    }

    /// Earliest issue time among the outstanding transfers, in virtual
    /// nanoseconds (`None` when this rank aggregates nothing).
    pub fn issued_ns(&self) -> Option<u64> {
        self.ops.iter().map(|op| op.issued_at().0).min()
    }
}

/// This rank's outstanding half of a split-collective read (see
/// [`MpiFile::read_at_all_begin`]).
pub struct PendingReadAll {
    tag: u64,
    view: FileView,
    domains: Option<Domains>,
    wanted: Vec<(usize, u64, u64)>,
    runs: Vec<(u64, AsyncIo)>,
}

impl PendingReadAll {
    /// Whether every underlying transfer has already completed.
    pub fn is_done(&self) -> bool {
        self.runs.iter().all(|(_, op)| op.is_done())
    }

    /// Earliest issue time among the outstanding transfers, in virtual
    /// nanoseconds (`None` when this rank aggregates nothing).
    pub fn issued_ns(&self) -> Option<u64> {
        self.runs.iter().map(|(_, op)| op.issued_at().0).min()
    }
}

/// Decode the gathered-and-broadcast bundle of every rank's view.
///
/// Wire bytes are untrusted: every length is validated before slicing,
/// and malformed input comes back as [`StoreError::Corrupt`] instead of
/// a panic, so one corrupted broadcast degrades the collective rather
/// than aborting the whole run.
fn decode_view_bundle(buf: &[u8]) -> Result<Vec<FileView>, StoreError> {
    let corrupt = |what: String| StoreError::Corrupt { what };
    let header = buf
        .get(..4)
        .ok_or_else(|| corrupt("view bundle: truncated count header".into()))?;
    let n = u32::from_le_bytes(header.try_into().unwrap()) as usize;
    let mut out = Vec::new();
    let mut pos = 4usize;
    for i in 0..n {
        let frame_len = buf
            .get(pos..pos + 4)
            .ok_or_else(|| corrupt(format!("view bundle: truncated length of frame {i}")))?;
        let len = u32::from_le_bytes(frame_len.try_into().unwrap()) as usize;
        pos += 4;
        let body = buf
            .get(pos..pos + len)
            .ok_or_else(|| corrupt(format!("view bundle: frame {i} overruns the bundle")))?;
        out.push(
            FileView::decode(body)
                .ok_or_else(|| corrupt(format!("view bundle: frame {i} is not a file view")))?,
        );
        pos += len;
    }
    if pos != buf.len() {
        return Err(corrupt(format!(
            "view bundle: {} trailing bytes after {n} frames",
            buf.len() - pos
        )));
    }
    Ok(out)
}

/// The file-domain partition of one collective operation.
struct Domains {
    lo: u64,
    span: u64,
    count: usize,
    size: usize,
}

impl Domains {
    fn compute(all_views: &[FileView], size: usize, hints: CollectiveHints) -> Option<Domains> {
        let lo = all_views.iter().filter_map(|v| v.min_offset()).min()?;
        let hi = all_views
            .iter()
            .filter_map(|v| v.max_offset())
            .max()
            .expect("min implies max");
        let span = hi - lo;
        let count = hints.aggregators.clamp(1, size);
        Some(Domains {
            lo,
            span,
            count,
            size,
        })
    }

    fn bound(&self, d: usize) -> u64 {
        self.lo + self.span * d as u64 / self.count as u64
    }

    /// The aggregator rank owning domain `d` (spread across the ranks).
    fn agg_rank(&self, d: usize) -> usize {
        d * self.size / self.count
    }

    /// The domain rank `r` aggregates, if any.
    fn domain_of(&self, r: usize) -> Option<usize> {
        (0..self.count).find(|&d| self.agg_rank(d) == r)
    }

    /// Which domain contains absolute offset `off` (which must lie in the
    /// global extent).
    fn domain_containing(&self, off: u64) -> usize {
        if self.span == 0 {
            return 0;
        }
        let mut d = ((off - self.lo) as u128 * self.count as u128 / self.span as u128) as usize;
        d = d.min(self.count - 1);
        // Integer rounding can land one off; fix up.
        while d > 0 && off < self.bound(d) {
            d -= 1;
        }
        while d + 1 < self.count && off >= self.bound(d + 1) {
            d += 1;
        }
        d
    }

    /// Split `(abs, len)` at domain boundaries, yielding
    /// `(domain, offset, len)` pieces in order.
    fn split(&self, abs: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut out = Vec::new();
        let mut off = abs;
        let end = abs + len;
        while off < end {
            let d = self.domain_containing(off);
            let d_end = if d + 1 == self.count {
                u64::MAX
            } else {
                self.bound(d + 1)
            };
            let piece_end = end.min(d_end);
            out.push((d, off, piece_end - off));
            off = piece_end;
        }
        out
    }
}

/// Merge `(offset, data)` chunks into maximal contiguous runs.
fn coalesce(mut chunks: Vec<(u64, Vec<u8>)>) -> Vec<(u64, Vec<u8>)> {
    chunks.sort_by_key(|&(o, _)| o);
    let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
    for (o, d) in chunks {
        match out.last_mut() {
            Some((ro, rd)) if *ro + rd.len() as u64 == o => rd.extend_from_slice(&d),
            _ => out.push((o, d)),
        }
    }
    out
}

/// Merge `(offset, len)` ranges into maximal contiguous runs.
fn coalesce_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (o, l) in ranges {
        match out.last_mut() {
            Some((ro, rl)) if *ro + *rl >= o => {
                let end = (o + l).max(*ro + *rl);
                *rl = end - *ro;
            }
            _ => out.push((o, l)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::NetProfile;
    use parafs::FsProfile;
    use simcluster::{Sim, SimDuration};

    fn net() -> NetProfile {
        NetProfile {
            latency: 5e-6,
            bandwidth: 1e9,
        }
    }

    fn fsprofile() -> FsProfile {
        FsProfile {
            per_client_bw: 100e6,
            aggregate_bw: 400e6,
            op_latency: 1e-4,
        }
    }

    #[test]
    fn coalesce_merges_adjacent() {
        let runs = coalesce(vec![(10, vec![3, 4]), (0, vec![1, 2]), (2, vec![9])]);
        assert_eq!(runs, vec![(0, vec![1, 2, 9]), (10, vec![3, 4])]);
        assert_eq!(
            coalesce_ranges(vec![(5, 5), (0, 5), (12, 1)]),
            vec![(0, 10), (12, 1)]
        );
    }

    #[test]
    fn interleaved_collective_write_round_trips() {
        // Each of 6 ranks writes every 6th 10-byte record of 30 records.
        let sim = Sim::new(6);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file =
                MpiFile::open(&comm, &fs2, "out").with_hints(CollectiveHints { aggregators: 3 });
            let me = ctx.rank() as u64;
            let regions: Vec<(u64, u64)> = (0..5).map(|i| ((i * 6 + me) * 10, 10)).collect();
            let view = FileView::new(0, regions).unwrap();
            let data: Vec<u8> = (0..5).flat_map(|i| vec![(i * 6 + me) as u8; 10]).collect();
            file.write_at_all(&view, &data).unwrap();
        });
        let written = fs.peek("out").unwrap();
        assert_eq!(written.len(), 300);
        for rec in 0..30u64 {
            for b in &written[(rec * 10) as usize..(rec * 10 + 10) as usize] {
                assert_eq!(*b as u64, rec, "record {rec}");
            }
        }
    }

    #[test]
    fn collective_write_equals_serial_reference() {
        // Random-ish scattered views; compare against a serially-built
        // reference buffer.
        let sim = Sim::new(5);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        // Disjoint regions per rank keep the oracle exact. The file ends at
        // the last written byte (rank 4's last region).
        let file_len = (4 * 200 + 3 * 50 + 20) as usize;
        let mut reference = vec![0u8; file_len];
        let regions_of =
            |r: u64| -> Vec<(u64, u64)> { (0..4u64).map(|k| (r * 200 + k * 50, 20)).collect() };
        for r in 0..5u64 {
            for (off, len) in regions_of(r) {
                for i in 0..len {
                    reference[(off + i) as usize] = (r + 1) as u8;
                }
            }
        }
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file = MpiFile::open(&comm, &fs2, "ref");
            let r = ctx.rank() as u64;
            let view = FileView::new(0, regions_of(r)).unwrap();
            let data = vec![(r + 1) as u8; view.total_bytes() as usize];
            file.write_at_all(&view, &data).unwrap();
        });
        let written = fs.peek("ref").unwrap();
        assert_eq!(written, reference);
    }

    #[test]
    fn collective_read_returns_view_bytes() {
        let sim = Sim::new(4);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let content: Vec<u8> = (0..240u32).map(|i| (i % 251) as u8).collect();
        fs.preload("db", content.clone());
        let fs2 = fs.clone();
        let out = sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file =
                MpiFile::open(&comm, &fs2, "db").with_hints(CollectiveHints { aggregators: 2 });
            let me = ctx.rank() as u64;
            // Rank r reads bytes [60r, 60r+60) as three scattered pieces.
            let view = FileView::new(60 * me, vec![(0, 20), (20, 10), (30, 30)]).unwrap();
            file.read_at_all(&view).unwrap()
        });
        for (r, got) in out.outputs.iter().enumerate() {
            assert_eq!(&got[..], &content[60 * r..60 * (r + 1)], "rank {r}");
        }
    }

    #[test]
    fn empty_participants_are_fine() {
        let sim = Sim::new(3);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file = MpiFile::open(&comm, &fs2, "sparse");
            let view = if ctx.rank() == 1 {
                FileView::contiguous(100, 10)
            } else {
                FileView::contiguous(0, 0)
            };
            let data = vec![9u8; view.total_bytes() as usize];
            file.write_at_all(&view, &data).unwrap();
        });
        assert_eq!(fs.peek("sparse").unwrap()[100..110], [9u8; 10]);
    }

    #[test]
    fn all_empty_collective_is_a_barrier() {
        let sim = Sim::new(3);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file = MpiFile::open(&comm, &fs2, "none");
            file.write_at_all(&FileView::contiguous(0, 0), &[]).unwrap();
            let got = file.read_at_all(&FileView::contiguous(0, 0)).unwrap();
            assert!(got.is_empty());
        });
        assert!(fs.peek("none").is_err());
    }

    #[test]
    fn aggregated_writes_are_few_and_large() {
        // 8 ranks × 16 interleaved 50-byte records = 6400 bytes. With 2
        // aggregators the file system should see ~2 data writes, not 128.
        let sim = Sim::new(8);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file =
                MpiFile::open(&comm, &fs2, "agg").with_hints(CollectiveHints { aggregators: 2 });
            let me = ctx.rank() as u64;
            let regions: Vec<(u64, u64)> = (0..16).map(|i| ((i * 8 + me) * 50, 50)).collect();
            let view = FileView::new(0, regions).unwrap();
            let data = vec![me as u8; view.total_bytes() as usize];
            file.write_at_all(&view, &data).unwrap();
        });
        let c = fs.counters();
        assert_eq!(c.bytes_written, 6400);
        assert!(
            c.data_ops <= 4,
            "expected coalesced writes, saw {} data ops",
            c.data_ops
        );
    }

    #[test]
    fn malformed_view_bundles_error_instead_of_panicking() {
        // Truncated count header.
        assert!(matches!(
            decode_view_bundle(&[1, 0]),
            Err(StoreError::Corrupt { .. })
        ));
        // Count promises more frames than the bundle holds.
        assert!(matches!(
            decode_view_bundle(&2u32.to_le_bytes()),
            Err(StoreError::Corrupt { .. })
        ));
        // Frame length overruns the bundle.
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            decode_view_bundle(&buf),
            Err(StoreError::Corrupt { .. })
        ));
        // Frame bytes that do not decode as a view.
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[9, 9, 9]);
        assert!(matches!(
            decode_view_bundle(&buf),
            Err(StoreError::Corrupt { .. })
        ));
        // Trailing garbage after the last frame.
        let v = FileView::contiguous(0, 10);
        let enc = v.encode();
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        buf.extend_from_slice(&enc);
        buf.push(0);
        assert!(matches!(
            decode_view_bundle(&buf),
            Err(StoreError::Corrupt { .. })
        ));
        // The same bundle without the stray byte round-trips.
        buf.pop();
        assert_eq!(decode_view_bundle(&buf).unwrap(), vec![v]);
    }

    #[test]
    fn split_collective_write_matches_blocking_collective() {
        let sim = Sim::new(6);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file =
                MpiFile::open(&comm, &fs2, "out").with_hints(CollectiveHints { aggregators: 3 });
            let me = ctx.rank() as u64;
            let regions: Vec<(u64, u64)> = (0..5).map(|i| ((i * 6 + me) * 10, 10)).collect();
            let view = FileView::new(0, regions).unwrap();
            let data: Vec<u8> = (0..5).flat_map(|i| vec![(i * 6 + me) as u8; 10]).collect();
            let pend = file.write_at_all_begin(&view, &data).unwrap();
            ctx.charge(SimDuration::from_millis(5)); // compute while runs are in flight
            file.write_at_all_end(pend).unwrap();
        });
        let written = fs.peek("out").unwrap();
        assert_eq!(written.len(), 300);
        for rec in 0..30u64 {
            for b in &written[(rec * 10) as usize..(rec * 10 + 10) as usize] {
                assert_eq!(*b as u64, rec, "record {rec}");
            }
        }
    }

    #[test]
    fn split_collective_read_matches_blocking_collective() {
        let sim = Sim::new(4);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let content: Vec<u8> = (0..240u32).map(|i| (i % 251) as u8).collect();
        fs.preload("db", content.clone());
        let fs2 = fs.clone();
        let out = sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file =
                MpiFile::open(&comm, &fs2, "db").with_hints(CollectiveHints { aggregators: 2 });
            let me = ctx.rank() as u64;
            let view = FileView::new(60 * me, vec![(0, 20), (20, 10), (30, 30)]).unwrap();
            let sync = file.read_at_all(&view).unwrap();
            let pend = file.read_at_all_begin(&view).unwrap();
            ctx.charge(SimDuration::from_millis(2)); // compute while runs are in flight
            let split = file.read_at_all_end(pend).unwrap();
            assert_eq!(split, sync);
            split
        });
        for (r, got) in out.outputs.iter().enumerate() {
            assert_eq!(&got[..], &content[60 * r..60 * (r + 1)], "rank {r}");
        }
    }

    #[test]
    fn independent_io_works() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        let out = sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let file = MpiFile::open(&comm, &fs2, "indep");
            if ctx.rank() == 0 {
                file.write_at(0, b"hello from zero").unwrap();
                comm.send(1, 1, Bytes::new());
                Vec::new()
            } else {
                comm.recv(Some(0), Some(1));
                file.read_at(6, 9).unwrap()
            }
        });
        assert_eq!(out.outputs[1], b"from zero");
    }
}
