//! # mpiio
//!
//! MPI-IO over the simulated cluster: [`view::FileView`]s (displacement +
//! noncontiguous regions, as set by `MPI_File_set_view`), independent
//! `read_at`/`write_at`, and a faithful *two-phase collective I/O*
//! implementation ([`fileio::MpiFile::write_at_all`] /
//! [`fileio::MpiFile::read_at_all`]): view exchange, file-domain
//! partitioning across aggregator ranks, point-to-point data shuffling,
//! and large coalesced file-system transfers.
//!
//! This is the substrate behind both of pioBLAST's headline I/O moves:
//! parallel input of virtual database fragments, and collective output of
//! scattered result records into one shared report file.
//!
//! Consumers do not call `MpiFile` directly: the [`plane::IoPlane`]
//! fronts it with a typed request interface and owns the choice of
//! physical access strategy (independent, data-sieved, or two-phase
//! collective) per request.

#![warn(missing_docs)]

pub mod fileio;
pub mod plane;
pub mod view;

pub use fileio::{CollectiveHints, MpiFile};
pub use plane::{IoHandle, IoOptions, IoPlane, IoRequest, IoResponse, IoStrategy, PlaneConfig};
pub use view::{FileView, ViewError};
