//! MPI-IO file views: the noncontiguous file regions one rank will access.

/// A file view: a displacement plus an ordered list of `(offset, len)`
/// regions relative to it. Mirrors `MPI_File_set_view` with an indexed
/// filetype — exactly what pioBLAST builds so scattered result records
/// land at master-assigned offsets in the shared output file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileView {
    /// Base file offset added to every region.
    pub displacement: u64,
    /// Regions relative to `displacement`, sorted, non-overlapping,
    /// zero-length entries forbidden.
    pub regions: Vec<(u64, u64)>,
}

/// Errors constructing a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// Regions are not sorted or overlap.
    Unsorted,
    /// A region has zero length.
    EmptyRegion,
    /// Offsets overflow u64.
    Overflow,
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Unsorted => write!(f, "view regions must be sorted and disjoint"),
            ViewError::EmptyRegion => write!(f, "view regions must be non-empty"),
            ViewError::Overflow => write!(f, "view offsets overflow"),
        }
    }
}

impl std::error::Error for ViewError {}

impl FileView {
    /// A view of one contiguous range.
    pub fn contiguous(offset: u64, len: u64) -> FileView {
        FileView {
            displacement: 0,
            regions: if len == 0 {
                Vec::new()
            } else {
                vec![(offset, len)]
            },
        }
    }

    /// Build and validate a view.
    pub fn new(displacement: u64, regions: Vec<(u64, u64)>) -> Result<FileView, ViewError> {
        let mut prev_end = 0u64;
        let mut first = true;
        for &(off, len) in &regions {
            if len == 0 {
                return Err(ViewError::EmptyRegion);
            }
            let end = off.checked_add(len).ok_or(ViewError::Overflow)?;
            displacement.checked_add(end).ok_or(ViewError::Overflow)?;
            if !first && off < prev_end {
                return Err(ViewError::Unsorted);
            }
            prev_end = end;
            first = false;
        }
        Ok(FileView {
            displacement,
            regions,
        })
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|&(_, l)| l).sum()
    }

    /// Iterate absolute `(file_offset, len)` regions.
    pub fn absolute(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.regions
            .iter()
            .map(move |&(o, l)| (self.displacement + o, l))
    }

    /// Lowest absolute offset touched (`None` for an empty view).
    pub fn min_offset(&self) -> Option<u64> {
        self.regions.first().map(|&(o, _)| self.displacement + o)
    }

    /// One past the highest absolute offset touched.
    pub fn max_offset(&self) -> Option<u64> {
        self.regions.last().map(|&(o, l)| self.displacement + o + l)
    }

    /// Serialize for the collective-I/O metadata exchange.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 16 * self.regions.len());
        out.extend_from_slice(&self.displacement.to_le_bytes());
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for &(o, l) in &self.regions {
            out.extend_from_slice(&o.to_le_bytes());
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Inverse of [`FileView::encode`].
    pub fn decode(buf: &[u8]) -> Option<FileView> {
        if buf.len() < 12 {
            return None;
        }
        let displacement = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let n = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
        if buf.len() != 12 + 16 * n {
            return None;
        }
        let mut regions = Vec::with_capacity(n);
        for i in 0..n {
            let base = 12 + 16 * i;
            let o = u64::from_le_bytes(buf[base..base + 8].try_into().ok()?);
            let l = u64::from_le_bytes(buf[base + 8..base + 16].try_into().ok()?);
            regions.push((o, l));
        }
        FileView::new(displacement, regions).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_views() {
        assert_eq!(
            FileView::new(0, vec![(0, 0)]).unwrap_err(),
            ViewError::EmptyRegion
        );
        assert_eq!(
            FileView::new(0, vec![(10, 5), (12, 5)]).unwrap_err(),
            ViewError::Unsorted
        );
        assert_eq!(
            FileView::new(1, vec![(u64::MAX - 1, 2)]).unwrap_err(),
            ViewError::Overflow
        );
    }

    #[test]
    fn adjacent_regions_are_allowed() {
        let v = FileView::new(100, vec![(0, 5), (5, 5), (20, 1)]).unwrap();
        assert_eq!(v.total_bytes(), 11);
        assert_eq!(v.min_offset(), Some(100));
        assert_eq!(v.max_offset(), Some(121));
        let abs: Vec<_> = v.absolute().collect();
        assert_eq!(abs, vec![(100, 5), (105, 5), (120, 1)]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = FileView::new(7, vec![(0, 3), (10, 20)]).unwrap();
        assert_eq!(FileView::decode(&v.encode()).unwrap(), v);
        let empty = FileView::new(0, vec![]).unwrap();
        assert_eq!(FileView::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FileView::decode(b"short").is_none());
        let mut bad = FileView::contiguous(0, 5).encode();
        bad.pop();
        assert!(FileView::decode(&bad).is_none());
    }

    #[test]
    fn contiguous_of_zero_len_is_empty() {
        let v = FileView::contiguous(10, 0);
        assert_eq!(v.total_bytes(), 0);
        assert_eq!(v.min_offset(), None);
    }
}
