//! The I/O plane: one typed access interface over [`MpiFile`], with the
//! physical access strategy chosen per request.
//!
//! Consumers describe *what* they touch — database regions, scattered
//! output records, checkpoint blobs — as an [`IoRequest`]; the plane
//! decides *how* the bytes move:
//!
//! * [`IoStrategy::Independent`] issues one file-system operation per
//!   view region (the paper's default input mode).
//! * [`IoStrategy::Sieve`] applies data sieving (Thakur et al.,
//!   *Optimizing Noncontiguous Accesses in MPI-IO*): on reads, regions
//!   whose holes are at most [`IoOptions::sieve_threshold`] bytes are
//!   serviced by one larger read spanning the holes; on writes, only
//!   hole-free (strictly adjacent) regions are coalesced — the classic
//!   read-modify-write across holes is deliberately omitted, because in
//!   pioBLAST the holes of one rank's output view are exactly the
//!   records other ranks are writing concurrently.
//! * [`IoStrategy::TwoPhase`] uses the full two-phase collective path
//!   ([`MpiFile::write_at_all`]/[`MpiFile::read_at_all`]): view
//!   exchange, file-domain partitioning across aggregators, and large
//!   coalesced transfers.
//!
//! The default strategy, `TwoPhase`, is *adaptive*: it means "aggregate
//! as hard as this request's context allows". Two-phase proper requires
//! every rank of the communicator to post the request synchronously
//! ([`PlaneConfig::collective`]). When aggregation was asked for
//! ([`PlaneConfig::aggregate`]) but the context cannot synchronize —
//! grant-driven dynamic schedules, point-to-point fault modes, recovery
//! epochs — the plane degrades the request to `Sieve`: it coalesces
//! whatever views are actually posted, with no global exchange and so
//! no deadlock. This degradation is what lets `collective_input`
//! compose with dynamic scheduling and fault recovery. When aggregation
//! was not requested at all, `TwoPhase` resolves to `Independent` — the
//! paper's per-range individual I/O. Explicitly selecting `Independent`
//! or `Sieve` pins the physical access pattern regardless of context
//! (the `--io-strategy` ablation).
//!
//! Every serviced request is attributed to a [`parafs::IoClass`] tally
//! on the backing file system so benches can break traffic down by
//! strategy.

use parafs::{AsyncIo, IoClass, SimFs, StoreError};

use mpisim::Comm;

use crate::fileio::{CollectiveHints, MpiFile, PendingReadAll, PendingWriteAll};
use crate::view::FileView;

/// How a plane services noncontiguous requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoStrategy {
    /// One file-system operation per view region.
    Independent,
    /// Data sieving: coalesce regions across holes up to the sieve
    /// threshold (reads) or across zero-byte holes (writes).
    Sieve,
    /// Two-phase collective I/O where the plane is collective; degrades
    /// to `Sieve` on an aggregating non-collective plane and to
    /// `Independent` where no aggregation was requested (see the module
    /// docs).
    #[default]
    TwoPhase,
}

impl IoStrategy {
    /// The strategy's traffic-attribution class.
    pub fn class(self) -> IoClass {
        match self {
            IoStrategy::Independent => IoClass::Independent,
            IoStrategy::Sieve => IoClass::Sieved,
            IoStrategy::TwoPhase => IoClass::TwoPhase,
        }
    }

    /// A stable lowercase label (the inverse of the `FromStr` parse).
    pub fn label(self) -> &'static str {
        self.class().label()
    }
}

impl std::str::FromStr for IoStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<IoStrategy, String> {
        match s {
            "independent" => Ok(IoStrategy::Independent),
            "sieve" => Ok(IoStrategy::Sieve),
            "two-phase" | "twophase" => Ok(IoStrategy::TwoPhase),
            other => Err(format!(
                "unknown I/O strategy {other:?} (expected independent, sieve, or two-phase)"
            )),
        }
    }
}

impl std::fmt::Display for IoStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// User-facing plane knobs (the `--io-strategy`/`--sieve-threshold`
/// surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOptions {
    /// Preferred access strategy.
    pub strategy: IoStrategy,
    /// Largest hole (bytes) the sieve will read through to merge two
    /// regions into one transfer. The default (64 KiB) sits near the
    /// latency/bandwidth break-even of both modeled file systems.
    pub sieve_threshold: u64,
    /// Service data requests asynchronously (the `--io-async` knob):
    /// consumers post [`IoPlane::submit_begin`]/[`IoPlane::wait`] pairs
    /// so transfers stay in flight while the rank computes — fragment
    /// read-ahead on input, fire-and-collect on output. Off by default;
    /// the synchronous [`IoPlane::submit`] path is the paper's baseline.
    pub io_async: bool,
}

impl Default for IoOptions {
    fn default() -> IoOptions {
        IoOptions {
            strategy: IoStrategy::TwoPhase,
            sieve_threshold: 64 * 1024,
            io_async: false,
        }
    }
}

/// Full configuration of one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneConfig {
    /// Strategy and sieve knobs.
    pub options: IoOptions,
    /// Collective-I/O tuning (aggregator count).
    pub hints: CollectiveHints,
    /// Whether the run asked for aggregated (collective-style) access on
    /// this path — the `collective_input`/`collective_output` knobs.
    /// Governs what the adaptive `TwoPhase` strategy resolves to.
    pub aggregate: bool,
    /// Whether every rank of the communicator posts this plane's
    /// requests synchronously (required for two-phase proper). `false`
    /// on grant-driven schedules and point-to-point fault modes.
    /// Implies `aggregate`.
    pub collective: bool,
}

/// A typed I/O request against the plane.
#[derive(Debug)]
pub enum IoRequest<'r> {
    /// Read the given regions of a shared database file.
    DbRead {
        /// File path on the shared file system.
        path: &'r str,
        /// Regions to read.
        view: &'r FileView,
    },
    /// Write scattered output records at master-assigned offsets.
    OutputWrite {
        /// Report path on the shared file system.
        path: &'r str,
        /// Regions to write (`payload` fills them in order).
        view: &'r FileView,
        /// The regions' bytes, concatenated.
        payload: &'r [u8],
    },
    /// Persist a checkpoint blob (whole file, created or replaced).
    CheckpointPut {
        /// Blob path.
        path: &'r str,
        /// Blob bytes.
        payload: &'r [u8],
    },
    /// Fetch a checkpoint blob (whole file).
    CheckpointGet {
        /// Blob path.
        path: &'r str,
    },
    /// Drop a checkpoint blob, if present.
    CheckpointDrop {
        /// Blob path.
        path: &'r str,
    },
}

/// What a serviced request returns.
#[derive(Debug, PartialEq, Eq)]
pub enum IoResponse {
    /// The requested bytes, in view-region order.
    Data(Vec<u8>),
    /// A write/drop completed.
    Done,
}

/// An in-flight request, returned by [`IoPlane::submit_begin`] and
/// joined with [`IoPlane::wait`]. While a handle is outstanding its
/// transfers proceed in virtual time — latency and contended bandwidth
/// elapse whether or not the owning rank is computing — so only the
/// *remainder* at `wait` is exposed as I/O wait.
///
/// On the two-phase collective path the handle is the rank's half of a
/// split-collective operation: `submit_begin` and `wait` are both
/// collective calls, and at most one collective handle may be
/// outstanding per plane. Independent and sieved handles are purely
/// local; any number may be in flight (they contend for file-system
/// bandwidth like concurrent clients).
#[must_use = "every submit_begin must be paired with exactly one wait"]
pub struct IoHandle<'a, 'c> {
    op: &'static str,
    bytes: u64,
    kind: HandleKind<'a, 'c>,
}

enum HandleKind<'a, 'c> {
    /// The request was serviced (or failed) synchronously at begin time.
    Ready(Result<IoResponse, StoreError>),
    /// Independent/sieved read: in-flight run reads plus the region list
    /// for view-order assembly.
    Read {
        runs: Vec<(u64, AsyncIo)>,
        regions: Vec<(u64, u64)>,
    },
    /// Independent/sieved/checkpoint write: in-flight run writes.
    Write { ops: Vec<AsyncIo> },
    /// Split-collective read.
    CollRead {
        file: MpiFile<'a, 'c>,
        pend: PendingReadAll,
    },
    /// Split-collective write.
    CollWrite {
        file: MpiFile<'a, 'c>,
        pend: PendingWriteAll,
    },
}

impl IoHandle<'_, '_> {
    /// Whether every underlying transfer has already completed in
    /// virtual time (a `wait` would still assemble — and, on the
    /// collective path, barrier — but not block on the file system).
    pub fn is_done(&self) -> bool {
        match &self.kind {
            HandleKind::Ready(_) => true,
            HandleKind::Read { runs, .. } => runs.iter().all(|(_, op)| op.is_done()),
            HandleKind::Write { ops } => ops.iter().all(AsyncIo::is_done),
            HandleKind::CollRead { pend, .. } => pend.is_done(),
            HandleKind::CollWrite { pend, .. } => pend.is_done(),
        }
    }

    /// Earliest issue time among the handle's transfers, in virtual
    /// nanoseconds.
    fn issued_ns(&self) -> Option<u64> {
        match &self.kind {
            HandleKind::Ready(_) => None,
            HandleKind::Read { runs, .. } => runs.iter().map(|(_, op)| op.issued_at().0).min(),
            HandleKind::Write { ops } => ops.iter().map(|op| op.issued_at().0).min(),
            HandleKind::CollRead { pend, .. } => pend.issued_ns(),
            HandleKind::CollWrite { pend, .. } => pend.issued_ns(),
        }
    }
}

/// The typed access plane over one communicator and file system.
pub struct IoPlane<'a, 'c> {
    comm: &'a Comm<'c>,
    fs: &'a SimFs,
    cfg: PlaneConfig,
}

impl<'a, 'c> IoPlane<'a, 'c> {
    /// Build a plane.
    pub fn new(comm: &'a Comm<'c>, fs: &'a SimFs, cfg: PlaneConfig) -> IoPlane<'a, 'c> {
        IoPlane { comm, fs, cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    /// The strategy requests will actually be serviced under. The
    /// adaptive `TwoPhase` default resolves by context: two-phase proper
    /// on a collective plane, sieving when aggregation was requested but
    /// the ranks cannot synchronize, independent otherwise.
    pub fn effective_strategy(&self) -> IoStrategy {
        match self.cfg.options.strategy {
            IoStrategy::TwoPhase if self.cfg.collective => IoStrategy::TwoPhase,
            IoStrategy::TwoPhase if self.cfg.aggregate => IoStrategy::Sieve,
            IoStrategy::TwoPhase => IoStrategy::Independent,
            s => s,
        }
    }

    /// Whether data requests are serviced as true collectives (every
    /// rank must then post them together, and they embed a barrier).
    pub fn is_collective(&self) -> bool {
        self.effective_strategy() == IoStrategy::TwoPhase
    }

    /// Service one typed request.
    pub fn submit(&self, req: IoRequest<'_>) -> Result<IoResponse, StoreError> {
        match req {
            IoRequest::DbRead { path, view } => self.read_view(path, view).map(IoResponse::Data),
            IoRequest::OutputWrite {
                path,
                view,
                payload,
            } => {
                self.write_view(path, view, payload)?;
                Ok(IoResponse::Done)
            }
            IoRequest::CheckpointPut { path, payload } => {
                let _span = tracelog::span_args(
                    tracelog::Lane::Io,
                    "plane.ckpt.put",
                    vec![("bytes", payload.len().into())],
                );
                self.fs.create(self.comm.ctx(), path);
                self.note(IoStrategy::Independent, 1, payload.len() as u64);
                self.fs.write_at(self.comm.ctx(), path, 0, payload)?;
                Ok(IoResponse::Done)
            }
            IoRequest::CheckpointGet { path } => {
                let _span = tracelog::span(tracelog::Lane::Io, "plane.ckpt.get");
                let data = self.fs.read_all(self.comm.ctx(), path)?;
                self.note(IoStrategy::Independent, 1, data.len() as u64);
                Ok(IoResponse::Data(data))
            }
            IoRequest::CheckpointDrop { path } => {
                let _span = tracelog::span(tracelog::Lane::Io, "plane.ckpt.drop");
                self.fs.delete(self.comm.ctx(), path)?;
                Ok(IoResponse::Done)
            }
        }
    }

    // ---- convenience wrappers over `submit` ----

    /// Read a view of a database file ([`IoRequest::DbRead`]).
    pub fn db_read(&self, path: &str, view: &FileView) -> Result<Vec<u8>, StoreError> {
        match self.submit(IoRequest::DbRead { path, view })? {
            IoResponse::Data(d) => Ok(d),
            IoResponse::Done => unreachable!("reads return data"),
        }
    }

    /// Read a whole file (staging: alias, queries, volume indexes).
    pub fn read_whole(&self, path: &str) -> Result<Vec<u8>, StoreError> {
        let data = self.fs.read_all(self.comm.ctx(), path)?;
        self.note(IoStrategy::Independent, 1, data.len() as u64);
        Ok(data)
    }

    /// Write scattered records ([`IoRequest::OutputWrite`]). Writes *do*
    /// fail — a full file system surfaces as
    /// [`StoreError::NoSpace`] — and the caller must degrade, not abort.
    pub fn write_output(
        &self,
        path: &str,
        view: &FileView,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        self.submit(IoRequest::OutputWrite {
            path,
            view,
            payload,
        })
        .map(|_| ())
    }

    /// Persist a checkpoint blob ([`IoRequest::CheckpointPut`]). Fails
    /// with [`StoreError::NoSpace`] on a full file system.
    pub fn checkpoint_put(&self, path: &str, payload: &[u8]) -> Result<(), StoreError> {
        self.submit(IoRequest::CheckpointPut { path, payload })
            .map(|_| ())
    }

    /// Fetch a checkpoint blob ([`IoRequest::CheckpointGet`]).
    pub fn checkpoint_get(&self, path: &str) -> Result<Vec<u8>, StoreError> {
        match self.submit(IoRequest::CheckpointGet { path })? {
            IoResponse::Data(d) => Ok(d),
            IoResponse::Done => unreachable!("gets return data"),
        }
    }

    /// Drop a checkpoint blob ([`IoRequest::CheckpointDrop`]).
    pub fn checkpoint_drop(&self, path: &str) -> Result<(), StoreError> {
        self.submit(IoRequest::CheckpointDrop { path }).map(|_| ())
    }

    // ---- asynchronous submission ----

    /// Begin servicing a request without blocking on the file system,
    /// returning a handle to [`IoPlane::wait`] on. Reads and writes stay
    /// in flight — contending for bandwidth like any concurrent
    /// client — while the rank computes; `wait` exposes only the
    /// remainder. Under the two-phase strategy this is a split
    /// collective (every rank must post begin and wait together);
    /// checkpoint gets/drops and begin-time failures resolve immediately
    /// into a ready handle.
    pub fn submit_begin(&self, req: IoRequest<'_>) -> IoHandle<'a, 'c> {
        let strategy = self.effective_strategy();
        let (op, bytes) = match &req {
            IoRequest::DbRead { view, .. } => ("db_read", view.total_bytes()),
            IoRequest::OutputWrite { payload, .. } => ("output_write", payload.len() as u64),
            IoRequest::CheckpointPut { payload, .. } => ("ckpt_put", payload.len() as u64),
            IoRequest::CheckpointGet { .. } => ("ckpt_get", 0),
            IoRequest::CheckpointDrop { .. } => ("ckpt_drop", 0),
        };
        tracelog::instant(
            tracelog::Lane::Io,
            "plane.async.begin",
            vec![
                ("op", op.into()),
                ("strategy", strategy.label().into()),
                ("bytes", bytes.into()),
            ],
        );
        let kind = match req {
            IoRequest::DbRead { path, view } => {
                self.note(strategy, view.regions.len() as u64, view.total_bytes());
                match strategy {
                    IoStrategy::TwoPhase => {
                        let file =
                            MpiFile::open(self.comm, self.fs, path).with_hints(self.cfg.hints);
                        match file.read_at_all_begin(view) {
                            Ok(pend) => HandleKind::CollRead { file, pend },
                            Err(e) => HandleKind::Ready(Err(e)),
                        }
                    }
                    _ => {
                        let regions: Vec<(u64, u64)> = view.absolute().collect();
                        let run_ranges = if strategy == IoStrategy::Sieve {
                            sieve_runs(&regions, self.cfg.options.sieve_threshold)
                        } else {
                            regions.clone()
                        };
                        let begin_all = || -> Result<Vec<(u64, AsyncIo)>, StoreError> {
                            run_ranges
                                .iter()
                                .map(|&(o, l)| {
                                    Ok((o, self.fs.read_at_begin(self.comm.ctx(), path, o, l)?))
                                })
                                .collect()
                        };
                        match begin_all() {
                            Ok(runs) => HandleKind::Read { runs, regions },
                            Err(e) => HandleKind::Ready(Err(e)),
                        }
                    }
                }
            }
            IoRequest::OutputWrite {
                path,
                view,
                payload,
            } => {
                assert_eq!(
                    payload.len() as u64,
                    view.total_bytes(),
                    "payload must exactly fill the view"
                );
                self.note(strategy, view.regions.len() as u64, view.total_bytes());
                match strategy {
                    IoStrategy::TwoPhase => {
                        let file =
                            MpiFile::open(self.comm, self.fs, path).with_hints(self.cfg.hints);
                        match file.write_at_all_begin(view, payload) {
                            Ok(pend) => HandleKind::CollWrite { file, pend },
                            Err(e) => HandleKind::Ready(Err(e)),
                        }
                    }
                    _ => {
                        let ops = write_runs(view, payload, strategy == IoStrategy::Sieve)
                            .into_iter()
                            .map(|(o, d)| self.fs.write_at_begin(self.comm.ctx(), path, o, d))
                            .collect();
                        HandleKind::Write { ops }
                    }
                }
            }
            IoRequest::CheckpointPut { path, payload } => {
                self.note(IoStrategy::Independent, 1, payload.len() as u64);
                self.fs.create(self.comm.ctx(), path);
                let op = self
                    .fs
                    .write_at_begin(self.comm.ctx(), path, 0, payload.to_vec());
                HandleKind::Write { ops: vec![op] }
            }
            // Gets and drops are latency-bound metadata round trips; the
            // sync path already charges them faithfully.
            req @ (IoRequest::CheckpointGet { .. } | IoRequest::CheckpointDrop { .. }) => {
                HandleKind::Ready(self.submit(req))
            }
        };
        IoHandle { op, bytes, kind }
    }

    /// Join an in-flight request: block until its transfers complete,
    /// assemble the response, and (on the collective path) barrier. The
    /// exposed wait — everything this call blocks on — lands in a
    /// `plane.async.wait` span; the time the handle spent in flight
    /// before the join is reported as its `queued_ns` argument.
    pub fn wait(&self, handle: IoHandle<'a, 'c>) -> Result<IoResponse, StoreError> {
        let queued_ns = handle
            .issued_ns()
            .map_or(0, |t| self.comm.ctx().now().0.saturating_sub(t));
        let _span = tracelog::span_args(
            tracelog::Lane::Io,
            "plane.async.wait",
            vec![
                ("op", handle.op.into()),
                ("bytes", handle.bytes.into()),
                ("queued_ns", queued_ns.into()),
            ],
        );
        match handle.kind {
            HandleKind::Ready(result) => result,
            HandleKind::Read { runs, regions } => {
                let mut run_data: Vec<(u64, Vec<u8>)> = Vec::with_capacity(runs.len());
                for (o, op) in runs {
                    run_data.push((o, self.fs.io_wait(self.comm.ctx(), op)?));
                }
                let total = regions.iter().map(|&(_, l)| l).sum::<u64>() as usize;
                let mut out = Vec::with_capacity(total);
                for (abs, len) in regions {
                    let (o, d) = run_data
                        .iter()
                        .find(|(o, d)| abs >= *o && abs + len <= o + d.len() as u64)
                        .expect("every region lies in a run");
                    let start = (abs - o) as usize;
                    out.extend_from_slice(&d[start..start + len as usize]);
                }
                Ok(IoResponse::Data(out))
            }
            HandleKind::Write { ops } => {
                // Wait for every write even after a failure: the others
                // are still in flight and still land.
                let mut err = None;
                for op in ops {
                    if let Err(e) = self.fs.io_wait(self.comm.ctx(), op) {
                        err.get_or_insert(e);
                    }
                }
                err.map_or(Ok(IoResponse::Done), Err)
            }
            HandleKind::CollRead { file, pend } => file.read_at_all_end(pend).map(IoResponse::Data),
            HandleKind::CollWrite { file, pend } => {
                file.write_at_all_end(pend).map(|_| IoResponse::Done)
            }
        }
    }

    // ---- strategy execution ----

    fn note(&self, strategy: IoStrategy, requests: u64, bytes: u64) {
        self.fs.note_class(strategy.class(), requests, bytes);
    }

    fn read_view(&self, path: &str, view: &FileView) -> Result<Vec<u8>, StoreError> {
        let strategy = self.effective_strategy();
        let _span = tracelog::span_args(
            tracelog::Lane::Io,
            "plane.read",
            vec![
                ("strategy", strategy.label().into()),
                ("regions", view.regions.len().into()),
                ("bytes", view.total_bytes().into()),
            ],
        );
        self.note(strategy, view.regions.len() as u64, view.total_bytes());
        match strategy {
            IoStrategy::Independent => {
                let mut out = Vec::with_capacity(view.total_bytes() as usize);
                for (abs, len) in view.absolute() {
                    out.extend_from_slice(&self.fs.read_at(self.comm.ctx(), path, abs, len)?);
                }
                Ok(out)
            }
            IoStrategy::Sieve => {
                let regions: Vec<(u64, u64)> = view.absolute().collect();
                let runs = sieve_runs(&regions, self.cfg.options.sieve_threshold);
                let mut out = Vec::with_capacity(view.total_bytes() as usize);
                let mut run = runs.iter();
                let mut cur: Option<(u64, Vec<u8>)> = None;
                for (abs, len) in &regions {
                    let covered = cur
                        .as_ref()
                        .is_some_and(|(o, d)| *abs >= *o && abs + len <= o + d.len() as u64);
                    if !covered {
                        let &(o, l) = run.next().expect("every region lies in a run");
                        cur = Some((o, self.fs.read_at(self.comm.ctx(), path, o, l)?));
                    }
                    let (o, d) = cur.as_ref().expect("run just read");
                    let start = (abs - o) as usize;
                    out.extend_from_slice(&d[start..start + *len as usize]);
                }
                Ok(out)
            }
            IoStrategy::TwoPhase => {
                let file = MpiFile::open(self.comm, self.fs, path).with_hints(self.cfg.hints);
                file.read_at_all(view)
            }
        }
    }

    fn write_view(&self, path: &str, view: &FileView, payload: &[u8]) -> Result<(), StoreError> {
        assert_eq!(
            payload.len() as u64,
            view.total_bytes(),
            "payload must exactly fill the view"
        );
        let strategy = self.effective_strategy();
        let _span = tracelog::span_args(
            tracelog::Lane::Io,
            "plane.write",
            vec![
                ("strategy", strategy.label().into()),
                ("regions", view.regions.len().into()),
                ("bytes", view.total_bytes().into()),
            ],
        );
        self.note(strategy, view.regions.len() as u64, view.total_bytes());
        match strategy {
            IoStrategy::Independent | IoStrategy::Sieve => {
                for (o, d) in write_runs(view, payload, strategy == IoStrategy::Sieve) {
                    self.fs.write_at(self.comm.ctx(), path, o, &d)?;
                }
                Ok(())
            }
            IoStrategy::TwoPhase => {
                let file = MpiFile::open(self.comm, self.fs, path).with_hints(self.cfg.hints);
                file.write_at_all(view, payload)
            }
        }
    }
}

/// Merge sorted, disjoint absolute regions into read runs, bridging
/// holes of at most `threshold` bytes.
fn sieve_runs(regions: &[(u64, u64)], threshold: u64) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &(o, l) in regions {
        match out.last_mut() {
            Some((ro, rl)) if o - (*ro + *rl) <= threshold => *rl = o + l - *ro,
            _ => out.push((o, l)),
        }
    }
    out
}

/// Materialize a view's write runs: one `(offset, bytes)` per region,
/// or — when `coalesce` (the sieve write path) — merging only strictly
/// adjacent regions. Writing *through* a hole would clobber bytes other
/// ranks own, so holes always split runs.
fn write_runs(view: &FileView, payload: &[u8], coalesce: bool) -> Vec<(u64, Vec<u8>)> {
    let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut cursor = 0usize;
    for (abs, len) in view.absolute() {
        let piece = &payload[cursor..cursor + len as usize];
        cursor += len as usize;
        match out.last_mut() {
            Some((o, d)) if coalesce && *o + d.len() as u64 == abs => d.extend_from_slice(piece),
            _ => out.push((abs, piece.to_vec())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::NetProfile;
    use parafs::FsProfile;
    use simcluster::{Sim, SimDuration};

    fn net() -> NetProfile {
        NetProfile {
            latency: 5e-6,
            bandwidth: 1e9,
        }
    }

    fn fsprofile() -> FsProfile {
        FsProfile {
            per_client_bw: 100e6,
            aggregate_bw: 400e6,
            op_latency: 1e-4,
        }
    }

    fn plane_cfg(strategy: IoStrategy, threshold: u64, collective: bool) -> PlaneConfig {
        PlaneConfig {
            options: IoOptions {
                strategy,
                sieve_threshold: threshold,
                io_async: false,
            },
            hints: CollectiveHints { aggregators: 2 },
            aggregate: true,
            collective,
        }
    }

    #[test]
    fn sieve_runs_bridge_small_holes_only() {
        let regions = vec![(0u64, 10u64), (12, 8), (100, 5), (105, 5)];
        assert_eq!(sieve_runs(&regions, 2), vec![(0, 20), (100, 10)]);
        assert_eq!(
            sieve_runs(&regions, 0),
            vec![(0, 10), (12, 8), (100, 10)],
            "threshold 0 still merges adjacency"
        );
        assert_eq!(sieve_runs(&regions, 1 << 30), vec![(0, 110)]);
        assert!(sieve_runs(&[], 4).is_empty());
    }

    #[test]
    fn all_strategies_read_the_same_bytes() {
        let content: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        for strategy in [
            IoStrategy::Independent,
            IoStrategy::Sieve,
            IoStrategy::TwoPhase,
        ] {
            let sim = Sim::new(3);
            let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
            fs.preload("db", content.clone());
            let fs2 = fs.clone();
            let out = sim.run(move |ctx| {
                let comm = Comm::new(&ctx, net());
                let plane = IoPlane::new(&comm, &fs2, plane_cfg(strategy, 16, true));
                let base = 100 * ctx.rank() as u64;
                let view = FileView::new(base, vec![(0, 20), (30, 10), (90, 10)]).unwrap();
                plane.db_read("db", &view).unwrap()
            });
            for (r, got) in out.outputs.iter().enumerate() {
                let base = 100 * r;
                let mut want = content[base..base + 20].to_vec();
                want.extend_from_slice(&content[base + 30..base + 40]);
                want.extend_from_slice(&content[base + 90..base + 100]);
                assert_eq!(got, &want, "{strategy} rank {r}");
            }
        }
    }

    #[test]
    fn sieved_reads_are_fewer_than_independent() {
        let content = vec![7u8; 4000];
        let run = |strategy: IoStrategy| -> u64 {
            let sim = Sim::new(1);
            let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
            fs.preload("db", content.clone());
            let fs2 = fs.clone();
            sim.run(move |ctx| {
                let comm = Comm::new(&ctx, net());
                let plane = IoPlane::new(&comm, &fs2, plane_cfg(strategy, 64, false));
                // 16 regions with 8-byte holes: one sieved run.
                let regions: Vec<(u64, u64)> = (0..16).map(|i| (i * 40, 32)).collect();
                let view = FileView::new(0, regions).unwrap();
                plane.db_read("db", &view).unwrap();
            });
            fs.counters().data_ops
        };
        assert_eq!(run(IoStrategy::Independent), 16);
        assert_eq!(run(IoStrategy::Sieve), 1);
    }

    #[test]
    fn sieved_writes_coalesce_only_adjacent_regions() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, plane_cfg(IoStrategy::Sieve, 1 << 20, false));
            // Interleaved: rank r owns records r, r+2, r+4, ... of 10 bytes.
            let me = ctx.rank() as u64;
            let regions: Vec<(u64, u64)> = (0..4).map(|i| ((2 * i + me) * 10, 10)).collect();
            let view = FileView::new(0, regions).unwrap();
            let data = vec![me as u8 + 1; 40];
            plane.write_output("out", &view, &data).unwrap();
        });
        let written = fs.peek("out").unwrap();
        assert_eq!(written.len(), 80);
        for rec in 0..8u64 {
            let want = (rec % 2) as u8 + 1;
            assert!(
                written[(rec * 10) as usize..(rec * 10 + 10) as usize]
                    .iter()
                    .all(|&b| b == want),
                "record {rec}: a sieved write must never fill holes"
            );
        }
        // No coalescing happened (every hole is another rank's record),
        // so each rank issued one write per region.
        assert_eq!(fs.counters().data_ops, 8);
    }

    #[test]
    fn two_phase_without_an_aggregation_request_is_independent() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        fs.preload("db", vec![9u8; 100]);
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let mut cfg = plane_cfg(IoStrategy::TwoPhase, 1 << 20, false);
            cfg.aggregate = false;
            let plane = IoPlane::new(&comm, &fs2, cfg);
            assert_eq!(plane.effective_strategy(), IoStrategy::Independent);
            let view = FileView::new(0, vec![(0, 8), (16, 8)]).unwrap();
            assert_eq!(plane.db_read("db", &view).unwrap(), vec![9u8; 16]);
        });
        // One physical read per region: no hole bridging happened.
        assert_eq!(fs.counters().data_ops, 2);
        assert_eq!(fs.counters().bytes_read, 16);
        assert_eq!(fs.class_tally(IoClass::Independent).requests, 2);
    }

    #[test]
    fn two_phase_degrades_to_sieve_off_the_collective_path() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        fs.preload("db", vec![3u8; 1000]);
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, plane_cfg(IoStrategy::TwoPhase, 64, false));
            assert_eq!(plane.effective_strategy(), IoStrategy::Sieve);
            assert!(!plane.is_collective());
            // Only rank 1 posts a request: on a collective plane this
            // would deadlock in the view exchange.
            if ctx.rank() == 1 {
                let view = FileView::new(0, vec![(0, 8), (16, 8)]).unwrap();
                assert_eq!(plane.db_read("db", &view).unwrap(), vec![3u8; 16]);
            }
        });
        assert_eq!(fs.class_tally(IoClass::Sieved).requests, 2);
        assert_eq!(fs.class_tally(IoClass::Sieved).bytes, 16);
        assert_eq!(fs.class_tally(IoClass::TwoPhase).requests, 0);
    }

    #[test]
    fn class_tallies_attribute_logical_traffic() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, plane_cfg(IoStrategy::TwoPhase, 64, true));
            let me = ctx.rank() as u64;
            let view = FileView::new(0, vec![(me * 50, 50), (100 + me * 50, 50)]).unwrap();
            plane.write_output("out", &view, &[me as u8; 100]).unwrap();
            // Checkpoint round trip rides the independent class.
            let blob = vec![me as u8; 30];
            let path = format!("ckpt.{me}");
            plane.checkpoint_put(&path, &blob).unwrap();
            assert_eq!(plane.checkpoint_get(&path).unwrap(), blob);
            plane.checkpoint_drop(&path).unwrap();
        });
        let two_phase = fs.class_tally(IoClass::TwoPhase);
        assert_eq!(two_phase.requests, 4);
        assert_eq!(two_phase.bytes, 200);
        let indep = fs.class_tally(IoClass::Independent);
        assert_eq!(indep.requests, 4, "2 puts + 2 gets");
        assert_eq!(indep.bytes, 120);
        assert_eq!(fs.counters().bytes_written, 200 + 60);
    }

    #[test]
    fn async_handles_return_the_same_bytes_as_sync() {
        let content: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        for strategy in [
            IoStrategy::Independent,
            IoStrategy::Sieve,
            IoStrategy::TwoPhase,
        ] {
            let sim = Sim::new(3);
            let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
            fs.preload("db", content.clone());
            let fs2 = fs.clone();
            sim.run(move |ctx| {
                let comm = Comm::new(&ctx, net());
                let plane = IoPlane::new(&comm, &fs2, plane_cfg(strategy, 16, true));
                let base = 100 * ctx.rank() as u64;
                let view = FileView::new(base, vec![(0, 20), (30, 10), (90, 10)]).unwrap();
                let sync = plane.db_read("db", &view).unwrap();
                let handle = plane.submit_begin(IoRequest::DbRead {
                    path: "db",
                    view: &view,
                });
                match plane.wait(handle).unwrap() {
                    IoResponse::Data(d) => assert_eq!(d, sync, "{strategy} read"),
                    IoResponse::Done => panic!("reads return data"),
                }
                // Scattered writes land the same bytes on both paths.
                let me = ctx.rank() as u64;
                let wview = FileView::new(0, vec![(me * 30, 15), (90 + me * 30, 15)]).unwrap();
                let payload = vec![me as u8 + 1; 30];
                plane.write_output("out.sync", &wview, &payload).unwrap();
                let handle = plane.submit_begin(IoRequest::OutputWrite {
                    path: "out.async",
                    view: &wview,
                    payload: &payload,
                });
                assert_eq!(plane.wait(handle).unwrap(), IoResponse::Done);
            });
            assert_eq!(
                fs.peek("out.sync").unwrap(),
                fs.peek("out.async").unwrap(),
                "{strategy} write"
            );
        }
    }

    #[test]
    fn async_reads_overlap_compute() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        fs.preload("db", vec![1u8; 50_000_000]);
        let fs2 = fs.clone();
        let out = sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, plane_cfg(IoStrategy::Sieve, 0, false));
            let view = FileView::contiguous(0, 50_000_000);
            let start = ctx.now();
            let handle = plane.submit_begin(IoRequest::DbRead {
                path: "db",
                view: &view,
            });
            ctx.charge(SimDuration::from_millis(300));
            match plane.wait(handle).unwrap() {
                IoResponse::Data(d) => assert_eq!(d.len(), 50_000_000),
                IoResponse::Done => panic!("reads return data"),
            }
            (ctx.now() - start).0
        });
        // 50 MB at 100 MB/s is 0.5 s (plus 0.1 ms op latency); the
        // 0.3 s of compute must hide entirely inside the transfer.
        let elapsed = out.outputs[0] as f64 / 1e9;
        assert!(elapsed > 0.4999, "transfer time still elapses: {elapsed}");
        assert!(elapsed < 0.5002, "compute must overlap I/O: {elapsed}");
    }

    #[test]
    fn full_file_system_degrades_writes_to_errors() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        fs.set_capacity(100);
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, plane_cfg(IoStrategy::Independent, 0, false));
            // Sync paths surface the late ENOSPC as a typed error.
            assert!(matches!(
                plane.checkpoint_put("ckpt", &[0u8; 200]),
                Err(StoreError::NoSpace { .. })
            ));
            let view = FileView::contiguous(0, 150);
            assert!(matches!(
                plane.write_output("out", &view, &[0u8; 150]),
                Err(StoreError::NoSpace { .. })
            ));
            // Async: the failure lands at wait time, not begin time.
            let h = plane.submit_begin(IoRequest::CheckpointPut {
                path: "ckpt2",
                payload: &[0u8; 200],
            });
            assert!(matches!(plane.wait(h), Err(StoreError::NoSpace { .. })));
            // A blob that fits still goes through.
            plane.checkpoint_put("small", &[7u8; 40]).unwrap();
        });
        assert_eq!(fs.peek("small").unwrap(), vec![7u8; 40]);
    }

    #[test]
    fn checkpoint_get_of_a_missing_blob_is_a_typed_error() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "xfs", fsprofile());
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let plane = IoPlane::new(&comm, &fs2, PlaneConfig::default());
            assert!(matches!(
                plane.checkpoint_get("absent"),
                Err(StoreError::NotFound { .. })
            ));
        });
    }
}
