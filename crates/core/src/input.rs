//! The parallel input stage.
//!
//! pioBLAST's default input is *individual* MPI-IO: each worker issues one
//! ranged read per file region (the paper: "since each worker accesses a
//! single, sequential part of the global files, we use the individual I/O
//! interfaces of MPI-IO in the input phase"). This module also implements
//! the design alternative the paper's §4 discusses — reading the global
//! files *collectively*: every rank participates in one two-phase
//! collective read per shared file, which shines when fragments are fine
//! (many noncontiguous ranges per worker) or the file system punishes
//! small independent reads.
//!
//! Both modes are one function, [`read_fragments`]: the caller hands an
//! [`IoPlane`] and the plane's strategy decides how the posted views are
//! serviced. On a collective plane every rank must call this with the
//! same volume list (the master joins with empty assignments); on a
//! non-collective plane — dynamic grants, fault epochs — each rank reads
//! only the volumes it was actually assigned, with no global sync.

use blast_core::alphabet::Molecule;
use mpiio::{FileView, IoHandle, IoPlane, IoRequest, IoResponse};
use parafs::StoreError;
use seqfmt::FragmentData;

use std::fmt;

use crate::proto::FragmentAssignment;

/// Why the input stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputError {
    /// The requested file range is not covered by the buffered spans.
    Uncovered {
        /// Requested absolute file offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
    },
    /// A database file could not be read.
    Store(StoreError),
    /// The read bytes do not form a consistent fragment.
    Fragment(String),
    /// A setup file (alias, query FASTA, volume index) failed to decode.
    Malformed(String),
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::Uncovered { offset, len } => {
                write!(
                    f,
                    "range [{offset}, {offset}+{len}) not covered by read spans"
                )
            }
            InputError::Store(e) => write!(f, "database read failed: {e}"),
            InputError::Fragment(msg) => write!(f, "inconsistent fragment: {msg}"),
            InputError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for InputError {}

impl From<StoreError> for InputError {
    fn from(e: StoreError) -> InputError {
        InputError::Store(e)
    }
}

/// The bytes of a set of disjoint file spans, addressable by absolute
/// file offset.
#[derive(Debug, Clone, Default)]
pub struct RangeBuffers {
    /// Disjoint, sorted `(offset, len)` spans.
    spans: Vec<(u64, u64)>,
    /// Concatenated span bytes, in span order.
    data: Vec<u8>,
}

impl RangeBuffers {
    /// Build from the spans a ranged read used and the bytes it returned
    /// (concatenated in span order).
    pub fn new(spans: Vec<(u64, u64)>, data: Vec<u8>) -> RangeBuffers {
        debug_assert_eq!(
            spans.iter().map(|&(_, l)| l).sum::<u64>(),
            data.len() as u64
        );
        RangeBuffers { spans, data }
    }

    /// The bytes at absolute file range `[offset, offset + len)`.
    ///
    /// The range may straddle several spans as long as they are
    /// contiguous in the file: the bytes of adjacent spans are also
    /// adjacent in the backing buffer, so the view stays a single slice.
    pub fn slice(&self, offset: u64, len: u64) -> Result<&[u8], InputError> {
        let err = || InputError::Uncovered { offset, len };
        let end = offset.checked_add(len).ok_or_else(err)?;
        let mut base = 0u64;
        for (i, &(span_off, span_len)) in self.spans.iter().enumerate() {
            if offset >= span_off && offset < span_off + span_len {
                // Walk forward over file-contiguous spans until the range
                // is covered (or a gap in the file breaks the run).
                let mut covered_to = span_off + span_len;
                for &(next_off, next_len) in &self.spans[i + 1..] {
                    if covered_to >= end || next_off != covered_to {
                        break;
                    }
                    covered_to += next_len;
                }
                if covered_to < end {
                    return Err(err());
                }
                let start = (base + offset - span_off) as usize;
                return Ok(&self.data[start..start + len as usize]);
            }
            base += span_len;
        }
        if len == 0 {
            return Ok(&[]);
        }
        Err(err())
    }
}

/// Merge sorted-or-not, possibly overlapping/adjacent ranges into disjoint
/// sorted spans. All arithmetic is checked: a span whose `offset + len`
/// would overflow `u64` is clamped to end at `u64::MAX` instead of
/// wrapping (and silently swallowing every later span).
pub fn coalesce_spans(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(_, l)| l > 0);
    ranges.sort_unstable();
    let span_end = |o: u64, l: u64| o.saturating_add(l);
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (o, l) in ranges {
        match out.last_mut() {
            Some((ro, rl)) if span_end(*ro, *rl) >= o => {
                let end = span_end(o, l).max(span_end(*ro, *rl));
                *rl = end - *ro;
            }
            _ => out.push((o, l.min(u64::MAX - o))),
        }
    }
    out
}

/// Read this rank's assigned fragment ranges of the shared database files
/// through the I/O plane and materialize the fragments.
///
/// On a collective plane ([`IoPlane::is_collective`]) every rank must call
/// this with the same `volume_names`, in the same order — it posts one
/// collective read per volume file, and ranks with nothing to read (the
/// master) join with empty views. On a non-collective plane only the
/// volumes with assignments are touched, so any subset of ranks can call
/// at any time.
pub fn read_fragments(
    plane: &IoPlane,
    volume_names: &[String],
    assignments: &[FragmentAssignment],
    molecule: Molecule,
) -> Result<Vec<FragmentData>, InputError> {
    // Per (volume index), the buffers of its three files.
    let mut buffers: Vec<[RangeBuffers; 3]> = Vec::with_capacity(volume_names.len());
    for vol in volume_names {
        let mine: Vec<&FragmentAssignment> = assignments
            .iter()
            .filter(|a| a.volume_name == *vol)
            .collect();
        if mine.is_empty() && !plane.is_collective() {
            // Nothing of ours in this volume, and nobody is waiting for
            // us in a collective — skip the file entirely.
            buffers.push(Default::default());
            continue;
        }
        // Index file: both table slices of every fragment (adjacent
        // fragments share a boundary entry, so spans must be coalesced).
        let idx_spans = coalesce_spans(
            mine.iter()
                .flat_map(|a| [a.spec.idx_seq_range, a.spec.idx_hdr_range])
                .map(|(lo, hi)| (lo, hi - lo))
                .collect(),
        );
        let seq_spans = coalesce_spans(
            mine.iter()
                .map(|a| (a.spec.seq_range.0, a.spec.seq_range.1 - a.spec.seq_range.0))
                .collect(),
        );
        let hdr_spans = coalesce_spans(
            mine.iter()
                .map(|a| (a.spec.hdr_range.0, a.spec.hdr_range.1 - a.spec.hdr_range.0))
                .collect(),
        );
        let read = |ext: &str, spans: &[(u64, u64)]| -> Result<RangeBuffers, InputError> {
            let view = FileView::new(0, spans.to_vec())
                .map_err(|e| InputError::Fragment(format!("bad span set: {e}")))?;
            let data = plane.db_read(&format!("db/{vol}.{ext}"), &view)?;
            Ok(RangeBuffers::new(spans.to_vec(), data))
        };
        buffers.push([
            read("idx", &idx_spans)?,
            read("seq", &seq_spans)?,
            read("hdr", &hdr_spans)?,
        ]);
    }

    // Materialize this rank's fragments from the buffered spans.
    assignments
        .iter()
        .map(|a| {
            let vi = volume_names
                .iter()
                .position(|v| *v == a.volume_name)
                .ok_or_else(|| {
                    InputError::Fragment(format!("volume {} not in the alias", a.volume_name))
                })?;
            let [idx, seq, hdr] = &buffers[vi];
            let spec = &a.spec;
            FragmentData::from_ranges(
                molecule,
                spec.base_oid,
                idx.slice(
                    spec.idx_seq_range.0,
                    spec.idx_seq_range.1 - spec.idx_seq_range.0,
                )?,
                idx.slice(
                    spec.idx_hdr_range.0,
                    spec.idx_hdr_range.1 - spec.idx_hdr_range.0,
                )?,
                seq.slice(spec.seq_range.0, spec.seq_range.1 - spec.seq_range.0)?
                    .to_vec(),
                hdr.slice(spec.hdr_range.0, spec.hdr_range.1 - spec.hdr_range.0)?
                    .to_vec(),
            )
            .map_err(|e| InputError::Fragment(e.to_string()))
        })
        .collect()
}

/// One fragment's three file reads, in flight.
///
/// Produced by [`read_fragment_begin`], joined by [`read_fragment_end`]:
/// the split that lets a worker read ahead the *next* granted fragment
/// while the search kernel runs on the current one. Only meaningful on a
/// non-collective plane — per-fragment begins cannot be matched across
/// ranks, so callers must gate on [`IoPlane::is_collective`].
pub struct PendingFragment<'a, 'c> {
    assignment: FragmentAssignment,
    /// `(spans, handle)` for the idx, seq, and hdr files, in that order.
    files: Vec<(Vec<(u64, u64)>, IoHandle<'a, 'c>)>,
}

/// The spans each of a fragment's three files needs, in
/// `[idx, seq, hdr]` order.
fn fragment_spans(a: &FragmentAssignment) -> [Vec<(u64, u64)>; 3] {
    let spec = &a.spec;
    [
        coalesce_spans(
            [spec.idx_seq_range, spec.idx_hdr_range]
                .into_iter()
                .map(|(lo, hi)| (lo, hi - lo))
                .collect(),
        ),
        coalesce_spans(vec![(
            spec.seq_range.0,
            spec.seq_range.1 - spec.seq_range.0,
        )]),
        coalesce_spans(vec![(
            spec.hdr_range.0,
            spec.hdr_range.1 - spec.hdr_range.0,
        )]),
    ]
}

/// Begin reading one assigned fragment's ranges without blocking: posts
/// an asynchronous ranged read per database file and returns the
/// in-flight set. The transfers proceed in virtual time while the caller
/// computes; [`read_fragment_end`] joins them and materializes the
/// fragment.
pub fn read_fragment_begin<'a, 'c>(
    plane: &IoPlane<'a, 'c>,
    assignment: &FragmentAssignment,
) -> Result<PendingFragment<'a, 'c>, InputError> {
    debug_assert!(
        !plane.is_collective(),
        "per-fragment begins cannot be matched across ranks"
    );
    let vol = &assignment.volume_name;
    let mut files = Vec::with_capacity(3);
    for (ext, spans) in ["idx", "seq", "hdr"]
        .into_iter()
        .zip(fragment_spans(assignment))
    {
        let view = FileView::new(0, spans.clone())
            .map_err(|e| InputError::Fragment(format!("bad span set: {e}")))?;
        let path = format!("db/{vol}.{ext}");
        let handle = plane.submit_begin(IoRequest::DbRead {
            path: &path,
            view: &view,
        });
        files.push((spans, handle));
    }
    Ok(PendingFragment {
        assignment: assignment.clone(),
        files,
    })
}

/// Join a fragment's in-flight reads and materialize it. Only the
/// transfer remainder not already overlapped with compute is exposed as
/// blocking time.
pub fn read_fragment_end<'a, 'c>(
    plane: &IoPlane<'a, 'c>,
    pend: PendingFragment<'a, 'c>,
    molecule: Molecule,
) -> Result<FragmentData, InputError> {
    let mut buffers = Vec::with_capacity(3);
    for (spans, handle) in pend.files {
        let data = match plane.wait(handle)? {
            IoResponse::Data(d) => d,
            IoResponse::Done => unreachable!("reads return data"),
        };
        buffers.push(RangeBuffers::new(spans, data));
    }
    let [idx, seq, hdr] = <[RangeBuffers; 3]>::try_from(buffers).expect("three files");
    let spec = &pend.assignment.spec;
    FragmentData::from_ranges(
        molecule,
        spec.base_oid,
        idx.slice(
            spec.idx_seq_range.0,
            spec.idx_seq_range.1 - spec.idx_seq_range.0,
        )?,
        idx.slice(
            spec.idx_hdr_range.0,
            spec.idx_hdr_range.1 - spec.idx_hdr_range.0,
        )?,
        seq.slice(spec.seq_range.0, spec.seq_range.1 - spec.seq_range.0)?
            .to_vec(),
        hdr.slice(spec.hdr_range.0, spec.hdr_range.1 - spec.hdr_range.0)?
            .to_vec(),
    )
    .map_err(|e| InputError::Fragment(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        assert_eq!(
            coalesce_spans(vec![(10, 5), (0, 5), (5, 5), (30, 2)]),
            vec![(0, 15), (30, 2)]
        );
        // Overlapping boundary entries (the shared index-table entry).
        assert_eq!(coalesce_spans(vec![(0, 16), (8, 16)]), vec![(0, 24)]);
        assert_eq!(coalesce_spans(vec![(4, 0), (2, 1)]), vec![(2, 1)]);
        assert!(coalesce_spans(vec![]).is_empty());
    }

    #[test]
    fn coalesce_clamps_overflowing_spans() {
        // `offset + len` past u64::MAX must not wrap (which would make the
        // span swallow every later one); it clamps to end at u64::MAX.
        assert_eq!(
            coalesce_spans(vec![(u64::MAX - 4, 10), (0, 1)]),
            vec![(0, 1), (u64::MAX - 4, 4)]
        );
        assert_eq!(
            coalesce_spans(vec![(u64::MAX - 8, 4), (u64::MAX - 4, 10)]),
            vec![(u64::MAX - 8, 8)]
        );
    }

    #[test]
    fn range_buffers_slice_by_absolute_offset() {
        let spans = vec![(10u64, 4u64), (20, 6)];
        let data = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let rb = RangeBuffers::new(spans, data);
        assert_eq!(rb.slice(10, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(rb.slice(11, 2).unwrap(), &[2, 3]);
        assert_eq!(rb.slice(20, 6).unwrap(), &[5, 6, 7, 8, 9, 10]);
        assert_eq!(rb.slice(23, 1).unwrap(), &[8]);
    }

    #[test]
    fn slice_straddles_file_contiguous_spans() {
        // Spans (0,4) and (4,6) touch in the file, so their bytes are
        // adjacent in the buffer and a straddling range is one slice.
        let rb = RangeBuffers::new(
            vec![(0, 4), (4, 6), (20, 2)],
            vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        );
        assert_eq!(rb.slice(2, 5).unwrap(), &[2, 3, 4, 5, 6]);
        assert_eq!(rb.slice(0, 10).unwrap(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        // A gap in the file breaks the run even though the buffer bytes
        // happen to be adjacent.
        assert_eq!(
            rb.slice(8, 14),
            Err(InputError::Uncovered { offset: 8, len: 14 })
        );
    }

    #[test]
    fn uncovered_slice_is_a_typed_error() {
        let rb = RangeBuffers::new(vec![(0, 4)], vec![0, 1, 2, 3]);
        assert_eq!(
            rb.slice(2, 5),
            Err(InputError::Uncovered { offset: 2, len: 5 })
        );
        assert_eq!(
            rb.slice(10, 1),
            Err(InputError::Uncovered { offset: 10, len: 1 })
        );
        assert!(rb
            .slice(u64::MAX, 2)
            .unwrap_err()
            .to_string()
            .contains("not covered"));
    }

    #[test]
    fn store_errors_convert_into_input_errors() {
        let e: InputError = StoreError::NotFound {
            path: "db/x.idx".into(),
        }
        .into();
        assert!(e.to_string().contains("database read failed"));
    }
}
