//! Fault detection and recovery for the pioBLAST run.
//!
//! The normal protocol ([`crate::app`]) leans on collectives (broadcast,
//! gather, scatter) whose binomial trees deadlock the moment a rank dies.
//! When [`PioBlastConfig::fault`] is `Detect` or `Recover`, the run
//! switches to the point-to-point, master-driven protocol in this module:
//!
//! * the master sends the query bundle to each worker individually and
//!   drives everything with commands; workers only ever wait on the
//!   master (with a bounded-timeout patience loop, so a master death is
//!   noticed promptly while a merely busy master costs nothing);
//! * the master polls with [`mpisim::Comm::recv_timeout`] and sweeps the
//!   live set on every wakeup, so a worker death is noticed within one
//!   sweep interval;
//! * in `Detect` mode any death aborts the run with a typed
//!   [`PioError`] — no hang, no panic;
//! * in `Recover` mode (dynamic schedule only) the master re-queues every
//!   fragment the dead worker ever owned and restarts the output epoch.
//!
//! **Why recovery is byte-identical.** Each epoch first completes
//! distribution, so the collected submissions always cover the full
//! fragment set; `merge_and_layout` is deterministic in the submissions'
//! *content* (not their placement — the invariance tests in `app` pin
//! this), so every epoch computes the same offsets and bytes; and output
//! is written with independent `write_at`s, so records re-written after a
//! restart are idempotent. The surviving run therefore produces exactly
//! the failure-free file.
//!
//! Stale messages from an aborted epoch are fenced with an 8-byte epoch
//! prefix on `SUBMIT_REQ`/`SUBMIT`/`ASSIGN`/`DONE` payloads; mismatching
//! epochs are discarded.

use std::collections::VecDeque;
use std::fmt;

use blast_core::fasta;
use blast_core::format::ReportConfig;
use blast_core::search::{PreparedQueries, SearchStats};
use bytes::Bytes;
use mpiblast::phases;
use mpiblast::wire::{MetaSubmission, OffsetAssignment, QueryBundle};
use mpiblast::{RankReport, MASTER};
use mpisim::{Comm, RecvError};
use seqfmt::codec::CodecError;
use seqfmt::{AliasFile, VolumeIndex};
use simcluster::{PhaseTimes, RankCtx, SimDuration};

use crate::app::{
    input_fragment, search_fragment_into, FragmentSchedule, PioBlastConfig, TAG_FRAG_REQ,
};
use crate::cache::ResultCache;
use crate::merge::merge_and_layout;
use crate::proto::{chunk_evenly, FragmentAssignment, PartitionMessage};

/// Fault-tolerance mode of a pioBLAST run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// No detection: the plain collective protocol (a rank death hangs
    /// the run, like real MPI without fault tolerance).
    #[default]
    Off,
    /// Detect rank death and fail fast with a typed [`PioError`].
    Detect,
    /// Detect worker death and reassign the dead worker's fragments to
    /// survivors; the output is byte-identical to a failure-free run.
    /// Requires the dynamic schedule.
    Recover,
}

/// Why a fault-mode pioBLAST run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PioError {
    /// A worker died (reported by the master in `Detect` mode).
    WorkerDied {
        /// The dead rank.
        rank: usize,
    },
    /// Every worker died; recovery has nobody left to reassign to.
    AllWorkersDied,
    /// The master died (reported by surviving workers).
    MasterDied,
    /// The master told this worker to abandon the run.
    Aborted,
    /// A malformed or out-of-place message.
    Protocol(String),
}

impl fmt::Display for PioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PioError::WorkerDied { rank } => write!(f, "worker rank {rank} died"),
            PioError::AllWorkersDied => write!(f, "every worker died"),
            PioError::MasterDied => write!(f, "master died"),
            PioError::Aborted => write!(f, "run aborted by the master"),
            PioError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for PioError {}

// Command tags (master -> worker unless noted). Workers answer grants
// with the ordinary `TAG_FRAG_REQ`, which doubles as the ack in the
// static schedule.
const TAG_FT_BUNDLE: u64 = 10;
const TAG_FT_GRANT: u64 = 11;
const TAG_FT_SUBMIT_REQ: u64 = 12;
/// Worker -> master: epoch-tagged [`MetaSubmission`].
const TAG_FT_SUBMIT: u64 = 13;
const TAG_FT_ASSIGN: u64 = 14;
/// Worker -> master: epoch-tagged write acknowledgement.
const TAG_FT_DONE: u64 = 15;
const TAG_FT_FINISH: u64 = 16;
const TAG_FT_ABORT: u64 = 17;

/// How long the master (and waiting workers) sleep between liveness
/// sweeps. Virtual time; bounds detection latency, not throughput.
fn sweep_interval() -> SimDuration {
    SimDuration::from_millis(25)
}

fn decode_err(e: CodecError) -> PioError {
    PioError::Protocol(e.to_string())
}

/// Prefix `body` with an 8-byte little-endian epoch.
fn with_epoch(epoch: u64, body: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(body);
    Bytes::from(buf)
}

/// Split an epoch-prefixed payload.
fn split_epoch(payload: &[u8]) -> Result<(u64, &[u8]), PioError> {
    if payload.len() < 8 {
        return Err(PioError::Protocol("epoch frame too short".into()));
    }
    let mut e = [0u8; 8];
    e.copy_from_slice(&payload[..8]);
    Ok((u64::from_le_bytes(e), &payload[8..]))
}

/// Tell every still-live worker to abandon the run.
fn abort_live(comm: &Comm, live: &[bool]) {
    for (w, &alive) in live.iter().enumerate().skip(1) {
        if alive {
            let _ = comm.send_checked(w, TAG_FT_ABORT, Bytes::new());
        }
    }
}

/// Mark freshly dead workers in `live` and return them.
fn newly_dead(ctx: &RankCtx, live: &mut [bool]) -> Vec<usize> {
    let mut dead = Vec::new();
    for (w, alive) in live.iter_mut().enumerate().skip(1) {
        if *alive && ctx.is_dead(w) {
            *alive = false;
            dead.push(w);
        }
    }
    dead
}

/// The master's reaction to a sweep's deaths: abort in `Detect` mode,
/// re-queue everything the dead workers owned in `Recover` mode. Returns
/// `Ok(true)` when fragments were re-queued (the epoch must restart).
#[allow(clippy::too_many_arguments)]
fn absorb_deaths(
    cfg: &PioBlastConfig,
    comm: &Comm,
    live: &[bool],
    idle: &mut [bool],
    owned: &mut [Vec<usize>],
    queue: &mut VecDeque<usize>,
    dead: &[usize],
) -> Result<bool, PioError> {
    if dead.is_empty() {
        return Ok(false);
    }
    for &w in dead {
        idle[w] = false;
    }
    if cfg.fault == FaultMode::Detect {
        abort_live(comm, live);
        return Err(PioError::WorkerDied { rank: dead[0] });
    }
    for &w in dead {
        queue.extend(owned[w].drain(..));
    }
    if !live.iter().skip(1).any(|&a| a) {
        return Err(PioError::AllWorkersDied);
    }
    Ok(true)
}

/// The first live, idle worker.
fn idle_worker(live: &[bool], idle: &[bool]) -> Option<usize> {
    (1..live.len()).find(|&w| live[w] && idle[w])
}

/// The master's side of the fault-tolerant protocol.
pub(crate) fn run_master_fault(
    ctx: &RankCtx,
    comm: &Comm,
    cfg: &PioBlastConfig,
) -> Result<RankReport, PioError> {
    let shared = &cfg.env.shared;
    let mut phase_times = PhaseTimes::new();
    let now = || ctx.now();
    let nranks = ctx.nranks();

    // On a malformed message, tell survivors to stop before bailing so
    // nobody is left waiting on a master that returned.
    macro_rules! try_abort {
        ($live:expr, $e:expr) => {
            match $e {
                Ok(v) => v,
                Err(err) => {
                    abort_live(comm, &$live);
                    return Err(err);
                }
            }
        };
    }

    // ---- startup: alias + queries, bundle sent point-to-point ----
    let start = now();
    let alias_bytes = shared.read_all(ctx, &cfg.db_alias).expect("alias present");
    let alias = AliasFile::decode(&alias_bytes).expect("valid alias");
    let query_text = shared
        .read_all(ctx, &cfg.query_path)
        .expect("query file present");
    let queries = fasta::parse(alias.molecule, &query_text).expect("valid query FASTA");
    let bundle = QueryBundle {
        db_title: alias.title.clone(),
        db_stats: alias.global_stats,
        molecule: alias.molecule,
        queries,
    };
    let report_cfg =
        ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
    let bundle_bytes = Bytes::from(bundle.encode());
    let mut live = vec![false; nranks];
    for (w, alive) in live.iter_mut().enumerate().skip(1) {
        *alive = comm
            .send_checked(w, TAG_FT_BUNDLE, bundle_bytes.clone())
            .is_ok();
    }
    // The merge needs the prepared query set (records and search spaces).
    let residues: u64 = bundle.queries.iter().map(|q| q.len() as u64).sum();
    let prepared = cfg.compute.run_prepare(ctx, residues, || {
        PreparedQueries::prepare(&cfg.params, bundle.queries.clone(), bundle.db_stats)
    });
    phase_times.add(phases::OTHER, now() - start);

    // ---- virtual fragments ----
    let dist_start = now();
    let mut indexes: Vec<VolumeIndex> = Vec::new();
    for vol in &alias.volumes {
        let idx_bytes = shared
            .read_all(ctx, &format!("db/{vol}.idx"))
            .expect("volume index present");
        indexes.push(VolumeIndex::decode(&idx_bytes).expect("valid volume index"));
    }
    let index_refs: Vec<&VolumeIndex> = indexes.iter().collect();
    let nfrags = cfg.num_fragments.unwrap_or(nranks - 1);
    let specs = seqfmt::virtual_fragments(&index_refs, nfrags);
    let assignments: Vec<FragmentAssignment> = specs
        .into_iter()
        .map(|spec| FragmentAssignment {
            volume_name: alias.volumes[spec.volume].clone(),
            spec,
        })
        .collect();

    // Scheduling state. `owned[w]` is every fragment rank `w` was ever
    // granted — exactly what must be re-searched if `w` dies.
    let mut queue: VecDeque<usize> = (0..assignments.len()).collect();
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); nranks];
    let mut idle = vec![false; nranks];

    if cfg.schedule == FragmentSchedule::Static {
        // Everything is granted up front; the per-worker REQ acks then
        // mark the workers idle. (Static implies `Detect`: a death has
        // no re-queue path, so it aborts.)
        let workers: Vec<usize> = (1..nranks).filter(|&w| live[w]).collect();
        if workers.is_empty() {
            return Err(PioError::AllWorkersDied);
        }
        let chunks = chunk_evenly((0..assignments.len()).collect::<Vec<_>>(), workers.len());
        for (&w, chunk) in workers.iter().zip(chunks) {
            let msg = PartitionMessage {
                fragments: chunk.iter().map(|&f| assignments[f].clone()).collect(),
                volumes: alias.volumes.clone(),
            };
            if comm
                .send_checked(w, TAG_FT_GRANT, Bytes::from(msg.encode()))
                .is_err()
            {
                live[w] = false;
                abort_live(comm, &live);
                return Err(PioError::WorkerDied { rank: w });
            }
            owned[w].extend(chunk);
        }
        queue.clear();
    }
    phase_times.add(phases::INPUT, now() - dist_start);

    let mut epoch: u64 = 0;
    'epoch: loop {
        epoch += 1;

        // ---- distribution: grant until the queue drains and every live
        // worker has acked its last grant ----
        let dist_start = now();
        loop {
            let dead = newly_dead(ctx, &mut live);
            absorb_deaths(cfg, comm, &live, &mut idle, &mut owned, &mut queue, &dead)?;
            while let (Some(&f), Some(w)) = (queue.front(), idle_worker(&live, &idle)) {
                let msg = PartitionMessage {
                    fragments: vec![assignments[f].clone()],
                    volumes: alias.volumes.clone(),
                };
                if comm
                    .send_checked(w, TAG_FT_GRANT, Bytes::from(msg.encode()))
                    .is_err()
                {
                    // Death at send time; the next sweep absorbs it.
                    break;
                }
                queue.pop_front();
                owned[w].push(f);
                idle[w] = false;
            }
            if queue.is_empty() && (1..nranks).all(|w| !live[w] || idle[w]) {
                break;
            }
            if let Ok(m) = comm.recv_timeout(None, Some(TAG_FRAG_REQ), sweep_interval()) {
                if live[m.src] {
                    idle[m.src] = true;
                }
            }
        }
        phase_times.add(phases::INPUT, now() - dist_start);

        // ---- collect submissions (they now cover every fragment) ----
        let out_start = now();
        for (w, &alive) in live.iter().enumerate().skip(1) {
            if alive {
                let _ = comm.send_checked(w, TAG_FT_SUBMIT_REQ, with_epoch(epoch, &[]));
            }
        }
        let mut subs: Vec<Option<MetaSubmission>> = vec![None; nranks];
        loop {
            let dead = newly_dead(ctx, &mut live);
            if absorb_deaths(cfg, comm, &live, &mut idle, &mut owned, &mut queue, &dead)? {
                phase_times.add(phases::OUTPUT, now() - out_start);
                continue 'epoch;
            }
            if (1..nranks).all(|w| !live[w] || subs[w].is_some()) {
                break;
            }
            if let Ok(m) = comm.recv_timeout(None, Some(TAG_FT_SUBMIT), sweep_interval()) {
                let (e, body) = try_abort!(live, split_epoch(&m.payload));
                if e == epoch && live[m.src] {
                    subs[m.src] =
                        Some(try_abort!(live, MetaSubmission::decode(body).map_err(decode_err)));
                }
            }
        }

        // ---- merge + layout (deterministic: identical in every epoch,
        // and identical to a failure-free run) ----
        let subs: Vec<MetaSubmission> = subs.into_iter().map(Option::unwrap_or_default).collect();
        let outcome = cfg.compute.run_format(
            ctx,
            || merge_and_layout(&report_cfg, &cfg.params, &prepared, &subs, cfg.report, 0),
            |o| o.master_sections.iter().map(|(_, s)| s.len() as u64).sum(),
        );
        cfg.compute.run_merge(ctx, outcome.merged_items, || ());

        // ---- offset assignments + independent worker writes ----
        for (w, &alive) in live.iter().enumerate().skip(1) {
            if alive {
                let _ = comm.send_checked(
                    w,
                    TAG_FT_ASSIGN,
                    with_epoch(epoch, &outcome.per_rank[w].encode()),
                );
            }
        }
        let mut done = vec![false; nranks];
        loop {
            let dead = newly_dead(ctx, &mut live);
            if absorb_deaths(cfg, comm, &live, &mut idle, &mut owned, &mut queue, &dead)? {
                phase_times.add(phases::OUTPUT, now() - out_start);
                continue 'epoch;
            }
            if (1..nranks).all(|w| !live[w] || done[w]) {
                break;
            }
            if let Ok(m) = comm.recv_timeout(None, Some(TAG_FT_DONE), sweep_interval()) {
                let (e, _) = try_abort!(live, split_epoch(&m.payload));
                if e == epoch && live[m.src] {
                    done[m.src] = true;
                }
            }
        }

        // ---- master sections, then release the workers ----
        for (off, text) in &outcome.master_sections {
            shared.write_at(ctx, &cfg.output_path, *off, text.as_bytes());
        }
        for (w, &alive) in live.iter().enumerate().skip(1) {
            if alive {
                let _ = comm.send_checked(w, TAG_FT_FINISH, Bytes::new());
            }
        }
        phase_times.add(phases::OUTPUT, now() - out_start);
        return Ok(RankReport {
            phases: phase_times,
            search_stats: SearchStats::default(),
        });
    }
}

/// Wait for the next master command with bounded patience: a busy master
/// costs re-armed timeouts (no virtual-time drift for the run), a dead
/// master surfaces as [`PioError::MasterDied`], and an abort command is
/// folded into the error path here.
fn recv_command(comm: &Comm) -> Result<simcluster::Message, PioError> {
    loop {
        match comm.recv_timeout(Some(MASTER), None, sweep_interval()) {
            Ok(m) if m.tag == TAG_FT_ABORT => return Err(PioError::Aborted),
            Ok(m) => return Ok(m),
            Err(RecvError::DeadPeer { .. }) => return Err(PioError::MasterDied),
            Err(RecvError::Timeout { .. }) => {}
        }
    }
}

/// The worker's side of the fault-tolerant protocol: a command loop
/// driven entirely by the master.
pub(crate) fn run_worker_fault(
    ctx: &RankCtx,
    comm: &Comm,
    cfg: &PioBlastConfig,
) -> Result<RankReport, PioError> {
    let shared = &cfg.env.shared;
    let compute = cfg.compute_for(ctx.rank());
    let mut phase_times = PhaseTimes::new();
    let now = || ctx.now();

    // ---- startup: the query bundle arrives point-to-point ----
    let start = now();
    let m = recv_command(comm)?;
    if m.tag != TAG_FT_BUNDLE {
        return Err(PioError::Protocol(format!(
            "worker expected the query bundle, got tag {}",
            m.tag
        )));
    }
    let bundle = QueryBundle::decode(&m.payload).map_err(decode_err)?;
    let report_cfg =
        ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
    let residues: u64 = bundle.queries.iter().map(|q| q.len() as u64).sum();
    let prepared = compute.run_prepare(ctx, residues, || {
        PreparedQueries::prepare(&cfg.params, bundle.queries.clone(), bundle.db_stats)
    });
    phase_times.add(phases::OTHER, now() - start);

    let mut cache = ResultCache::default();
    let mut stats_total = SearchStats::default();
    if cfg.schedule == FragmentSchedule::Dynamic {
        comm.send(MASTER, TAG_FRAG_REQ, Bytes::new());
    }

    // ---- command loop ----
    loop {
        let m = recv_command(comm)?;
        match m.tag {
            TAG_FT_GRANT => {
                let part = PartitionMessage::decode(&m.payload).map_err(decode_err)?;
                for assignment in &part.fragments {
                    let input_start = now();
                    let frag = input_fragment(ctx, cfg, bundle.molecule, assignment);
                    phase_times.add(phases::INPUT, now() - input_start);
                    search_fragment_into(
                        ctx,
                        cfg,
                        compute,
                        &report_cfg,
                        &prepared,
                        &frag,
                        &mut cache,
                        &mut stats_total,
                        &mut phase_times,
                    );
                }
                // Ack / request more (in the static schedule the master
                // only uses this as the ack).
                comm.send(MASTER, TAG_FRAG_REQ, Bytes::new());
            }
            TAG_FT_SUBMIT_REQ => {
                let (e, _) = split_epoch(&m.payload)?;
                comm.send(MASTER, TAG_FT_SUBMIT, with_epoch(e, &cache.metadata().encode()));
            }
            TAG_FT_ASSIGN => {
                let (e, body) = split_epoch(&m.payload)?;
                let assignment = OffsetAssignment::decode(body).map_err(decode_err)?;
                let t = now();
                for &(q, oid, off) in &assignment.records {
                    let record = cache.record(q, oid).ok_or_else(|| {
                        PioError::Protocol(format!("assigned record ({q}, {oid}) not cached"))
                    })?;
                    shared.write_at(ctx, &cfg.output_path, off, record.as_bytes());
                }
                phase_times.add(phases::OUTPUT, now() - t);
                comm.send(MASTER, TAG_FT_DONE, with_epoch(e, &[]));
            }
            TAG_FT_FINISH => break,
            other => {
                return Err(PioError::Protocol(format!(
                    "worker got unexpected tag {other}"
                )));
            }
        }
    }
    Ok(RankReport {
        phases: phase_times,
        search_stats: stats_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::run_rank;
    use blast_core::search::SearchParams;
    use blast_core::seq::SeqRecord;
    use mpiblast::platform::{ClusterEnv, Platform};
    use mpiblast::setup::{stage_queries, stage_shared_db};
    use mpiblast::{ComputeModel, ReportOptions};
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};
    use simcluster::{FaultPlan, Sim};

    fn small_db() -> seqfmt::FormattedDb {
        let recs = generate(&SynthConfig::nr_like(21, 40_000));
        format_records(&recs, &FormatDbConfig::protein("nr-test"))
    }

    fn sample_queries(db: &seqfmt::FormattedDb, n: usize) -> Vec<SeqRecord> {
        use blast_core::search::SubjectSource;
        let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
        (0..n)
            .map(|i| {
                let s = frag.subject((i * 13) % frag.num_subjects());
                SeqRecord {
                    defline: format!("query_{i:05} sampled"),
                    residues: s.residues.to_vec(),
                    molecule: blast_core::Molecule::Protein,
                }
            })
            .collect()
    }

    type FaultyOutputs = Vec<Option<Result<RankReport, PioError>>>;

    fn run_with_plan(
        nranks: usize,
        nfrags: usize,
        schedule: FragmentSchedule,
        fault: FaultMode,
        plan: FaultPlan,
    ) -> (Vec<u8>, FaultyOutputs, Vec<usize>) {
        let db = small_db();
        let queries = sample_queries(&db, 3);
        let sim = Sim::new(nranks);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".into(),
            num_fragments: Some(nfrags),
            collective_output: false,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule,
            fault,
            rank_compute: None,
        };
        let out = sim.run_faulty(plan, |ctx| run_rank(&ctx, &cfg));
        let bytes = env.shared.peek("results.txt").unwrap_or_default();
        (bytes, out.outputs, out.killed)
    }

    fn reference_bytes() -> Vec<u8> {
        let (bytes, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Off,
            FaultPlan::none(),
        );
        assert!(killed.is_empty());
        assert!(outputs.iter().all(|o| matches!(o, Some(Ok(_)))));
        bytes
    }

    #[test]
    fn fault_free_fault_modes_are_byte_identical() {
        let reference = reference_bytes();
        for (schedule, fault) in [
            (FragmentSchedule::Dynamic, FaultMode::Recover),
            (FragmentSchedule::Dynamic, FaultMode::Detect),
            (FragmentSchedule::Static, FaultMode::Detect),
        ] {
            let (bytes, outputs, killed) =
                run_with_plan(4, 9, schedule, fault, FaultPlan::none());
            assert!(killed.is_empty());
            assert!(outputs.iter().all(|o| matches!(o, Some(Ok(_)))));
            assert_eq!(bytes, reference, "{schedule:?}/{fault:?}");
        }
    }

    #[test]
    fn single_worker_death_recovers_byte_identically() {
        let reference = reference_bytes();
        // Kill at different protocol points: mid-distribution (after the
        // initial request + one grant ack), late distribution, and right
        // after posting the submission.
        for sends in [2u64, 4, 5] {
            let (bytes, outputs, killed) = run_with_plan(
                4,
                9,
                FragmentSchedule::Dynamic,
                FaultMode::Recover,
                FaultPlan::none().kill_after_sends(2, sends),
            );
            assert_eq!(killed, vec![2], "kill after {sends} sends");
            assert_eq!(bytes, reference, "kill after {sends} sends");
            assert!(matches!(outputs[0], Some(Ok(_))), "master survives");
            assert!(outputs[2].is_none(), "killed rank has no output");
        }
    }

    #[test]
    fn three_worker_deaths_recover_byte_identically() {
        let reference = reference_bytes();
        let plan = FaultPlan::none()
            .kill_after_sends(1, 2)
            .kill_after_sends(2, 4)
            .kill_after_sends(3, 6);
        let (bytes, outputs, killed) =
            run_with_plan(5, 12, FragmentSchedule::Dynamic, FaultMode::Recover, plan);
        assert_eq!(killed, vec![1, 2, 3]);
        assert_eq!(bytes, reference);
        assert!(matches!(outputs[0], Some(Ok(_))), "master survives");
        assert!(matches!(outputs[4], Some(Ok(_))), "last worker survives");
    }

    #[test]
    fn static_detect_fails_fast_with_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            4,
            6,
            FragmentSchedule::Static,
            FaultMode::Detect,
            FaultPlan::none().kill_after_sends(2, 1),
        );
        assert_eq!(killed, vec![2]);
        assert_eq!(outputs[0], Some(Err(PioError::WorkerDied { rank: 2 })));
        for w in [1, 3] {
            assert_eq!(outputs[w], Some(Err(PioError::Aborted)), "worker {w}");
        }
    }

    #[test]
    fn dynamic_detect_fails_fast_with_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Detect,
            FaultPlan::none().kill_after_sends(2, 2),
        );
        assert_eq!(killed, vec![2]);
        assert_eq!(outputs[0], Some(Err(PioError::WorkerDied { rank: 2 })));
        for w in [1, 3] {
            assert_eq!(outputs[w], Some(Err(PioError::Aborted)), "worker {w}");
        }
    }

    #[test]
    fn master_death_surfaces_to_workers() {
        let (_, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Recover,
            FaultPlan::none().kill_after_sends(0, 5),
        );
        assert_eq!(killed, vec![0]);
        assert!(outputs[0].is_none());
        for (w, out) in outputs.iter().enumerate().skip(1) {
            assert_eq!(*out, Some(Err(PioError::MasterDied)), "worker {w}");
        }
    }

    #[test]
    fn losing_every_worker_is_a_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            2,
            3,
            FragmentSchedule::Dynamic,
            FaultMode::Recover,
            FaultPlan::none().kill_after_sends(1, 2),
        );
        assert_eq!(killed, vec![1]);
        assert_eq!(outputs[0], Some(Err(PioError::AllWorkersDied)));
    }

    #[test]
    fn epoch_framing_round_trips() {
        let framed = with_epoch(7, b"payload");
        let (e, body) = split_epoch(&framed).unwrap();
        assert_eq!(e, 7);
        assert_eq!(body, b"payload");
        assert!(split_epoch(b"short").is_err());
    }
}
