//! Fault-tolerance policy and error types for the pioBLAST run.
//!
//! The protocol that *implements* these policies lives in
//! [`crate::runtime`]: one event-driven master/worker state-machine pair
//! shared by every mode. [`FaultMode`] only selects how the runtime's
//! actions are lowered —
//!
//! * `Off` uses collectives (broadcast, gather, scatter), whose binomial
//!   trees deadlock the moment a rank dies (like real MPI without fault
//!   tolerance);
//! * `Detect` switches to point-to-point commands with liveness sweeps
//!   and fails fast with a typed [`PioError`] on any death;
//! * `Recover` (dynamic schedule only) re-queues a dead worker's
//!   fragments to survivors and restarts the collection epoch, producing
//!   byte-identical output. With [`checkpointing`](crate::runtime)
//!   enabled, only the victim's *unfinished* fragments are re-queued.
//!
//! **Why recovery is byte-identical.** Each epoch first completes
//! distribution, so the collected submissions always cover the full
//! fragment set; `merge_and_layout` is deterministic in the submissions'
//! *content* (not their placement — the invariance tests in `app` pin
//! this), so every epoch computes the same offsets and bytes; and output
//! flushes through the I/O plane rewrite records at those fixed offsets,
//! so records re-written after a restart are idempotent. The surviving
//! run therefore produces exactly the failure-free file.
//!
//! Stale messages from an aborted epoch are fenced with an 8-byte epoch
//! prefix on `SUBMIT_REQ`/`SUBMIT`/`ASSIGN`/`DONE` payloads; mismatching
//! epochs are discarded.

use std::fmt;

/// Fault-tolerance mode of a pioBLAST run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// No detection: the plain collective protocol (a rank death hangs
    /// the run, like real MPI without fault tolerance).
    #[default]
    Off,
    /// Detect rank death and fail fast with a typed [`PioError`].
    Detect,
    /// Detect worker death and reassign the dead worker's fragments to
    /// survivors; the output is byte-identical to a failure-free run.
    /// Requires the dynamic schedule.
    Recover,
}

/// Why a pioBLAST run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PioError {
    /// A worker died (reported by the master in `Detect` mode).
    WorkerDied {
        /// The dead rank.
        rank: usize,
    },
    /// Every worker died; recovery has nobody left to reassign to.
    AllWorkersDied,
    /// The master died (reported by surviving workers).
    MasterDied,
    /// The master told this worker to abandon the run.
    Aborted,
    /// A malformed or out-of-place message.
    Protocol(String),
    /// The input stage failed to read or materialize a fragment.
    Input(crate::input::InputError),
    /// The output stage could not land its bytes (e.g. a full file
    /// system): the run degrades to a typed error instead of aborting.
    Output(parafs::StoreError),
    /// The configuration combines knobs the runtime does not support
    /// (rejected up front by `PioBlastConfig::validate`, on every rank).
    UnsupportedConfig(String),
}

impl From<crate::input::InputError> for PioError {
    fn from(e: crate::input::InputError) -> PioError {
        PioError::Input(e)
    }
}

impl fmt::Display for PioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PioError::WorkerDied { rank } => write!(f, "worker rank {rank} died"),
            PioError::AllWorkersDied => write!(f, "every worker died"),
            PioError::MasterDied => write!(f, "master died"),
            PioError::Aborted => write!(f, "run aborted by the master"),
            PioError::Protocol(what) => write!(f, "protocol error: {what}"),
            PioError::Input(e) => write!(f, "input stage failed: {e}"),
            PioError::Output(e) => write!(f, "output stage failed: {e}"),
            PioError::UnsupportedConfig(what) => {
                write!(f, "unsupported configuration: {what}")
            }
        }
    }
}

impl std::error::Error for PioError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{run_rank, FragmentSchedule, PioBlastConfig};
    use blast_core::search::SearchParams;
    use blast_core::seq::SeqRecord;
    use mpiblast::platform::{ClusterEnv, Platform};
    use mpiblast::setup::{stage_queries, stage_shared_db};
    use mpiblast::{ComputeModel, RankReport, ReportOptions};
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};
    use simcluster::{FaultPlan, Sim};

    fn small_db() -> seqfmt::FormattedDb {
        let recs = generate(&SynthConfig::nr_like(21, 40_000));
        format_records(&recs, &FormatDbConfig::protein("nr-test"))
    }

    fn sample_queries(db: &seqfmt::FormattedDb, n: usize) -> Vec<SeqRecord> {
        use blast_core::search::SubjectSource;
        let frag = seqfmt::FragmentData::from_volume(&db.volumes[0]);
        (0..n)
            .map(|i| {
                let s = frag.subject((i * 13) % frag.num_subjects());
                SeqRecord {
                    defline: format!("query_{i:05} sampled"),
                    residues: s.residues.to_vec(),
                    molecule: blast_core::Molecule::Protein,
                }
            })
            .collect()
    }

    type FaultyOutputs = Vec<Option<Result<RankReport, PioError>>>;

    fn run_with_plan(
        nranks: usize,
        nfrags: usize,
        schedule: FragmentSchedule,
        fault: FaultMode,
        plan: FaultPlan,
    ) -> (Vec<u8>, FaultyOutputs, Vec<usize>) {
        run_with_plan_ckpt(nranks, nfrags, schedule, fault, false, plan)
    }

    fn run_with_plan_ckpt(
        nranks: usize,
        nfrags: usize,
        schedule: FragmentSchedule,
        fault: FaultMode,
        checkpoint: bool,
        plan: FaultPlan,
    ) -> (Vec<u8>, FaultyOutputs, Vec<usize>) {
        let db = small_db();
        let queries = sample_queries(&db, 3);
        let sim = Sim::new(nranks);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".into(),
            num_fragments: Some(nfrags),
            collective_output: false,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule,
            fault,
            checkpoint,
            rank_compute: None,
            threads: 1,
            io: Default::default(),
            service: None,
        };
        let out = sim.run_faulty(plan, |ctx| run_rank(&ctx, &cfg));
        let bytes = env.shared.peek("results.txt").unwrap_or_default();
        (bytes, out.outputs, out.killed)
    }

    fn reference_bytes() -> Vec<u8> {
        let (bytes, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Off,
            FaultPlan::none(),
        );
        assert!(killed.is_empty());
        assert!(outputs.iter().all(|o| matches!(o, Some(Ok(_)))));
        bytes
    }

    #[test]
    fn fault_free_fault_modes_are_byte_identical() {
        let reference = reference_bytes();
        for (schedule, fault, checkpoint) in [
            (FragmentSchedule::Dynamic, FaultMode::Recover, false),
            (FragmentSchedule::Dynamic, FaultMode::Recover, true),
            (FragmentSchedule::Dynamic, FaultMode::Detect, false),
            (FragmentSchedule::Static, FaultMode::Detect, false),
        ] {
            let (bytes, outputs, killed) =
                run_with_plan_ckpt(4, 9, schedule, fault, checkpoint, FaultPlan::none());
            assert!(killed.is_empty());
            assert!(outputs.iter().all(|o| matches!(o, Some(Ok(_)))));
            assert_eq!(bytes, reference, "{schedule:?}/{fault:?}/ckpt={checkpoint}");
        }
    }

    #[test]
    fn single_worker_death_recovers_byte_identically() {
        let reference = reference_bytes();
        // Kill at different protocol points: mid-distribution (after the
        // initial request + one grant ack), late distribution, and right
        // after posting the submission — with and without checkpointing.
        for checkpoint in [false, true] {
            for sends in [2u64, 4, 5] {
                let (bytes, outputs, killed) = run_with_plan_ckpt(
                    4,
                    9,
                    FragmentSchedule::Dynamic,
                    FaultMode::Recover,
                    checkpoint,
                    FaultPlan::none().kill_after_sends(2, sends),
                );
                assert_eq!(killed, vec![2], "kill after {sends} sends");
                assert_eq!(
                    bytes, reference,
                    "kill after {sends} sends, ckpt={checkpoint}"
                );
                assert!(matches!(outputs[0], Some(Ok(_))), "master survives");
                assert!(outputs[2].is_none(), "killed rank has no output");
            }
        }
    }

    #[test]
    fn three_worker_deaths_recover_byte_identically() {
        let reference = reference_bytes();
        for checkpoint in [false, true] {
            let plan = FaultPlan::none()
                .kill_after_sends(1, 2)
                .kill_after_sends(2, 4)
                .kill_after_sends(3, 6);
            let (bytes, outputs, killed) = run_with_plan_ckpt(
                5,
                12,
                FragmentSchedule::Dynamic,
                FaultMode::Recover,
                checkpoint,
                plan,
            );
            assert_eq!(killed, vec![1, 2, 3]);
            assert_eq!(bytes, reference, "ckpt={checkpoint}");
            assert!(matches!(outputs[0], Some(Ok(_))), "master survives");
            assert!(matches!(outputs[4], Some(Ok(_))), "last worker survives");
        }
    }

    #[test]
    fn static_detect_fails_fast_with_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            4,
            6,
            FragmentSchedule::Static,
            FaultMode::Detect,
            FaultPlan::none().kill_after_sends(2, 1),
        );
        assert_eq!(killed, vec![2]);
        assert_eq!(outputs[0], Some(Err(PioError::WorkerDied { rank: 2 })));
        for w in [1, 3] {
            assert_eq!(outputs[w], Some(Err(PioError::Aborted)), "worker {w}");
        }
    }

    #[test]
    fn dynamic_detect_fails_fast_with_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Detect,
            FaultPlan::none().kill_after_sends(2, 2),
        );
        assert_eq!(killed, vec![2]);
        assert_eq!(outputs[0], Some(Err(PioError::WorkerDied { rank: 2 })));
        for w in [1, 3] {
            assert_eq!(outputs[w], Some(Err(PioError::Aborted)), "worker {w}");
        }
    }

    #[test]
    fn master_death_surfaces_to_workers() {
        let (_, outputs, killed) = run_with_plan(
            4,
            9,
            FragmentSchedule::Dynamic,
            FaultMode::Recover,
            FaultPlan::none().kill_after_sends(0, 5),
        );
        assert_eq!(killed, vec![0]);
        assert!(outputs[0].is_none());
        for (w, out) in outputs.iter().enumerate().skip(1) {
            assert_eq!(*out, Some(Err(PioError::MasterDied)), "worker {w}");
        }
    }

    #[test]
    fn losing_every_worker_is_a_typed_error() {
        let (_, outputs, killed) = run_with_plan(
            2,
            3,
            FragmentSchedule::Dynamic,
            FaultMode::Recover,
            FaultPlan::none().kill_after_sends(1, 2),
        );
        assert_eq!(killed, vec![1]);
        assert_eq!(outputs[0], Some(Err(PioError::AllWorkersDied)));
    }

    #[test]
    fn checkpoint_blobs_are_cleaned_up_after_a_run() {
        let (_, outputs, _) = run_with_plan_ckpt(
            4,
            6,
            FragmentSchedule::Dynamic,
            FaultMode::Recover,
            true,
            FaultPlan::none(),
        );
        assert!(outputs.iter().all(|o| matches!(o, Some(Ok(_)))));
        // run_with_plan_ckpt peeks the shared store after the run; make
        // our own run here to inspect the blob paths directly.
        let db = small_db();
        let queries = sample_queries(&db, 3);
        let sim = Sim::new(4);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".into(),
            num_fragments: Some(6),
            collective_output: false,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule: FragmentSchedule::Dynamic,
            fault: FaultMode::Recover,
            checkpoint: true,
            rank_compute: None,
            threads: 1,
            io: Default::default(),
            service: None,
        };
        sim.run(|ctx| run_rank(&ctx, &cfg));
        let leftovers: Vec<String> = env.shared.peek_list("results.txt.ckpt.");
        assert!(
            leftovers.is_empty(),
            "stale checkpoint blobs: {leftovers:?}"
        );
    }
}
