//! The master's protocol state machine — pure transitions, no I/O.
//!
//! One machine drives every mode. The cycle per query batch is
//! `Distribute -> Collect -> WaitWrites`, then either the next batch or
//! `Finished`:
//!
//! * **Distribute** — fragments flow from the grant queue to idle live
//!   workers (all up front for the static schedule, one per request for
//!   the dynamic one). Completion means the queue is drained and every
//!   live worker has acknowledged its last grant.
//! * **Collect** — a new epoch is fenced and every live worker is asked
//!   for its metadata submission. Stale-epoch submissions are discarded.
//! * **WaitWrites** — offsets were assigned; the master waits for every
//!   live worker's write acknowledgement before sealing the batch.
//!
//! A worker death is one event: in `Detect` policy it fails the run; in
//! `Recover` policy the victim's unfinished fragments re-enter the queue
//! (rewinding the phase to `Distribute`) while its checkpointed ones are
//! adopted as orphans — if nothing needs re-searching, the machine only
//! rewinds to `Collect` and re-merges with the orphans spliced in.

use mpiblast::wire::MetaSubmission;
use mpisim::sched::{chunk_evenly, GrantQueue};

use super::ledger::SubmissionLedger;
use super::RunPolicy;
use crate::app::FragmentSchedule;
use crate::fault::{FaultMode, PioError};

/// What the interpreter reports to the master machine.
#[derive(Debug, Clone)]
pub enum MasterEvent {
    /// A worker requested a fragment / acknowledged its last grant.
    Ready {
        /// Sender.
        from: usize,
    },
    /// A worker's epoch-fenced metadata submission.
    Submission {
        /// Sender.
        from: usize,
        /// Epoch the submission answers.
        epoch: u64,
        /// The metadata.
        sub: MetaSubmission,
    },
    /// A worker finished writing its assigned records.
    WriteDone {
        /// Sender.
        from: usize,
        /// Epoch the acknowledgement answers.
        epoch: u64,
    },
    /// Workers were found dead. `checkpointed` is the subset of their
    /// owned fragments with a valid checkpoint blob on the shared FS.
    Dead {
        /// The newly dead ranks.
        ranks: Vec<usize>,
        /// Their checkpoint-covered fragments.
        checkpointed: Vec<usize>,
    },
    /// The static scatter completed (collective mode).
    ScatterDone,
    /// The per-batch metadata gather completed (collective mode).
    GatherDone {
        /// Rank-indexed submissions.
        subs: Vec<MetaSubmission>,
    },
    /// The batch's assignment scatter + writes completed (collective
    /// mode, where output is a synchronous collective).
    WriteAllDone,
}

/// What the interpreter must do next.
#[derive(Debug, Clone)]
pub enum MasterAction {
    /// Send these fragments to a worker (point-to-point modes and the
    /// fault-free dynamic schedule).
    Grant {
        /// Destination worker.
        to: usize,
        /// Global fragment ids.
        frags: Vec<usize>,
        /// Batch the grant belongs to.
        batch: usize,
    },
    /// Tell a worker the queue is empty (fault-free dynamic schedule).
    Drain {
        /// Destination worker.
        to: usize,
    },
    /// Scatter the rank-indexed fragment chunks (collective mode).
    Scatter {
        /// `chunks[rank]`; `chunks[0]` is empty (the master).
        chunks: Vec<Vec<usize>>,
    },
    /// Ask every live worker for its batch submission under this epoch.
    Collect {
        /// Batch to collect.
        batch: usize,
        /// Fencing epoch.
        epoch: u64,
    },
    /// Merge the submissions, assign offsets, start the writes.
    Merge {
        /// Batch being merged.
        batch: usize,
        /// Fencing epoch.
        epoch: u64,
        /// Rank-indexed submissions (dead ranks empty).
        subs: Vec<MetaSubmission>,
        /// Checkpoint-adopted fragments to splice into the merge.
        orphans: Vec<usize>,
    },
    /// All live workers wrote: write the master's own sections (and any
    /// orphan records) for this batch.
    FinishBatch {
        /// The sealed batch.
        batch: usize,
    },
    /// The run is complete: release the workers, clean up.
    Finish,
    /// The run cannot complete.
    Fail {
        /// Why.
        error: PioError,
        /// Whether surviving workers must be told to abort.
        abort_workers: bool,
    },
}

/// The master's protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterPhase {
    /// Granting fragments.
    Distribute,
    /// Collecting epoch-fenced submissions.
    Collect,
    /// Waiting for write acknowledgements.
    WaitWrites,
    /// Finished successfully.
    Finished,
    /// Failed with a reported error.
    Failed,
}

/// The master state machine. Feed it events via [`MasterSm::handle`];
/// perform the returned actions in order.
#[derive(Debug)]
pub struct MasterSm {
    policy: RunPolicy,
    phase: MasterPhase,
    live: Vec<bool>,
    idle: Vec<bool>,
    drained: Vec<bool>,
    scatter_done: bool,
    queue: GrantQueue,
    ledger: SubmissionLedger,
    epoch: u64,
    batch: usize,
    subs: Vec<Option<MetaSubmission>>,
    done: Vec<bool>,
    /// Service mode: which fragments each rank is believed to hold
    /// resident (last grant wins). Steers re-grants back to the data.
    affinity_hint: Vec<Vec<usize>>,
}

impl MasterSm {
    /// Build the machine and the initial actions (static grants or the
    /// scatter; nothing for dynamic schedules, which are request-driven).
    /// `live[w]` marks the workers that accepted the query bundle.
    pub fn new(policy: RunPolicy, live: Vec<bool>) -> (MasterSm, Vec<MasterAction>) {
        let nranks = policy.nranks;
        assert_eq!(live.len(), nranks);
        let mut sm = MasterSm {
            policy,
            phase: MasterPhase::Distribute,
            live,
            idle: vec![false; nranks],
            drained: vec![false; nranks],
            scatter_done: false,
            queue: GrantQueue::new(policy.nfrags, nranks),
            ledger: SubmissionLedger::new(policy.nfrags),
            epoch: 0,
            batch: 0,
            subs: vec![None; nranks],
            done: vec![false; nranks],
            affinity_hint: vec![Vec::new(); nranks],
        };
        if sm.policy.p2p() && !sm.any_worker_live() {
            sm.phase = MasterPhase::Failed;
            let fail = MasterAction::Fail {
                error: PioError::AllWorkersDied,
                abort_workers: false,
            };
            return (sm, vec![fail]);
        }
        let mut acts = Vec::new();
        if sm.policy.schedule == FragmentSchedule::Static {
            let workers: Vec<usize> = if sm.policy.p2p() {
                sm.live_workers().collect()
            } else {
                (1..nranks).collect()
            };
            let sizes: Vec<usize> =
                chunk_evenly((0..sm.policy.nfrags).collect::<Vec<_>>(), workers.len())
                    .into_iter()
                    .map(|c| c.len())
                    .collect();
            let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); nranks];
            for (&w, n) in workers.iter().zip(sizes) {
                let frags = sm.queue.grant_chunk(w, n);
                for &f in &frags {
                    sm.ledger.granted(f, w);
                }
                chunks[w] = frags;
            }
            if sm.policy.p2p() {
                for &w in &workers {
                    acts.push(MasterAction::Grant {
                        to: w,
                        frags: std::mem::take(&mut chunks[w]),
                        batch: 0,
                    });
                }
            } else {
                acts.push(MasterAction::Scatter { chunks });
            }
        }
        (sm, acts)
    }

    /// Current phase.
    pub fn phase(&self) -> MasterPhase {
        self.phase
    }

    /// Current query batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fragments currently owned by `rank`.
    pub fn owned(&self, rank: usize) -> &[usize] {
        self.queue.owned(rank)
    }

    /// The per-fragment ledger.
    pub fn ledger(&self) -> &SubmissionLedger {
        &self.ledger
    }

    /// Still-live worker ranks, ascending.
    pub fn live_workers(&self) -> impl Iterator<Item = usize> + '_ {
        (1..self.policy.nranks).filter(|&w| self.live[w])
    }

    fn any_worker_live(&self) -> bool {
        self.live_workers().next().is_some()
    }

    /// Apply one event; returns the actions to perform, in order.
    pub fn handle(&mut self, event: MasterEvent) -> Vec<MasterAction> {
        match event {
            MasterEvent::Ready { from } => self.on_ready(from),
            MasterEvent::Submission { from, epoch, sub } => self.on_submission(from, epoch, sub),
            MasterEvent::WriteDone { from, epoch } => self.on_write_done(from, epoch),
            MasterEvent::Dead {
                ranks,
                checkpointed,
            } => self.on_dead(&ranks, &checkpointed),
            MasterEvent::ScatterDone => self.on_scatter_done(),
            MasterEvent::GatherDone { subs } => self.on_gather_done(subs),
            MasterEvent::WriteAllDone => self.advance_batch(),
        }
    }

    /// Grant queued fragments to idle live workers (point-to-point
    /// modes; the fault-free dynamic schedule grants per-request in
    /// [`Self::on_ready`] instead, preserving arrival order).
    fn pump_grants(&mut self) -> Vec<MasterAction> {
        let mut acts = Vec::new();
        if !self.policy.p2p() {
            return acts;
        }
        while !self.queue.is_drained() {
            let Some(w) = (1..self.policy.nranks).find(|&w| self.live[w] && self.idle[w]) else {
                break;
            };
            let f = if self.policy.affinity {
                self.queue
                    .grant_to_preferring(w, &self.affinity_hint[w])
                    .expect("queue not drained")
            } else {
                self.queue.grant_to(w).expect("queue not drained")
            };
            if self.policy.service {
                self.note_residency(f, w);
            }
            self.ledger.granted(f, w);
            self.idle[w] = false;
            acts.push(MasterAction::Grant {
                to: w,
                frags: vec![f],
                batch: self.batch,
            });
        }
        acts
    }

    /// Record that `frag`'s bytes now live at `rank` (service mode): the
    /// re-grant of the next stream batch should go back to the data.
    fn note_residency(&mut self, frag: usize, rank: usize) {
        for hint in &mut self.affinity_hint {
            hint.retain(|&f| f != frag);
        }
        self.affinity_hint[rank].push(frag);
    }

    fn distribution_complete(&self) -> bool {
        if !self.queue.is_drained() {
            return false;
        }
        if self.policy.p2p() {
            self.live_workers().all(|w| self.idle[w])
        } else {
            match self.policy.schedule {
                FragmentSchedule::Dynamic => (1..self.policy.nranks).all(|w| self.drained[w]),
                FragmentSchedule::Static => self.scatter_done,
            }
        }
    }

    /// Open a new fenced epoch and ask for submissions.
    fn start_collect(&mut self) -> Vec<MasterAction> {
        self.epoch += 1;
        self.subs = vec![None; self.policy.nranks];
        self.done = vec![false; self.policy.nranks];
        self.phase = MasterPhase::Collect;
        vec![MasterAction::Collect {
            batch: self.batch,
            epoch: self.epoch,
        }]
    }

    fn collection_complete(&self) -> bool {
        self.live_workers().all(|w| self.subs[w].is_some())
    }

    fn merge_actions(&mut self) -> Vec<MasterAction> {
        self.phase = MasterPhase::WaitWrites;
        let subs = self
            .subs
            .iter_mut()
            .map(|s| s.take().unwrap_or_default())
            .collect();
        vec![MasterAction::Merge {
            batch: self.batch,
            epoch: self.epoch,
            subs,
            orphans: self.ledger.orphans(),
        }]
    }

    /// Resume distribution (after a requeue or at a batch boundary) and
    /// fall through to collection if there is nothing left to grant.
    fn redistribute(&mut self) -> Vec<MasterAction> {
        self.phase = MasterPhase::Distribute;
        let mut acts = self.pump_grants();
        if self.distribution_complete() {
            acts.extend(self.start_collect());
        }
        acts
    }

    /// Seal the batch: either the run is over, or orphans re-enter the
    /// queue and the next batch's cycle starts.
    fn advance_batch(&mut self) -> Vec<MasterAction> {
        if self.batch + 1 == self.policy.nbatches {
            self.phase = MasterPhase::Finished;
            return vec![MasterAction::Finish];
        }
        self.batch += 1;
        for f in self.ledger.advance_batch() {
            self.queue.push(f);
        }
        if self.policy.service {
            // A stream batch searches the whole database again: every
            // fragment re-enters circulation. Workers keep the *bytes*
            // resident, and the affinity hints steer each fragment's
            // re-grant back to its last holder so the read is skipped.
            for w in 1..self.policy.nranks {
                let (requeued, _) = self.queue.release(w, |_| true);
                for &f in &requeued {
                    self.ledger.requeued(f);
                }
            }
        }
        self.redistribute()
    }

    fn on_ready(&mut self, from: usize) -> Vec<MasterAction> {
        if self.policy.p2p() {
            if !self.live[from] {
                return Vec::new();
            }
            self.idle[from] = true;
            self.ledger.acked(from);
            if self.phase != MasterPhase::Distribute {
                return Vec::new();
            }
            let mut acts = self.pump_grants();
            if self.distribution_complete() {
                acts.extend(self.start_collect());
            }
            acts
        } else {
            // Fault-free dynamic schedule: serve requests in arrival
            // order, one fragment each; an empty queue drains the
            // requester.
            debug_assert_eq!(self.phase, MasterPhase::Distribute);
            match self.queue.grant_to(from) {
                Some(f) => {
                    self.ledger.granted(f, from);
                    vec![MasterAction::Grant {
                        to: from,
                        frags: vec![f],
                        batch: self.batch,
                    }]
                }
                None => {
                    self.drained[from] = true;
                    let mut acts = vec![MasterAction::Drain { to: from }];
                    if self.distribution_complete() {
                        acts.extend(self.start_collect());
                    }
                    acts
                }
            }
        }
    }

    fn on_submission(&mut self, from: usize, epoch: u64, sub: MetaSubmission) -> Vec<MasterAction> {
        if self.phase != MasterPhase::Collect || epoch != self.epoch || !self.live[from] {
            return Vec::new(); // stale epoch or stale sender: discard
        }
        self.subs[from] = Some(sub);
        self.ledger.acked(from);
        if self.collection_complete() {
            self.merge_actions()
        } else {
            Vec::new()
        }
    }

    fn on_write_done(&mut self, from: usize, epoch: u64) -> Vec<MasterAction> {
        if self.phase != MasterPhase::WaitWrites || epoch != self.epoch || !self.live[from] {
            return Vec::new();
        }
        self.done[from] = true;
        if self.live_workers().all(|w| self.done[w]) {
            let mut acts = vec![MasterAction::FinishBatch { batch: self.batch }];
            acts.extend(self.advance_batch());
            acts
        } else {
            Vec::new()
        }
    }

    fn on_dead(&mut self, ranks: &[usize], checkpointed: &[usize]) -> Vec<MasterAction> {
        if matches!(self.phase, MasterPhase::Finished | MasterPhase::Failed) {
            return Vec::new();
        }
        for &w in ranks {
            self.live[w] = false;
            self.idle[w] = false;
            self.subs[w] = None;
            self.done[w] = false;
        }
        if self.policy.fault == FaultMode::Detect {
            self.phase = MasterPhase::Failed;
            return vec![MasterAction::Fail {
                error: PioError::WorkerDied { rank: ranks[0] },
                abort_workers: true,
            }];
        }
        // Recover: requeue the victims' unfinished fragments; adopt the
        // checkpointed ones as orphans.
        let ck: std::collections::BTreeSet<usize> = checkpointed.iter().copied().collect();
        let mut requeued_any = false;
        for &w in ranks {
            // Service mode requeues a victim's fragments at the *front*:
            // a stream of batches keeps refilling the queue's tail, and a
            // tail requeue would starve recovered fragments behind work
            // that arrived after the death.
            let (requeued, orphaned) = if self.policy.service {
                self.queue.release_front(w, |f| !ck.contains(&f))
            } else {
                self.queue.release(w, |f| !ck.contains(&f))
            };
            self.affinity_hint[w].clear();
            for &f in &requeued {
                self.ledger.requeued(f);
            }
            for &f in &orphaned {
                self.ledger.orphaned(f);
            }
            requeued_any |= !requeued.is_empty();
        }
        if !self.any_worker_live() {
            self.phase = MasterPhase::Failed;
            return vec![MasterAction::Fail {
                error: PioError::AllWorkersDied,
                abort_workers: false,
            }];
        }
        match self.phase {
            MasterPhase::Distribute => {
                let mut acts = self.pump_grants();
                if self.distribution_complete() {
                    acts.extend(self.start_collect());
                }
                acts
            }
            MasterPhase::Collect => {
                if requeued_any {
                    self.redistribute()
                } else if self.collection_complete() {
                    // The victim's fragments are all orphaned; the
                    // survivors' submissions plus the orphan blobs still
                    // cover every fragment.
                    self.merge_actions()
                } else {
                    Vec::new()
                }
            }
            MasterPhase::WaitWrites => {
                if requeued_any {
                    self.redistribute()
                } else {
                    // Nothing to re-search: rewind only to collection so
                    // the merge re-runs with the orphans spliced in.
                    self.start_collect()
                }
            }
            MasterPhase::Finished | MasterPhase::Failed => unreachable!(),
        }
    }

    fn on_scatter_done(&mut self) -> Vec<MasterAction> {
        self.scatter_done = true;
        if self.distribution_complete() {
            self.start_collect()
        } else {
            Vec::new()
        }
    }

    fn on_gather_done(&mut self, subs: Vec<MetaSubmission>) -> Vec<MasterAction> {
        debug_assert_eq!(self.phase, MasterPhase::Collect);
        self.phase = MasterPhase::WaitWrites;
        vec![MasterAction::Merge {
            batch: self.batch,
            epoch: self.epoch,
            subs,
            orphans: Vec::new(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(
        schedule: FragmentSchedule,
        fault: FaultMode,
        checkpoint: bool,
        nfrags: usize,
        nbatches: usize,
    ) -> RunPolicy {
        RunPolicy {
            schedule,
            fault,
            checkpoint,
            nranks: 3,
            nfrags,
            nbatches,
            service: false,
            affinity: false,
        }
    }

    fn sub() -> MetaSubmission {
        MetaSubmission::default()
    }

    #[test]
    fn collective_static_walks_the_batch_cycle() {
        let p = policy(FragmentSchedule::Static, FaultMode::Off, false, 4, 2);
        let (mut sm, acts) = MasterSm::new(p, vec![true; 3]);
        let [MasterAction::Scatter { chunks }] = &acts[..] else {
            panic!("expected a scatter, got {acts:?}");
        };
        assert_eq!(chunks[0], Vec::<usize>::new());
        assert_eq!(chunks.iter().flatten().count(), 4);
        let acts = sm.handle(MasterEvent::ScatterDone);
        assert!(matches!(
            &acts[..],
            [MasterAction::Collect { batch: 0, .. }]
        ));
        let acts = sm.handle(MasterEvent::GatherDone {
            subs: vec![sub(); 3],
        });
        assert!(matches!(&acts[..], [MasterAction::Merge { batch: 0, .. }]));
        let acts = sm.handle(MasterEvent::WriteAllDone);
        assert!(matches!(
            &acts[..],
            [MasterAction::Collect { batch: 1, .. }]
        ));
        let _ = sm.handle(MasterEvent::GatherDone {
            subs: vec![sub(); 3],
        });
        let acts = sm.handle(MasterEvent::WriteAllDone);
        assert!(matches!(&acts[..], [MasterAction::Finish]));
        assert_eq!(sm.phase(), MasterPhase::Finished);
    }

    #[test]
    fn dynamic_requests_are_served_in_arrival_order() {
        let p = policy(FragmentSchedule::Dynamic, FaultMode::Off, false, 3, 1);
        let (mut sm, acts) = MasterSm::new(p, vec![true; 3]);
        assert!(acts.is_empty(), "dynamic schedules are request-driven");
        for (req, frag) in [(2usize, 0usize), (1, 1), (2, 2)] {
            let acts = sm.handle(MasterEvent::Ready { from: req });
            let [MasterAction::Grant { to, frags, .. }] = &acts[..] else {
                panic!("expected a grant");
            };
            assert_eq!((*to, frags.as_slice()), (req, &[frag][..]));
        }
        let acts = sm.handle(MasterEvent::Ready { from: 1 });
        assert!(matches!(&acts[..], [MasterAction::Drain { to: 1 }]));
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        assert!(matches!(
            &acts[..],
            [MasterAction::Drain { to: 2 }, MasterAction::Collect { .. }]
        ));
    }

    #[test]
    fn recover_requeues_unfinished_and_adopts_checkpointed() {
        let p = policy(FragmentSchedule::Dynamic, FaultMode::Recover, true, 3, 1);
        let (mut sm, _) = MasterSm::new(p, vec![true; 3]);
        // Worker 1 takes two fragments (acking the first), worker 2 one.
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        let _ = sm.handle(MasterEvent::Ready { from: 2 });
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        assert_eq!(sm.owned(1), &[0, 2]);
        // Worker 1 dies; fragment 0 is checkpointed, fragment 2 is not.
        let acts = sm.handle(MasterEvent::Dead {
            ranks: vec![1],
            checkpointed: vec![0],
        });
        assert_eq!(sm.ledger().orphans(), vec![0]);
        // Fragment 2 must be re-granted — worker 2 is busy, so no grant
        // yet; its ack pulls the requeued fragment.
        assert!(acts.is_empty());
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        let [MasterAction::Grant { to: 2, frags, .. }] = &acts[..] else {
            panic!("expected the requeued grant, got {acts:?}");
        };
        assert_eq!(frags, &[2]);
        // Final ack completes distribution; the merge sees the orphan.
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        let [MasterAction::Collect { epoch, .. }] = &acts[..] else {
            panic!("expected collection, got {acts:?}");
        };
        let acts = sm.handle(MasterEvent::Submission {
            from: 2,
            epoch: *epoch,
            sub: sub(),
        });
        let [MasterAction::Merge { orphans, .. }] = &acts[..] else {
            panic!("expected the merge, got {acts:?}");
        };
        assert_eq!(orphans, &[0]);
    }

    #[test]
    fn detect_fails_fast_and_stale_epochs_are_discarded() {
        let p = policy(FragmentSchedule::Dynamic, FaultMode::Detect, false, 2, 1);
        let (mut sm, _) = MasterSm::new(p, vec![true; 3]);
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        let stale = sm.handle(MasterEvent::Submission {
            from: 1,
            epoch: 99,
            sub: sub(),
        });
        assert!(stale.is_empty(), "wrong phase/epoch must be discarded");
        let acts = sm.handle(MasterEvent::Dead {
            ranks: vec![1],
            checkpointed: vec![],
        });
        let [MasterAction::Fail {
            error: PioError::WorkerDied { rank: 1 },
            abort_workers: true,
        }] = &acts[..]
        else {
            panic!("expected a fail action, got {acts:?}");
        };
        assert_eq!(sm.phase(), MasterPhase::Failed);
    }

    #[test]
    fn service_regrants_every_fragment_to_its_resident_holder() {
        let mut p = policy(FragmentSchedule::Dynamic, FaultMode::Off, false, 4, 2);
        p.service = true;
        p.affinity = true;
        let (mut sm, acts) = MasterSm::new(p, vec![true; 3]);
        assert!(acts.is_empty());
        // Batch 0: requests alternate, so worker 1 ends up holding
        // fragments {0, 2} and worker 2 holds {1, 3}.
        for w in [1, 2, 1, 2] {
            let _ = sm.handle(MasterEvent::Ready { from: w });
        }
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        let [MasterAction::Collect { epoch, .. }] = &acts[..] else {
            panic!("expected collection, got {acts:?}");
        };
        assert_eq!(sm.owned(1), &[0, 2]);
        assert_eq!(sm.owned(2), &[1, 3]);
        let epoch = *epoch;
        for w in [1, 2] {
            let _ = sm.handle(MasterEvent::Submission {
                from: w,
                epoch,
                sub: sub(),
            });
        }
        let _ = sm.handle(MasterEvent::WriteDone { from: 1, epoch });
        let acts = sm.handle(MasterEvent::WriteDone { from: 2, epoch });
        // Sealing the batch re-queues all four fragments and immediately
        // re-grants one to each idle worker — the one it already holds.
        let [MasterAction::FinishBatch { batch: 0 }, MasterAction::Grant {
            to: 1,
            frags: f1,
            batch: 1,
        }, MasterAction::Grant {
            to: 2,
            frags: f2,
            batch: 1,
        }] = &acts[..]
        else {
            panic!("expected finish + affinity re-grants, got {acts:?}");
        };
        assert_eq!((f1.as_slice(), f2.as_slice()), (&[0][..], &[1][..]));
        // The follow-up requests pull each worker's other resident
        // fragment, so batch 1 repeats batch 0's placement exactly.
        let acts = sm.handle(MasterEvent::Ready { from: 1 });
        let [MasterAction::Grant { to: 1, frags, .. }] = &acts[..] else {
            panic!("expected a grant, got {acts:?}");
        };
        assert_eq!(frags, &[2]);
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        let [MasterAction::Grant { to: 2, frags, .. }] = &acts[..] else {
            panic!("expected a grant, got {acts:?}");
        };
        assert_eq!(frags, &[3]);
        assert_eq!(sm.owned(1), &[0, 2]);
        assert_eq!(sm.owned(2), &[1, 3]);
    }

    #[test]
    fn service_death_requeues_recovered_fragments_at_the_front() {
        let mut p = policy(FragmentSchedule::Dynamic, FaultMode::Recover, false, 4, 1);
        p.service = true;
        let (mut sm, _) = MasterSm::new(p, vec![true; 3]);
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        let _ = sm.handle(MasterEvent::Ready { from: 2 });
        let _ = sm.handle(MasterEvent::Ready { from: 1 });
        assert_eq!(sm.owned(1), &[0, 2]);
        // Worker 1 dies holding {0, 2}; fragment 3 is still queued. The
        // recovered fragments must jump *ahead* of it, not behind.
        let acts = sm.handle(MasterEvent::Dead {
            ranks: vec![1],
            checkpointed: vec![],
        });
        assert!(acts.is_empty(), "worker 2 is busy, nothing to grant yet");
        let acts = sm.handle(MasterEvent::Ready { from: 2 });
        let [MasterAction::Grant { to: 2, frags, .. }] = &acts[..] else {
            panic!("expected a grant, got {acts:?}");
        };
        assert_eq!(frags, &[0], "recovered fragment granted before the backlog");
    }

    #[test]
    fn losing_every_worker_fails_without_aborts() {
        let p = policy(FragmentSchedule::Dynamic, FaultMode::Recover, false, 2, 1);
        let (mut sm, _) = MasterSm::new(p, vec![true, true, false]);
        let acts = sm.handle(MasterEvent::Dead {
            ranks: vec![1],
            checkpointed: vec![],
        });
        assert!(matches!(
            &acts[..],
            [MasterAction::Fail {
                error: PioError::AllWorkersDied,
                abort_workers: false,
            }]
        ));
    }
}
