//! The worker's protocol state machine — pure transitions, no I/O.
//!
//! The worker is driven entirely by the master. Its only real state is
//! which query batch it has prepared and whether its held fragments have
//! been searched against it. The policy decides *when* searching
//! happens: search-on-grant modes (dynamic schedules and all fault
//! modes) pipeline each granted fragment's input + search before the
//! acknowledgement; the fault-free static schedule defers searching to
//! the submission request, batch by batch.

use super::RunPolicy;

/// What the interpreter reports to the worker machine.
#[derive(Debug, Clone, Copy)]
pub enum WorkerEvent {
    /// Fragments arrived (a grant or the static scatter chunk).
    Grant {
        /// Batch the grant belongs to.
        batch: usize,
        /// How many fragments arrived.
        nfrags: usize,
    },
    /// The master's queue is empty (fault-free dynamic schedule).
    Drained,
    /// The master asked for this batch's submission under this epoch.
    SubmitReq {
        /// Batch to submit.
        batch: usize,
        /// Fencing epoch to echo.
        epoch: u64,
    },
    /// Offset assignments arrived for the current submission.
    Assign {
        /// Fencing epoch to echo.
        epoch: u64,
    },
    /// The master sealed the run.
    Finish,
}

/// What the interpreter must do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerAction {
    /// Prepare this query batch (masking, lookup tables, search spaces)
    /// and reset the result cache.
    Prepare {
        /// Batch to prepare.
        batch: usize,
    },
    /// Search every already-held fragment against the prepared batch
    /// (and checkpoint each, when the policy says so).
    SearchHeld {
        /// Batch being searched.
        batch: usize,
    },
    /// Read the newly granted fragments; search each on arrival when
    /// `search` is set.
    Ingest {
        /// Batch the fragments belong to.
        batch: usize,
        /// How many pending assignments to ingest.
        count: usize,
        /// Pipeline the per-fragment search (and checkpoint).
        search: bool,
    },
    /// Acknowledge the grant / request more work.
    AckGrant,
    /// Submit the batch's metadata under this epoch.
    Submit {
        /// Batch to submit.
        batch: usize,
        /// Fencing epoch to echo.
        epoch: u64,
    },
    /// Write the assigned records and acknowledge under this epoch.
    WriteAssigned {
        /// Batch being written (service mode writes each stream batch's
        /// report to its own per-batch path).
        batch: usize,
        /// Fencing epoch to echo.
        epoch: u64,
    },
    /// The run is over.
    Stop,
}

/// The worker state machine. Feed it events via [`WorkerSm::handle`];
/// perform the returned actions in order.
#[derive(Debug)]
pub struct WorkerSm {
    policy: RunPolicy,
    batch: Option<usize>,
    searched: bool,
}

impl WorkerSm {
    /// Build the machine and the initial actions. Search-on-grant modes
    /// prepare batch 0 up front (grants are searched as they arrive);
    /// the fault-free static schedule prepares lazily on its first
    /// grant.
    pub fn new(policy: RunPolicy) -> (WorkerSm, Vec<WorkerAction>) {
        if policy.search_on_grant() {
            let sm = WorkerSm {
                policy,
                batch: Some(0),
                searched: true, // nothing held yet
            };
            (sm, vec![WorkerAction::Prepare { batch: 0 }])
        } else {
            let sm = WorkerSm {
                policy,
                batch: None,
                searched: false,
            };
            (sm, Vec::new())
        }
    }

    /// Move to `batch` if it is new; preparing invalidates the searched
    /// flag so held fragments are re-searched against the new batch.
    fn advance(&mut self, batch: usize) -> Vec<WorkerAction> {
        if self.batch.is_some_and(|b| b >= batch) {
            return Vec::new();
        }
        self.batch = Some(batch);
        // Service mode never re-searches held fragments: residency is a
        // *cache* (skipping the read), not outstanding work. Each stream
        // batch searches exactly what the master re-grants it.
        self.searched = self.policy.service;
        vec![WorkerAction::Prepare { batch }]
    }

    /// Apply one event; returns the actions to perform, in order.
    pub fn handle(&mut self, event: WorkerEvent) -> Vec<WorkerAction> {
        match event {
            WorkerEvent::Grant { batch, nfrags } => {
                let mut acts = self.advance(batch);
                if self.policy.search_on_grant() && !self.searched {
                    // New batch with fragments already in hand: bring
                    // them up to date before ingesting the new grant.
                    acts.push(WorkerAction::SearchHeld { batch });
                    self.searched = true;
                }
                acts.push(WorkerAction::Ingest {
                    batch,
                    count: nfrags,
                    search: self.policy.search_on_grant(),
                });
                if self.policy.acks_grants() {
                    acts.push(WorkerAction::AckGrant);
                }
                acts
            }
            WorkerEvent::Drained => Vec::new(),
            WorkerEvent::SubmitReq { batch, epoch } => {
                let mut acts = self.advance(batch);
                if !self.searched {
                    acts.push(WorkerAction::SearchHeld {
                        batch: self.batch.expect("advance set the batch"),
                    });
                    self.searched = true;
                }
                acts.push(WorkerAction::Submit {
                    batch: self.batch.expect("advance set the batch"),
                    epoch,
                });
                acts
            }
            WorkerEvent::Assign { epoch } => vec![WorkerAction::WriteAssigned {
                batch: self.batch.unwrap_or(0),
                epoch,
            }],
            WorkerEvent::Finish => vec![WorkerAction::Stop],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::FragmentSchedule;
    use crate::fault::FaultMode;

    fn policy(schedule: FragmentSchedule, fault: FaultMode) -> RunPolicy {
        RunPolicy {
            schedule,
            fault,
            checkpoint: false,
            nranks: 3,
            nfrags: 4,
            nbatches: 2,
            service: false,
            affinity: false,
        }
    }

    #[test]
    fn static_collective_defers_search_to_submission() {
        let p = policy(FragmentSchedule::Static, FaultMode::Off);
        let (mut sm, init) = WorkerSm::new(p);
        assert!(init.is_empty());
        let acts = sm.handle(WorkerEvent::Grant {
            batch: 0,
            nfrags: 2,
        });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Prepare { batch: 0 },
                WorkerAction::Ingest {
                    batch: 0,
                    count: 2,
                    search: false
                },
            ]
        );
        let acts = sm.handle(WorkerEvent::SubmitReq { batch: 0, epoch: 1 });
        assert_eq!(
            acts,
            vec![
                WorkerAction::SearchHeld { batch: 0 },
                WorkerAction::Submit { batch: 0, epoch: 1 },
            ]
        );
        // The next batch re-prepares and re-searches the held fragments.
        let acts = sm.handle(WorkerEvent::SubmitReq { batch: 1, epoch: 2 });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Prepare { batch: 1 },
                WorkerAction::SearchHeld { batch: 1 },
                WorkerAction::Submit { batch: 1, epoch: 2 },
            ]
        );
    }

    #[test]
    fn search_on_grant_pipelines_and_acks() {
        let p = policy(FragmentSchedule::Dynamic, FaultMode::Recover);
        let (mut sm, init) = WorkerSm::new(p);
        assert_eq!(init, vec![WorkerAction::Prepare { batch: 0 }]);
        let acts = sm.handle(WorkerEvent::Grant {
            batch: 0,
            nfrags: 1,
        });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Ingest {
                    batch: 0,
                    count: 1,
                    search: true
                },
                WorkerAction::AckGrant,
            ]
        );
        // A submission request for the same batch does not re-search.
        let acts = sm.handle(WorkerEvent::SubmitReq { batch: 0, epoch: 3 });
        assert_eq!(acts, vec![WorkerAction::Submit { batch: 0, epoch: 3 }]);
        // A stale-epoch retry resubmits without extra work.
        let acts = sm.handle(WorkerEvent::SubmitReq { batch: 0, epoch: 4 });
        assert_eq!(acts, vec![WorkerAction::Submit { batch: 0, epoch: 4 }]);
        // A grant for the next batch re-prepares, re-searches the held
        // fragments, then ingests.
        let acts = sm.handle(WorkerEvent::Grant {
            batch: 1,
            nfrags: 1,
        });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Prepare { batch: 1 },
                WorkerAction::SearchHeld { batch: 1 },
                WorkerAction::Ingest {
                    batch: 1,
                    count: 1,
                    search: true
                },
                WorkerAction::AckGrant,
            ]
        );
        let acts = sm.handle(WorkerEvent::Assign { epoch: 5 });
        assert_eq!(
            acts,
            vec![WorkerAction::WriteAssigned { batch: 1, epoch: 5 }]
        );
        assert_eq!(sm.handle(WorkerEvent::Finish), vec![WorkerAction::Stop]);
    }

    #[test]
    fn service_mode_treats_held_fragments_as_cache_not_work() {
        let mut p = policy(FragmentSchedule::Dynamic, FaultMode::Off);
        p.service = true;
        p.affinity = true;
        assert!(p.p2p(), "service mode always runs the p2p planes");
        let (mut sm, init) = WorkerSm::new(p);
        assert_eq!(init, vec![WorkerAction::Prepare { batch: 0 }]);
        let acts = sm.handle(WorkerEvent::Grant {
            batch: 0,
            nfrags: 2,
        });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Ingest {
                    batch: 0,
                    count: 2,
                    search: true
                },
                WorkerAction::AckGrant,
            ]
        );
        // The next stream batch re-grants fragments explicitly; the new
        // batch must NOT schedule a SearchHeld over last batch's residents
        // (they are cache entries, and the re-grant covers the work).
        let acts = sm.handle(WorkerEvent::Grant {
            batch: 1,
            nfrags: 1,
        });
        assert_eq!(
            acts,
            vec![
                WorkerAction::Prepare { batch: 1 },
                WorkerAction::Ingest {
                    batch: 1,
                    count: 1,
                    search: true
                },
                WorkerAction::AckGrant,
            ]
        );
        // Nor does a submission request sneak one in.
        let acts = sm.handle(WorkerEvent::SubmitReq { batch: 1, epoch: 2 });
        assert_eq!(acts, vec![WorkerAction::Submit { batch: 1, epoch: 2 }]);
        // Per-batch writes carry the batch so the interpreter can route
        // them to the stream's per-batch output path.
        let acts = sm.handle(WorkerEvent::Assign { epoch: 3 });
        assert_eq!(
            acts,
            vec![WorkerAction::WriteAssigned { batch: 1, epoch: 3 }]
        );
    }
}
