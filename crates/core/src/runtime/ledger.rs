//! The submission ledger: the master's per-fragment audit of the current
//! query batch.
//!
//! The grant queue knows *who holds what*; the ledger knows *how far each
//! fragment got* — queued, granted, completed by a live worker, or
//! orphaned (its owner died after checkpointing it). The orphan set is
//! what fragment checkpointing is built on: those fragments are covered
//! by durable blobs on the shared file system, so a recovery epoch leaves
//! them out of the re-queue entirely.

/// Where one fragment stands in the current batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentState {
    /// Waiting in the grant queue.
    Queued,
    /// Granted to this rank; its search is not yet acknowledged.
    Granted(usize),
    /// Search acknowledged by this (still live) rank; its results are in
    /// the worker's cache, pending submission.
    Completed(usize),
    /// The owner died after persisting the fragment's checkpoint; the
    /// master will adopt the blob instead of re-granting.
    Orphaned,
}

/// Per-fragment state for the batch in flight.
#[derive(Debug, Clone)]
pub struct SubmissionLedger {
    states: Vec<FragmentState>,
}

impl SubmissionLedger {
    /// A fresh ledger with every fragment queued.
    pub fn new(nfrags: usize) -> SubmissionLedger {
        SubmissionLedger {
            states: vec![FragmentState::Queued; nfrags],
        }
    }

    /// One fragment's state.
    pub fn state(&self, frag: usize) -> FragmentState {
        self.states[frag]
    }

    /// Record a grant.
    pub fn granted(&mut self, frag: usize, rank: usize) {
        self.states[frag] = FragmentState::Granted(rank);
    }

    /// Record a grant acknowledgement: everything `rank` holds as
    /// `Granted` becomes `Completed`.
    pub fn acked(&mut self, rank: usize) {
        for s in &mut self.states {
            if *s == FragmentState::Granted(rank) {
                *s = FragmentState::Completed(rank);
            }
        }
    }

    /// Put a fragment back in the queue (its owner died without a
    /// checkpoint).
    pub fn requeued(&mut self, frag: usize) {
        self.states[frag] = FragmentState::Queued;
    }

    /// Mark a dead owner's checkpointed fragment as adopted.
    pub fn orphaned(&mut self, frag: usize) {
        self.states[frag] = FragmentState::Orphaned;
    }

    /// The orphaned fragments, ascending.
    pub fn orphans(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == FragmentState::Orphaned)
            .map(|(f, _)| f)
            .collect()
    }

    /// Start the next query batch: orphans re-enter circulation (their
    /// blobs covered the *previous* batch only) and completions reset.
    /// Returns the fragments to push back onto the grant queue.
    pub fn advance_batch(&mut self) -> Vec<usize> {
        let orphans = self.orphans();
        for &f in &orphans {
            self.states[f] = FragmentState::Queued;
        }
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_the_fragment_lifecycle() {
        let mut l = SubmissionLedger::new(3);
        l.granted(0, 1);
        l.granted(1, 1);
        l.granted(2, 2);
        l.acked(1);
        assert_eq!(l.state(0), FragmentState::Completed(1));
        assert_eq!(l.state(2), FragmentState::Granted(2));
        l.requeued(2);
        l.orphaned(0);
        l.orphaned(1);
        assert_eq!(l.orphans(), vec![0, 1]);
        assert_eq!(l.advance_batch(), vec![0, 1]);
        assert_eq!(l.state(0), FragmentState::Queued);
        assert!(l.orphans().is_empty());
    }
}
