//! The event-driven protocol runtime.
//!
//! pioBLAST's master/worker choreography used to exist three times —
//! the fault-free collective path, the epoch-fenced point-to-point
//! recovery path, and pieces of the mpiBLAST baseline. This module
//! replaces the first two with **one** protocol, expressed as pure state
//! machines:
//!
//! * [`MasterSm`] — fragment queue, assignment policy, per-worker
//!   liveness, epoch fencing and a per-fragment submission ledger, as a
//!   pure `event -> (state', actions)` transition function;
//! * [`WorkerSm`] — the worker's batch/search lifecycle, equally pure;
//! * `interp` — the thin interpreter that turns actions into
//!   `mpisim::Comm` traffic and file-system I/O, and messages back into
//!   events. All communication and I/O side effects live here.
//!
//! [`FaultMode`] is a *policy* on this one machine,
//! not a separate protocol: `Off` lowers the same actions onto
//! collectives (broadcast/scatter/gather/collective writes), while
//! `Detect`/`Recover` lower them onto point-to-point commands with
//! liveness sweeps and epoch fencing. Query batching runs through the
//! same distribute → collect → write cycle in every mode.
//!
//! **Fragment checkpointing** (`Recover` + [`RunPolicy::checkpoint`]):
//! workers persist each completed `(batch, fragment)` search — submission
//! metadata plus the formatted record bytes — to the shared file system
//! before acknowledging the grant. When a worker dies, the master
//! re-queues only its *unfinished* fragments; the finished ones are
//! adopted as "orphans" whose metadata is spliced into the merge and
//! whose records the master itself writes. The checkpoint blob for a
//! given `(batch, fragment)` is deterministic in its key, so rewrites
//! during retried epochs are idempotent and byte-identity is preserved.

mod interp;
mod ledger;
mod master;
mod worker;

pub use ledger::{FragmentState, SubmissionLedger};
pub use master::{MasterAction, MasterEvent, MasterPhase, MasterSm};
pub use worker::{WorkerAction, WorkerEvent, WorkerSm};

pub(crate) use interp::{run_master, run_worker};

use bytes::Bytes;

use crate::app::{FragmentSchedule, PioBlastConfig};
use crate::fault::{FaultMode, PioError};
use crate::proto::PartitionMessage;

// Unified protocol tags. `READY`/`GRANT` keep the fault-free dynamic
// scheduler's historical values; the rest keep the recovery protocol's.
/// Worker -> master: fragment request, doubling as the grant ack.
pub(crate) const TAG_READY: u64 = 1;
/// Master -> worker: `[batch u32][ids][PartitionMessage]` grant.
pub(crate) const TAG_GRANT: u64 = 2;
/// Master -> worker: the query bundle (point-to-point modes).
pub(crate) const TAG_BUNDLE: u64 = 10;
/// Master -> worker: epoch-framed `[batch u32]` submission request.
pub(crate) const TAG_SUBMIT_REQ: u64 = 12;
/// Worker -> master: epoch-framed [`MetaSubmission`] bytes.
pub(crate) const TAG_SUBMIT: u64 = 13;
/// Master -> worker: epoch-framed [`OffsetAssignment`] bytes.
pub(crate) const TAG_ASSIGN: u64 = 14;
/// Worker -> master: epoch-framed write acknowledgement.
pub(crate) const TAG_DONE: u64 = 15;
/// Master -> worker: the run is complete.
pub(crate) const TAG_FINISH: u64 = 16;
/// Master -> worker: abandon the run.
pub(crate) const TAG_ABORT: u64 = 17;
/// Master -> worker: one stream batch's queries (`[batch u32][queries]`,
/// service mode). Sent ahead of the batch's first grant — FIFO ordering
/// per peer pair guarantees the queries precede every command that
/// needs them — and prefetched behind the previous batch's search.
pub(crate) const TAG_QBATCH: u64 = 18;

/// How the runtime behaves, derived once from the run configuration.
/// This is the knob set that turns the one state machine into the
/// fault-free collective protocol, the fail-fast detector, or the
/// recovering (optionally checkpointing) scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Static pre-assignment or dynamic self-scheduling.
    pub schedule: FragmentSchedule,
    /// Fault-tolerance mode.
    pub fault: FaultMode,
    /// Persist per-fragment search results for cheap recovery epochs.
    pub checkpoint: bool,
    /// Communicator size.
    pub nranks: usize,
    /// Virtual fragment count.
    pub nfrags: usize,
    /// Query-batch count (>= 1; an empty query set is one empty batch).
    /// In service mode this is the stream plan's batch count.
    pub nbatches: usize,
    /// Query-stream service mode: per-batch query delivery, per-batch
    /// fragment re-grants, resident fragment stores on the workers.
    pub service: bool,
    /// Affinity-aware grants (service mode): prefer re-granting a
    /// fragment to the worker that held it last.
    pub affinity: bool,
}

impl RunPolicy {
    /// Point-to-point command protocol vs collectives. Service mode
    /// always uses the command protocol — admission and per-batch
    /// re-grants cannot be expressed as matched collectives.
    pub fn p2p(&self) -> bool {
        self.fault != FaultMode::Off || self.service
    }

    /// Do workers acknowledge grants with a `READY` message?
    pub fn acks_grants(&self) -> bool {
        self.p2p() || self.schedule == FragmentSchedule::Dynamic
    }

    /// Is a granted fragment searched immediately (pipelined with the
    /// next grant), rather than deferred to the batch loop?
    pub fn search_on_grant(&self) -> bool {
        self.p2p() || self.schedule == FragmentSchedule::Dynamic
    }

    /// Does a worker death re-queue its fragments instead of aborting?
    pub fn recovers(&self) -> bool {
        self.fault == FaultMode::Recover
    }
}

/// Prefix `body` with an 8-byte little-endian epoch.
pub(crate) fn with_epoch(epoch: u64, body: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(body);
    Bytes::from(buf)
}

/// Split an epoch-prefixed payload.
pub(crate) fn split_epoch(payload: &[u8]) -> Result<(u64, &[u8]), PioError> {
    if payload.len() < 8 {
        return Err(PioError::Protocol("epoch frame too short".into()));
    }
    let mut e = [0u8; 8];
    e.copy_from_slice(&payload[..8]);
    Ok((u64::from_le_bytes(e), &payload[8..]))
}

/// A grant payload: the batch it belongs to, the global fragment ids
/// (checkpoint keys), and the byte-range assignments themselves.
pub(crate) fn encode_grant(batch: u32, ids: &[usize], part: &PartitionMessage) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&batch.to_le_bytes());
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &f in ids {
        buf.extend_from_slice(&(f as u32).to_le_bytes());
    }
    buf.extend_from_slice(&part.encode());
    buf
}

/// Read a little-endian `u32` at `at`, or fail with a typed protocol
/// error naming the field. Received frames must never be able to panic a
/// rank, however truncated or garbled.
fn read_u32(buf: &[u8], at: usize, what: &str) -> Result<u32, PioError> {
    buf.get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| PioError::Protocol(format!("grant frame truncated at {what}")))
}

/// Inverse of [`encode_grant`].
pub(crate) fn decode_grant(buf: &[u8]) -> Result<(u32, Vec<u32>, PartitionMessage), PioError> {
    let batch = read_u32(buf, 0, "batch")?;
    let n = read_u32(buf, 4, "id count")? as usize;
    // Bound the count by the frame itself before sizing anything: a
    // garbage length can't trigger a huge allocation or an overflowing
    // offset.
    let ids_end = 8usize.saturating_add(n.saturating_mul(4));
    if buf.len() < ids_end {
        return Err(PioError::Protocol("grant id list truncated".into()));
    }
    let ids = (0..n)
        .map(|i| read_u32(buf, 8 + 4 * i, "fragment id"))
        .collect::<Result<Vec<u32>, PioError>>()?;
    let part =
        PartitionMessage::decode(&buf[ids_end..]).map_err(|e| PioError::Protocol(e.to_string()))?;
    Ok((batch, ids, part))
}

/// Shared-file-system path of one `(batch, fragment)` checkpoint blob.
pub(crate) fn ckpt_path(cfg: &PioBlastConfig, batch: usize, fragment: usize) -> String {
    format!("{}.ckpt.b{batch}.f{fragment}", cfg.output_path)
}

/// The report path of one stream batch (service mode): each stream
/// batch's report is its own file, byte-identical to running the batch
/// as a one-shot job.
pub(crate) fn stream_output_path(cfg: &PioBlastConfig, batch: usize) -> String {
    format!("{}.q{batch}", cfg.output_path)
}

/// A `TAG_QBATCH` payload: the stream batch id plus its query records
/// (service mode; the molecule travels in the startup bundle).
pub(crate) fn encode_qbatch(batch: u32, queries: &[blast_core::seq::SeqRecord]) -> Vec<u8> {
    let mut w = seqfmt::codec::Writer::new();
    w.u32(batch);
    w.u32(queries.len() as u32);
    for q in queries {
        w.string(&q.defline);
        w.u32(q.residues.len() as u32);
        w.bytes(&q.residues);
    }
    w.finish()
}

/// Inverse of [`encode_qbatch`]. Truncated or garbled frames are typed
/// protocol errors, never panics.
pub(crate) fn decode_qbatch(
    buf: &[u8],
    molecule: blast_core::Molecule,
) -> Result<(u32, Vec<blast_core::seq::SeqRecord>), PioError> {
    let err = |e: seqfmt::codec::CodecError| PioError::Protocol(format!("query batch: {e}"));
    let mut r = seqfmt::codec::Reader::new(buf);
    let batch = r.u32("stream batch").map_err(err)?;
    let n = r.u32("query count").map_err(err)? as usize;
    let mut queries = Vec::new();
    for _ in 0..n {
        let defline = r.string("query defline").map_err(err)?;
        let len = r.u32("query len").map_err(err)? as usize;
        let residues = r.bytes(len, "query residues").map_err(err)?.to_vec();
        queries.push(blast_core::seq::SeqRecord {
            defline,
            residues,
            molecule,
        });
    }
    Ok((batch, queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_framing_round_trips() {
        let framed = with_epoch(7, b"payload");
        let (e, body) = split_epoch(&framed).unwrap();
        assert_eq!(e, 7);
        assert_eq!(body, b"payload");
        assert!(split_epoch(b"short").is_err());
    }

    #[test]
    fn grant_framing_round_trips() {
        let part = PartitionMessage::default();
        let buf = encode_grant(3, &[5, 9], &part);
        let (batch, ids, got) = decode_grant(&buf).unwrap();
        assert_eq!(batch, 3);
        assert_eq!(ids, vec![5, 9]);
        assert_eq!(got, part);
        assert!(decode_grant(&buf[..6]).is_err());
    }

    #[test]
    fn qbatch_framing_round_trips_and_rejects_truncation() {
        let molecule = blast_core::Molecule::Protein;
        let queries = vec![
            blast_core::seq::SeqRecord {
                defline: "q0 first".into(),
                residues: b"MKV".to_vec(),
                molecule,
            },
            blast_core::seq::SeqRecord {
                defline: "q1 second".into(),
                residues: b"ACDEFG".to_vec(),
                molecule,
            },
        ];
        let buf = encode_qbatch(5, &queries);
        let (batch, got) = decode_qbatch(&buf, molecule).unwrap();
        assert_eq!(batch, 5);
        assert_eq!(got, queries);
        for cut in 0..buf.len() {
            if let Ok((b, q)) = decode_qbatch(&buf[..cut], molecule) {
                // Only a coherent prefix (fewer whole queries) may
                // decode; the count field forbids even that.
                panic!("prefix {cut} decoded: ({b}, {} queries)", q.len());
            }
        }
        let (b, q) = decode_qbatch(&encode_qbatch(0, &[]), molecule).unwrap();
        assert_eq!((b, q.len()), (0, 0));
    }

    #[test]
    fn malformed_grants_are_typed_errors_not_panics() {
        // Satellite: every truncation point and garbage frame must fail
        // with `PioError::Protocol`, never a slice or allocation panic.
        let part = PartitionMessage::default();
        let good = encode_grant(1, &[2, 3, 4], &part);
        // Every proper prefix of a valid frame.
        for cut in 0..good.len() {
            match decode_grant(&good[..cut]) {
                Ok((batch, ids, p)) => {
                    // A prefix may only decode if it is itself coherent —
                    // which a strict-length PartitionMessage rejects.
                    panic!("prefix {cut} decoded: ({batch}, {ids:?}, {p:?})")
                }
                Err(PioError::Protocol(_)) => {}
                Err(other) => panic!("prefix {cut}: wrong error kind {other:?}"),
            }
        }
        // A length field claiming far more ids than the frame holds must
        // not allocate or scan past the buffer.
        let mut lying = Vec::new();
        lying.extend_from_slice(&0u32.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_grant(&lying), Err(PioError::Protocol(_))));
        // Pure garbage.
        for garbage in [&b""[..], &b"\xff"[..], &[0xAAu8; 37][..]] {
            assert!(matches!(decode_grant(garbage), Err(PioError::Protocol(_))));
        }
    }
}
