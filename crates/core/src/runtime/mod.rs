//! The event-driven protocol runtime.
//!
//! pioBLAST's master/worker choreography used to exist three times —
//! the fault-free collective path, the epoch-fenced point-to-point
//! recovery path, and pieces of the mpiBLAST baseline. This module
//! replaces the first two with **one** protocol, expressed as pure state
//! machines:
//!
//! * [`MasterSm`] — fragment queue, assignment policy, per-worker
//!   liveness, epoch fencing and a per-fragment submission ledger, as a
//!   pure `event -> (state', actions)` transition function;
//! * [`WorkerSm`] — the worker's batch/search lifecycle, equally pure;
//! * `interp` — the thin interpreter that turns actions into
//!   `mpisim::Comm` traffic and file-system I/O, and messages back into
//!   events. All communication and I/O side effects live here.
//!
//! [`FaultMode`] is a *policy* on this one machine,
//! not a separate protocol: `Off` lowers the same actions onto
//! collectives (broadcast/scatter/gather/collective writes), while
//! `Detect`/`Recover` lower them onto point-to-point commands with
//! liveness sweeps and epoch fencing. Query batching runs through the
//! same distribute → collect → write cycle in every mode.
//!
//! **Fragment checkpointing** (`Recover` + [`RunPolicy::checkpoint`]):
//! workers persist each completed `(batch, fragment)` search — submission
//! metadata plus the formatted record bytes — to the shared file system
//! before acknowledging the grant. When a worker dies, the master
//! re-queues only its *unfinished* fragments; the finished ones are
//! adopted as "orphans" whose metadata is spliced into the merge and
//! whose records the master itself writes. The checkpoint blob for a
//! given `(batch, fragment)` is deterministic in its key, so rewrites
//! during retried epochs are idempotent and byte-identity is preserved.

mod interp;
mod ledger;
mod master;
mod worker;

pub use ledger::{FragmentState, SubmissionLedger};
pub use master::{MasterAction, MasterEvent, MasterPhase, MasterSm};
pub use worker::{WorkerAction, WorkerEvent, WorkerSm};

pub(crate) use interp::{run_master, run_worker};

use bytes::Bytes;

use crate::app::{FragmentSchedule, PioBlastConfig};
use crate::fault::{FaultMode, PioError};
use crate::proto::PartitionMessage;

// Unified protocol tags. `READY`/`GRANT` keep the fault-free dynamic
// scheduler's historical values; the rest keep the recovery protocol's.
/// Worker -> master: fragment request, doubling as the grant ack.
pub(crate) const TAG_READY: u64 = 1;
/// Master -> worker: `[batch u32][ids][PartitionMessage]` grant.
pub(crate) const TAG_GRANT: u64 = 2;
/// Master -> worker: the query bundle (point-to-point modes).
pub(crate) const TAG_BUNDLE: u64 = 10;
/// Master -> worker: epoch-framed `[batch u32]` submission request.
pub(crate) const TAG_SUBMIT_REQ: u64 = 12;
/// Worker -> master: epoch-framed [`MetaSubmission`] bytes.
pub(crate) const TAG_SUBMIT: u64 = 13;
/// Master -> worker: epoch-framed [`OffsetAssignment`] bytes.
pub(crate) const TAG_ASSIGN: u64 = 14;
/// Worker -> master: epoch-framed write acknowledgement.
pub(crate) const TAG_DONE: u64 = 15;
/// Master -> worker: the run is complete.
pub(crate) const TAG_FINISH: u64 = 16;
/// Master -> worker: abandon the run.
pub(crate) const TAG_ABORT: u64 = 17;

/// How the runtime behaves, derived once from the run configuration.
/// This is the knob set that turns the one state machine into the
/// fault-free collective protocol, the fail-fast detector, or the
/// recovering (optionally checkpointing) scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Static pre-assignment or dynamic self-scheduling.
    pub schedule: FragmentSchedule,
    /// Fault-tolerance mode.
    pub fault: FaultMode,
    /// Persist per-fragment search results for cheap recovery epochs.
    pub checkpoint: bool,
    /// Communicator size.
    pub nranks: usize,
    /// Virtual fragment count.
    pub nfrags: usize,
    /// Query-batch count (>= 1; an empty query set is one empty batch).
    pub nbatches: usize,
}

impl RunPolicy {
    /// Point-to-point command protocol (any fault mode) vs collectives.
    pub fn p2p(&self) -> bool {
        self.fault != FaultMode::Off
    }

    /// Do workers acknowledge grants with a `READY` message?
    pub fn acks_grants(&self) -> bool {
        self.p2p() || self.schedule == FragmentSchedule::Dynamic
    }

    /// Is a granted fragment searched immediately (pipelined with the
    /// next grant), rather than deferred to the batch loop?
    pub fn search_on_grant(&self) -> bool {
        self.p2p() || self.schedule == FragmentSchedule::Dynamic
    }

    /// Does a worker death re-queue its fragments instead of aborting?
    pub fn recovers(&self) -> bool {
        self.fault == FaultMode::Recover
    }
}

/// Prefix `body` with an 8-byte little-endian epoch.
pub(crate) fn with_epoch(epoch: u64, body: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(body);
    Bytes::from(buf)
}

/// Split an epoch-prefixed payload.
pub(crate) fn split_epoch(payload: &[u8]) -> Result<(u64, &[u8]), PioError> {
    if payload.len() < 8 {
        return Err(PioError::Protocol("epoch frame too short".into()));
    }
    let mut e = [0u8; 8];
    e.copy_from_slice(&payload[..8]);
    Ok((u64::from_le_bytes(e), &payload[8..]))
}

/// A grant payload: the batch it belongs to, the global fragment ids
/// (checkpoint keys), and the byte-range assignments themselves.
pub(crate) fn encode_grant(batch: u32, ids: &[usize], part: &PartitionMessage) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&batch.to_le_bytes());
    buf.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &f in ids {
        buf.extend_from_slice(&(f as u32).to_le_bytes());
    }
    buf.extend_from_slice(&part.encode());
    buf
}

/// Read a little-endian `u32` at `at`, or fail with a typed protocol
/// error naming the field. Received frames must never be able to panic a
/// rank, however truncated or garbled.
fn read_u32(buf: &[u8], at: usize, what: &str) -> Result<u32, PioError> {
    buf.get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| PioError::Protocol(format!("grant frame truncated at {what}")))
}

/// Inverse of [`encode_grant`].
pub(crate) fn decode_grant(buf: &[u8]) -> Result<(u32, Vec<u32>, PartitionMessage), PioError> {
    let batch = read_u32(buf, 0, "batch")?;
    let n = read_u32(buf, 4, "id count")? as usize;
    // Bound the count by the frame itself before sizing anything: a
    // garbage length can't trigger a huge allocation or an overflowing
    // offset.
    let ids_end = 8usize.saturating_add(n.saturating_mul(4));
    if buf.len() < ids_end {
        return Err(PioError::Protocol("grant id list truncated".into()));
    }
    let ids = (0..n)
        .map(|i| read_u32(buf, 8 + 4 * i, "fragment id"))
        .collect::<Result<Vec<u32>, PioError>>()?;
    let part =
        PartitionMessage::decode(&buf[ids_end..]).map_err(|e| PioError::Protocol(e.to_string()))?;
    Ok((batch, ids, part))
}

/// Shared-file-system path of one `(batch, fragment)` checkpoint blob.
pub(crate) fn ckpt_path(cfg: &PioBlastConfig, batch: usize, fragment: usize) -> String {
    format!("{}.ckpt.b{batch}.f{fragment}", cfg.output_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_framing_round_trips() {
        let framed = with_epoch(7, b"payload");
        let (e, body) = split_epoch(&framed).unwrap();
        assert_eq!(e, 7);
        assert_eq!(body, b"payload");
        assert!(split_epoch(b"short").is_err());
    }

    #[test]
    fn grant_framing_round_trips() {
        let part = PartitionMessage::default();
        let buf = encode_grant(3, &[5, 9], &part);
        let (batch, ids, got) = decode_grant(&buf).unwrap();
        assert_eq!(batch, 3);
        assert_eq!(ids, vec![5, 9]);
        assert_eq!(got, part);
        assert!(decode_grant(&buf[..6]).is_err());
    }

    #[test]
    fn malformed_grants_are_typed_errors_not_panics() {
        // Satellite: every truncation point and garbage frame must fail
        // with `PioError::Protocol`, never a slice or allocation panic.
        let part = PartitionMessage::default();
        let good = encode_grant(1, &[2, 3, 4], &part);
        // Every proper prefix of a valid frame.
        for cut in 0..good.len() {
            match decode_grant(&good[..cut]) {
                Ok((batch, ids, p)) => {
                    // A prefix may only decode if it is itself coherent —
                    // which a strict-length PartitionMessage rejects.
                    panic!("prefix {cut} decoded: ({batch}, {ids:?}, {p:?})")
                }
                Err(PioError::Protocol(_)) => {}
                Err(other) => panic!("prefix {cut}: wrong error kind {other:?}"),
            }
        }
        // A length field claiming far more ids than the frame holds must
        // not allocate or scan past the buffer.
        let mut lying = Vec::new();
        lying.extend_from_slice(&0u32.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_grant(&lying), Err(PioError::Protocol(_))));
        // Pure garbage.
        for garbage in [&b""[..], &b"\xff"[..], &[0xAAu8; 37][..]] {
            assert!(matches!(decode_grant(garbage), Err(PioError::Protocol(_))));
        }
    }
}
