//! The interpreter: the only place where runtime actions touch the
//! wire and the file system.
//!
//! [`run_master`]/[`run_worker`] drive the pure state machines for every
//! mode. Actions are lowered by policy: the collective policy (`Off`)
//! maps them onto broadcast/scatter/gather and collective or independent
//! writes; the point-to-point policies (`Detect`/`Recover`) map them
//! onto epoch-framed commands with liveness sweeps, exactly as the old
//! standalone recovery protocol did. Messages (and detected deaths) are
//! translated back into events and fed to the machines.

use std::collections::{HashMap, VecDeque};

use blast_core::fasta;
use blast_core::format::ReportConfig;
use blast_core::search::{BlastSearcher, PreparedQueries, SearchScratch, SearchStats};
use blast_core::seq::SeqRecord;
use bytes::Bytes;
use mpiblast::phases;
use mpiblast::wire::{FragmentCheckpoint, MetaHit, MetaSubmission, OffsetAssignment, QueryBundle};
use mpiblast::{ComputeModel, RankReport, MASTER};
use mpiio::{
    CollectiveHints, FileView, IoHandle, IoOptions, IoPlane, IoRequest, IoStrategy, PlaneConfig,
};
use mpisim::sched::{default_sweep, Liveness, Polled, Pump};
use mpisim::{Collectives, Comm};
use seqfmt::{AliasFile, FragmentData, VolumeIndex};
use simcluster::{Message, PhaseTimes, RankCtx, SimDuration, SimTime};

use super::master::{MasterAction, MasterEvent, MasterPhase, MasterSm};
use super::worker::{WorkerAction, WorkerEvent, WorkerSm};
use super::{
    ckpt_path, decode_grant, decode_qbatch, encode_grant, encode_qbatch, split_epoch,
    stream_output_path, with_epoch, RunPolicy, TAG_ABORT, TAG_ASSIGN, TAG_BUNDLE, TAG_DONE,
    TAG_FINISH, TAG_GRANT, TAG_QBATCH, TAG_READY, TAG_SUBMIT, TAG_SUBMIT_REQ,
};
use crate::app::{query_batches, FragmentSchedule, PioBlastConfig};
use crate::cache::ResultCache;
use crate::fault::{FaultMode, PioError};
use crate::merge::{merge_and_layout, MergeOutcome};
use crate::proto::{FragmentAssignment, PartitionMessage};
use crate::service::FragmentStore;

fn decode_err(e: seqfmt::codec::CodecError) -> PioError {
    PioError::Protocol(e.to_string())
}

/// Derive the runtime policy from a validated configuration.
fn policy_of(ctx: &RankCtx, cfg: &PioBlastConfig, nbatches: usize) -> RunPolicy {
    RunPolicy {
        schedule: cfg.schedule,
        fault: cfg.fault,
        checkpoint: cfg.checkpoint,
        nranks: ctx.nranks(),
        nfrags: cfg.num_fragments.unwrap_or(ctx.nranks() - 1),
        nbatches,
        service: cfg.service.is_some(),
        affinity: cfg.service.as_ref().is_some_and(|s| s.affinity),
    }
}

fn io_hints(cfg: &PioBlastConfig) -> CollectiveHints {
    CollectiveHints {
        aggregators: cfg.platform.aggregators,
    }
}

/// The plane for database-fragment reads. Collective only when every
/// rank is guaranteed to post the same read sequence synchronously:
/// collective input requested, collective lowering (`FaultMode::Off`),
/// static schedule. Under dynamic grants or point-to-point fault modes
/// the plane still aggregates (sieves) each rank's posted views, with
/// no global exchange — that is what lets `collective_input` compose
/// with those modes.
fn input_plane<'x, 'y>(
    comm: &'x Comm<'y>,
    cfg: &'x PioBlastConfig,
    policy: &RunPolicy,
) -> IoPlane<'x, 'y> {
    let sync = !policy.p2p() && policy.schedule == FragmentSchedule::Static;
    IoPlane::new(
        comm,
        &cfg.env.shared,
        PlaneConfig {
            options: cfg.io,
            hints: io_hints(cfg),
            aggregate: cfg.collective_input,
            collective: cfg.collective_input && sync,
        },
    )
}

/// The plane for report writes. Collective when collective output is
/// requested and the run lowers onto collectives; the point-to-point
/// fault modes cannot synchronize writers, so they aggregate per rank.
fn output_plane<'x, 'y>(
    comm: &'x Comm<'y>,
    cfg: &'x PioBlastConfig,
    policy: &RunPolicy,
) -> IoPlane<'x, 'y> {
    IoPlane::new(
        comm,
        &cfg.env.shared,
        PlaneConfig {
            options: cfg.io,
            hints: io_hints(cfg),
            aggregate: cfg.collective_output,
            collective: cfg.collective_output && !policy.p2p(),
        },
    )
}

/// The plane for whole-file staging reads and checkpoint blobs: always
/// independent — this traffic is contiguous per file and never part of
/// a matched collective.
fn independent_plane<'x, 'y>(comm: &'x Comm<'y>, cfg: &'x PioBlastConfig) -> IoPlane<'x, 'y> {
    IoPlane::new(
        comm,
        &cfg.env.shared,
        PlaneConfig {
            options: IoOptions {
                strategy: IoStrategy::Independent,
                ..cfg.io
            },
            hints: io_hints(cfg),
            aggregate: false,
            collective: false,
        },
    )
}

/// The one output epilogue, shared by the master's section writes, the
/// orphan rewrites, and every worker's assigned-record writes: build a
/// file view from the scattered `(offset, text)` records and hand it to
/// the plane. Always posts, even with nothing to write — on a
/// collective plane the empty view still participates in the exchange.
fn flush_output(
    plane: &IoPlane<'_, '_>,
    path: &str,
    mut items: Vec<(u64, &str)>,
) -> Result<(), PioError> {
    items.retain(|(_, text)| !text.is_empty());
    items.sort_unstable_by_key(|&(off, _)| off);
    let mut regions = Vec::with_capacity(items.len());
    let mut data = Vec::new();
    for (off, text) in &items {
        regions.push((*off, text.len() as u64));
        data.extend_from_slice(text.as_bytes());
    }
    let view = FileView::new(0, regions)
        .map_err(|e| PioError::Protocol(format!("output layout is not writable: {e}")))?;
    if plane.config().options.io_async {
        // Fire-and-collect: every run of the view goes in flight at once,
        // so per-operation latencies overlap instead of summing (on a
        // collective plane this is the split collective — begin and wait
        // are both posted by every rank). A full file system surfaces as
        // a typed error, not an abort.
        let handle = plane.submit_begin(IoRequest::OutputWrite {
            path,
            view: &view,
            payload: &data,
        });
        plane.wait(handle).map_err(PioError::Output)?;
    } else {
        plane
            .write_output(path, &view, &data)
            .map_err(PioError::Output)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------

/// The master's side of the run (every mode).
pub(crate) fn run_master(
    ctx: &RankCtx,
    comm: &Comm<'_>,
    cfg: &PioBlastConfig,
) -> Result<RankReport, PioError> {
    MasterIo::new(ctx, comm, cfg)?.run()
}

struct MasterIo<'a, 'b> {
    ctx: &'a RankCtx,
    comm: &'a Comm<'b>,
    cfg: &'a PioBlastConfig,
    policy: RunPolicy,
    report_cfg: ReportConfig,
    molecule: blast_core::Molecule,
    batches: Vec<Vec<SeqRecord>>,
    volumes: Vec<String>,
    assignments: Vec<FragmentAssignment>,
    live0: Vec<bool>,
    liveness: Liveness,
    phase_times: PhaseTimes,
    prepared_cache: Vec<Option<PreparedQueries>>,
    batch_offsets: Vec<u64>,
    ckpts: HashMap<(usize, usize), FragmentCheckpoint>,
    orphan_records: HashMap<(u32, u32), String>,
    outcome: Option<MergeOutcome>,
    input_mark: Option<SimTime>,
    out_mark: Option<SimTime>,
    /// Service mode: which stream batches' queries have been shipped
    /// (each batch goes out exactly once, gated on its arrival time).
    qbatch_sent: Vec<bool>,
}

impl<'a, 'b> MasterIo<'a, 'b> {
    fn new(
        ctx: &'a RankCtx,
        comm: &'a Comm<'b>,
        cfg: &'a PioBlastConfig,
    ) -> Result<MasterIo<'a, 'b>, PioError> {
        let staging = independent_plane(comm, cfg);
        let mut phase_times = PhaseTimes::new();

        // ---- startup: read and validate *every* setup file before the
        // bundle is distributed, so a missing or malformed alias, query
        // FASTA, or volume index degrades into a typed error on every
        // rank instead of panicking the master (and deadlocking workers
        // mid-broadcast).
        let start = ctx.now();
        let store_err = |e| PioError::Input(crate::input::InputError::Store(e));
        let bad = |what: String| PioError::Input(crate::input::InputError::Malformed(what));
        let setup =
            || -> Result<(AliasFile, Vec<SeqRecord>, Vec<VolumeIndex>, SimDuration), PioError> {
                let alias_bytes = staging.read_whole(&cfg.db_alias).map_err(store_err)?;
                let alias = AliasFile::decode(&alias_bytes)
                    .map_err(|e| bad(format!("alias {}: {e}", cfg.db_alias)))?;
                let query_text = staging.read_whole(&cfg.query_path).map_err(store_err)?;
                let queries = fasta::parse(alias.molecule, &query_text)
                    .map_err(|e| bad(format!("query FASTA {}: {e}", cfg.query_path)))?;
                let idx_start = ctx.now();
                let mut indexes: Vec<VolumeIndex> = Vec::new();
                for vol in &alias.volumes {
                    let path = format!("db/{vol}.idx");
                    let idx_bytes = staging.read_whole(&path).map_err(store_err)?;
                    indexes.push(
                        VolumeIndex::decode(&idx_bytes)
                            .map_err(|e| bad(format!("volume index {path}: {e}")))?,
                    );
                }
                Ok((alias, queries, indexes, ctx.now() - idx_start))
            };
        let (alias, queries, indexes, idx_dur) = match setup() {
            Ok(v) => v,
            Err(e) => {
                // Release the workers before bailing. Under the
                // collective protocol they sit in the bundle broadcast:
                // an empty bundle fails their decode into a typed
                // protocol error. Under point-to-point modes an abort
                // does the same through the normal path.
                if cfg.fault == FaultMode::Off {
                    comm.bcast(MASTER, Bytes::new());
                } else {
                    for w in 1..ctx.nranks() {
                        let _ = comm.send_checked(w, TAG_ABORT, Bytes::new());
                    }
                }
                return Err(e);
            }
        };
        // Service mode partitions the query set into per-user stream
        // batches and delivers each over its own TAG_QBATCH message at
        // admission time; the bundle ships *empty* queries. Partition
        // before the bundle goes out so a plan that does not cover the
        // query set exactly degrades through the same release path as a
        // malformed setup file.
        let service_batches = match &cfg.service {
            Some(svc) => match svc.plan.partition(&queries) {
                Ok(b) => Some(b),
                Err(e) => {
                    if cfg.fault == FaultMode::Off {
                        comm.bcast(MASTER, Bytes::new());
                    } else {
                        for w in 1..ctx.nranks() {
                            let _ = comm.send_checked(w, TAG_ABORT, Bytes::new());
                        }
                    }
                    return Err(e);
                }
            },
            None => None,
        };
        let bundle = QueryBundle {
            db_title: alias.title.clone(),
            db_stats: alias.global_stats,
            molecule: alias.molecule,
            queries: if cfg.service.is_some() {
                Vec::new()
            } else {
                queries
            },
        };
        let report_cfg =
            ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
        let bundle_bytes = Bytes::from(bundle.encode());
        let mut live0 = vec![true; ctx.nranks()];
        if cfg.fault == FaultMode::Off {
            comm.bcast(MASTER, bundle_bytes);
        } else {
            for (w, alive) in live0.iter_mut().enumerate().skip(1) {
                *alive = comm
                    .send_checked(w, TAG_BUNDLE, bundle_bytes.clone())
                    .is_ok();
            }
        }
        // The index reads moved ahead of the broadcast (validation must
        // finish before distribution), but they are still the master's
        // input phase: back-date the input mark by their duration and
        // charge the rest of the startup to OTHER, exactly as before.
        let input_mark = SimTime(ctx.now().0 - idx_dur.0);
        phase_times.add(
            phases::OTHER,
            SimDuration((ctx.now() - start).0 - idx_dur.0),
        );

        // ---- virtual fragments ----
        let index_refs: Vec<&VolumeIndex> = indexes.iter().collect();
        let batches = match service_batches {
            Some(b) => b,
            None => query_batches(&bundle.queries, cfg.query_batch),
        };
        let policy = policy_of(ctx, cfg, batches.len());
        let specs = seqfmt::virtual_fragments(&index_refs, policy.nfrags);
        let assignments: Vec<FragmentAssignment> = specs
            .into_iter()
            .map(|spec| FragmentAssignment {
                volume_name: alias.volumes[spec.volume].clone(),
                spec,
            })
            .collect();

        let nbatches = batches.len();
        Ok(MasterIo {
            ctx,
            comm,
            cfg,
            policy,
            report_cfg,
            molecule: bundle.molecule,
            batches,
            volumes: alias.volumes,
            assignments,
            liveness: Liveness::from_flags(live0.clone()),
            live0,
            phase_times,
            prepared_cache: (0..nbatches).map(|_| None).collect(),
            batch_offsets: vec![0; nbatches + 1],
            ckpts: HashMap::new(),
            orphan_records: HashMap::new(),
            outcome: None,
            input_mark: Some(input_mark),
            out_mark: None,
            qbatch_sent: vec![false; nbatches],
        })
    }

    fn run(mut self) -> Result<RankReport, PioError> {
        // Service mode: the first stream batch's queries go out before
        // the grant loop, so workers prepare them ahead of their first
        // grant.
        self.ensure_qbatch(0);
        let (mut sm, init) = MasterSm::new(self.policy, self.live0.clone());
        let mut actions: VecDeque<MasterAction> = init.into();
        loop {
            while let Some(act) = actions.pop_front() {
                match act {
                    MasterAction::Finish => {
                        self.finish(&sm);
                        return Ok(RankReport {
                            phases: self.phase_times,
                            search_stats: SearchStats::default(),
                        });
                    }
                    MasterAction::Fail {
                        error,
                        abort_workers,
                    } => {
                        if abort_workers {
                            self.abort_live();
                        }
                        return Err(error);
                    }
                    act => {
                        let events = match self.exec(&sm, act) {
                            Ok(evs) => evs,
                            Err(e) => {
                                // Tell survivors to stop before bailing so
                                // nobody waits on a master that returned.
                                self.abort_live();
                                return Err(e);
                            }
                        };
                        for ev in events {
                            actions.extend(sm.handle(ev));
                        }
                    }
                }
            }
            // Quiescent: wait for the next message for this phase (the
            // pump folds death detection into the wait).
            let tag = match sm.phase() {
                MasterPhase::Distribute => TAG_READY,
                MasterPhase::Collect => TAG_SUBMIT,
                MasterPhase::WaitWrites => TAG_DONE,
                MasterPhase::Finished | MasterPhase::Failed => {
                    unreachable!("terminal phases return from the action loop")
                }
            };
            let pump = Pump::new(self.comm, self.policy.p2p(), default_sweep());
            let event = match pump.poll(&mut self.liveness, None, Some(tag)) {
                Polled::Msg(m) => match self.translate(m) {
                    Ok(ev) => ev,
                    Err(e) => {
                        self.abort_live();
                        return Err(e);
                    }
                },
                Polled::Dead(ranks) => self.dead_event(&sm, ranks),
            };
            actions.extend(sm.handle(event));
        }
    }

    /// Message -> event.
    fn translate(&self, m: Message) -> Result<MasterEvent, PioError> {
        match m.tag {
            TAG_READY => Ok(MasterEvent::Ready { from: m.src }),
            TAG_SUBMIT => {
                let (epoch, body) = split_epoch(&m.payload)?;
                let sub = MetaSubmission::decode(body).map_err(decode_err)?;
                tracelog::instant(
                    tracelog::Lane::Runtime,
                    "submission",
                    vec![("from", m.src.into()), ("epoch", epoch.into())],
                );
                Ok(MasterEvent::Submission {
                    from: m.src,
                    epoch,
                    sub,
                })
            }
            TAG_DONE => {
                let (epoch, _) = split_epoch(&m.payload)?;
                Ok(MasterEvent::WriteDone { from: m.src, epoch })
            }
            other => Err(PioError::Protocol(format!(
                "master got unexpected tag {other}"
            ))),
        }
    }

    /// Deaths -> event, classifying each owned fragment of each victim
    /// as checkpointed (a valid blob exists for the current batch) or
    /// not. Valid blobs are cached for the upcoming merge.
    fn dead_event(&mut self, sm: &MasterSm, ranks: Vec<usize>) -> MasterEvent {
        let mut checkpointed = Vec::new();
        if self.policy.checkpoint {
            let batch = sm.batch();
            let plane = independent_plane(self.comm, self.cfg);
            for &w in &ranks {
                for &f in sm.owned(w) {
                    let Ok(blob) = plane.checkpoint_get(&ckpt_path(self.cfg, batch, f)) else {
                        continue;
                    };
                    // A partial write (the victim died mid-checkpoint)
                    // decodes as garbage and counts as absent.
                    let Ok(ck) = FragmentCheckpoint::decode(&blob) else {
                        continue;
                    };
                    if ck.batch as usize == batch && ck.fragment as usize == f {
                        self.ckpts.insert((batch, f), ck);
                        checkpointed.push(f);
                    }
                }
            }
        }
        // The machine will requeue exactly the victims' owned fragments
        // that lack a checkpoint; mirror that decision into the trace so
        // recovery runs leave a legible dead -> requeue -> re-collect
        // record.
        for &w in &ranks {
            tracelog::instant(
                tracelog::Lane::Runtime,
                "worker_dead",
                vec![("rank", w.into())],
            );
            if self.policy.fault == FaultMode::Recover {
                for &f in sm.owned(w) {
                    if !checkpointed.contains(&f) {
                        tracelog::instant(
                            tracelog::Lane::Runtime,
                            "requeue",
                            vec![("fragment", f.into()), ("owner", w.into())],
                        );
                    }
                }
            }
        }
        MasterEvent::Dead {
            ranks,
            checkpointed,
        }
    }

    fn abort_live(&self) {
        for w in self.liveness.live_workers() {
            let _ = self.comm.send_checked(w, TAG_ABORT, Bytes::new());
        }
    }

    /// Service mode: deliver one stream batch's queries to every live
    /// worker, gating on the plan's arrival time — the admission point
    /// of the simulated query stream. Ships each batch exactly once;
    /// a no-op for one-shot runs.
    fn ensure_qbatch(&mut self, batch: usize) {
        let Some(svc) = &self.cfg.service else { return };
        if self.qbatch_sent[batch] {
            return;
        }
        let sb = &svc.plan.batches[batch];
        let (arrival_ns, user, nqueries) = (sb.arrival_ns, sb.user, sb.nqueries);
        self.qbatch_sent[batch] = true;
        let now = self.ctx.now().0;
        if arrival_ns > now {
            // The stream has not submitted this batch yet: wait for it.
            self.ctx.charge(SimDuration(arrival_ns - now));
        }
        tracelog::instant(
            tracelog::Lane::Runtime,
            "service.admit",
            vec![
                ("query", batch.into()),
                ("user", u64::from(user).into()),
                ("queries", nqueries.into()),
            ],
        );
        let payload = Bytes::from(encode_qbatch(batch as u32, &self.batches[batch]));
        for w in self.liveness.live_workers() {
            let _ = self.comm.send_checked(w, TAG_QBATCH, payload.clone());
        }
    }

    /// Ship the next stream batch's queries early when it has already
    /// arrived — the delivery overlaps the current batch's searches, so
    /// workers never stall on queries at the batch boundary.
    fn prefetch_qbatch(&mut self, next: usize) {
        let arrived = match &self.cfg.service {
            Some(svc) => {
                next < svc.plan.batches.len()
                    && !self.qbatch_sent[next]
                    && svc.plan.batches[next].arrival_ns <= self.ctx.now().0
            }
            None => false,
        };
        if arrived {
            self.ensure_qbatch(next);
        }
    }

    fn ensure_prepared(&mut self, batch: usize) {
        if self.prepared_cache[batch].is_some() {
            return;
        }
        let t = self.ctx.now();
        let records = self.batches[batch].clone();
        let residues: u64 = records.iter().map(|q| q.len() as u64).sum();
        let stats = self.report_cfg.db_stats;
        let prepared = self.cfg.compute.run_prepare(self.ctx, residues, || {
            PreparedQueries::prepare(&self.cfg.params, records, stats)
        });
        self.prepared_cache[batch] = Some(prepared);
        self.phase_times.add(phases::OTHER, self.ctx.now() - t);
    }

    fn grant_payload(&self, batch: usize, frags: &[usize]) -> Bytes {
        let part = PartitionMessage {
            fragments: frags.iter().map(|&f| self.assignments[f].clone()).collect(),
            volumes: self.volumes.clone(),
        };
        Bytes::from(encode_grant(batch as u32, frags, &part))
    }

    /// Action -> side effects (+ any synchronous follow-up events).
    fn exec(&mut self, sm: &MasterSm, act: MasterAction) -> Result<Vec<MasterEvent>, PioError> {
        match act {
            MasterAction::Grant { to, frags, batch } => {
                // Service mode: the batch's queries must precede its
                // first grant (FIFO per pair keeps them ordered), and an
                // already-arrived next batch rides along early.
                self.ensure_qbatch(batch);
                self.prefetch_qbatch(batch + 1);
                tracelog::instant(
                    tracelog::Lane::Runtime,
                    "grant",
                    vec![
                        ("to", to.into()),
                        ("batch", batch.into()),
                        ("nfrags", frags.len().into()),
                    ],
                );
                let payload = self.grant_payload(batch, &frags);
                if self.policy.p2p() {
                    // A failed send means the worker just died; the next
                    // sweep reports it.
                    let _ = self.comm.send_checked(to, TAG_GRANT, payload);
                } else {
                    self.comm.send(to, TAG_GRANT, payload);
                }
                Ok(Vec::new())
            }
            MasterAction::Drain { to } => {
                let payload = self.grant_payload(0, &[]);
                self.comm.send(to, TAG_GRANT, payload);
                Ok(Vec::new())
            }
            MasterAction::Scatter { chunks } => {
                let pieces: Vec<Bytes> = chunks.iter().map(|c| self.grant_payload(0, c)).collect();
                self.comm.scatterv(MASTER, Some(pieces));
                let plane = input_plane(self.comm, self.cfg, &self.policy);
                if plane.is_collective() {
                    // Collective reads involve every rank; the master
                    // joins each with an empty view.
                    crate::input::read_fragments(&plane, &self.volumes, &[], self.molecule)?;
                }
                Ok(vec![MasterEvent::ScatterDone])
            }
            MasterAction::Collect { batch, epoch } => {
                self.ensure_qbatch(batch);
                self.prefetch_qbatch(batch + 1);
                tracelog::instant(
                    tracelog::Lane::Runtime,
                    "epoch_start",
                    vec![("epoch", epoch.into()), ("batch", batch.into())],
                );
                if let Some(mark) = self.input_mark.take() {
                    self.phase_times.add(phases::INPUT, self.ctx.now() - mark);
                }
                self.ensure_prepared(batch);
                if self.policy.p2p() {
                    let body = (batch as u32).to_le_bytes();
                    for w in sm.live_workers() {
                        let _ = self
                            .comm
                            .send_checked(w, TAG_SUBMIT_REQ, with_epoch(epoch, &body));
                    }
                    Ok(Vec::new())
                } else {
                    // The gather blocks until every worker finished
                    // searching the batch; the wait is the workers'
                    // input+search epochs, not master output time.
                    let subs_bytes = self
                        .comm
                        .gather(MASTER, Bytes::from(MetaSubmission::default().encode()))
                        .expect("master gathers");
                    self.out_mark.get_or_insert(self.ctx.now());
                    let mut subs = Vec::with_capacity(subs_bytes.len());
                    for b in &subs_bytes {
                        subs.push(MetaSubmission::decode(b).map_err(decode_err)?);
                    }
                    Ok(vec![MasterEvent::GatherDone { subs }])
                }
            }
            MasterAction::Merge {
                batch,
                epoch,
                mut subs,
                orphans,
            } => {
                self.out_mark.get_or_insert(self.ctx.now());
                tracelog::instant(
                    tracelog::Lane::Runtime,
                    "merge",
                    vec![
                        ("batch", batch.into()),
                        ("epoch", epoch.into()),
                        ("orphans", orphans.len().into()),
                    ],
                );
                if !orphans.is_empty() {
                    subs[MASTER] = self.adopt_orphans(batch, &orphans)?;
                }
                self.ensure_prepared(batch);
                let prepared = self.prepared_cache[batch].as_ref().expect("just prepared");
                // Service mode writes each stream batch to its own file,
                // so every report starts at offset zero.
                let start_offset = if self.policy.service {
                    0
                } else {
                    self.batch_offsets[batch]
                };
                let outcome = self.cfg.compute.run_format(
                    self.ctx,
                    || {
                        merge_and_layout(
                            &self.report_cfg,
                            &self.cfg.params,
                            prepared,
                            &subs,
                            self.cfg.report,
                            start_offset,
                        )
                    },
                    |o| o.master_sections.iter().map(|(_, s)| s.len() as u64).sum(),
                );
                self.cfg
                    .compute
                    .run_merge(self.ctx, outcome.merged_items, || ());
                self.batch_offsets[batch + 1] = start_offset + outcome.total_bytes;
                if self.policy.p2p() {
                    for w in sm.live_workers() {
                        let _ = self.comm.send_checked(
                            w,
                            TAG_ASSIGN,
                            with_epoch(epoch, &outcome.per_rank[w].encode()),
                        );
                    }
                    self.outcome = Some(outcome);
                    Ok(Vec::new())
                } else {
                    let pieces: Vec<Bytes> = outcome
                        .per_rank
                        .iter()
                        .map(|a| Bytes::from(a.encode()))
                        .collect();
                    self.comm.scatterv(MASTER, Some(pieces));
                    self.write_master_sections(&outcome)?;
                    if let Some(mark) = self.out_mark.take() {
                        self.phase_times.add(phases::OUTPUT, self.ctx.now() - mark);
                    }
                    Ok(vec![MasterEvent::WriteAllDone])
                }
            }
            MasterAction::FinishBatch { batch } => {
                // Point-to-point only: all live workers wrote. Orphan
                // records (dead owners' checkpointed fragments) land in
                // the master's own assignment slot.
                let outcome = self.outcome.take().expect("merge precedes batch finish");
                let plane = output_plane(self.comm, self.cfg, &self.policy);
                let path = if self.policy.service {
                    stream_output_path(self.cfg, batch)
                } else {
                    self.cfg.output_path.clone()
                };
                let orphans = outcome.per_rank[MASTER]
                    .records
                    .iter()
                    .map(|&(q, oid, off)| {
                        self.orphan_records
                            .get(&(q, oid))
                            .map(|rec| (off, rec.as_str()))
                            .ok_or_else(|| {
                                PioError::Protocol(format!(
                                    "orphan record ({q}, {oid}) has no checkpoint"
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                flush_output(&plane, &path, orphans)?;
                let sections = outcome
                    .master_sections
                    .iter()
                    .map(|(off, text)| (*off, text.as_str()))
                    .collect();
                flush_output(&plane, &path, sections)?;
                if let Some(mark) = self.out_mark.take() {
                    self.phase_times.add(phases::OUTPUT, self.ctx.now() - mark);
                }
                if let Some(svc) = &self.cfg.service {
                    // The sealed report is the stream query's response:
                    // its latency runs from admission to this moment.
                    let sb = &svc.plan.batches[batch];
                    let now = self.ctx.now().0;
                    tracelog::closed_span(
                        tracelog::Lane::Runtime,
                        "service.query",
                        sb.arrival_ns,
                        now,
                        vec![
                            ("query", batch.into()),
                            ("user", u64::from(sb.user).into()),
                            ("queries", sb.nqueries.into()),
                        ],
                    );
                    tracelog::instant(
                        tracelog::Lane::Runtime,
                        "service.done",
                        vec![
                            ("query", batch.into()),
                            ("latency_ns", now.saturating_sub(sb.arrival_ns).into()),
                        ],
                    );
                }
                Ok(Vec::new())
            }
            MasterAction::Finish | MasterAction::Fail { .. } => {
                unreachable!("handled in the run loop")
            }
        }
    }

    /// Build the orphan pseudo-submission from cached checkpoint blobs
    /// (ascending fragment order) and stage their record bytes.
    fn adopt_orphans(
        &mut self,
        batch: usize,
        orphans: &[usize],
    ) -> Result<MetaSubmission, PioError> {
        self.orphan_records.clear();
        let mut per_query: Vec<(u32, Vec<MetaHit>)> = Vec::new();
        for &f in orphans {
            let ck = self.ckpts.get(&(batch, f)).ok_or_else(|| {
                PioError::Protocol(format!("fragment {f} orphaned without a checkpoint"))
            })?;
            for (q, hits) in &ck.meta.per_query {
                match per_query.iter_mut().find(|(qi, _)| qi == q) {
                    Some((_, list)) => list.extend(hits.iter().cloned()),
                    None => per_query.push((*q, hits.clone())),
                }
            }
            for (q, oid, rec) in &ck.records {
                self.orphan_records.insert((*q, *oid), rec.clone());
            }
        }
        per_query.sort_by_key(|(q, _)| *q);
        Ok(MetaSubmission { per_query })
    }

    fn write_master_sections(&self, outcome: &MergeOutcome) -> Result<(), PioError> {
        let plane = output_plane(self.comm, self.cfg, &self.policy);
        let sections = outcome
            .master_sections
            .iter()
            .map(|(off, text)| (*off, text.as_str()))
            .collect();
        flush_output(&plane, &self.cfg.output_path, sections)?;
        if !plane.is_collective() {
            // Two-phase ends in its own barrier; every other strategy
            // needs the explicit fence before the batch is sealed.
            self.comm.barrier();
        }
        Ok(())
    }

    /// Seal the run: release the workers, drop any checkpoint blobs.
    fn finish(&mut self, sm: &MasterSm) {
        if self.policy.p2p() {
            for w in sm.live_workers() {
                let _ = self.comm.send_checked(w, TAG_FINISH, Bytes::new());
            }
        }
        if self.policy.checkpoint {
            let plane = independent_plane(self.comm, self.cfg);
            for b in 0..self.policy.nbatches {
                for f in 0..self.policy.nfrags {
                    let _ = plane.checkpoint_drop(&ckpt_path(self.cfg, b, f));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// A worker's side of the run (every mode).
pub(crate) fn run_worker(
    ctx: &RankCtx,
    comm: &Comm<'_>,
    cfg: &PioBlastConfig,
) -> Result<RankReport, PioError> {
    WorkerIo::new(ctx, comm, cfg)?.run()
}

struct WorkerIo<'a, 'b> {
    ctx: &'a RankCtx,
    comm: &'a Comm<'b>,
    cfg: &'a PioBlastConfig,
    policy: RunPolicy,
    compute: ComputeModel,
    report_cfg: ReportConfig,
    molecule: blast_core::Molecule,
    batches: Vec<Vec<SeqRecord>>,
    /// Service mode: stream batches delivered over TAG_QBATCH, keyed by
    /// batch index, consumed by that batch's prepare.
    batch_store: HashMap<usize, Vec<SeqRecord>>,
    /// Service mode: resident fragments (bounded LRU by bytes). A
    /// re-granted resident fragment skips its read entirely — the
    /// cross-query cache hit this mode exists for.
    store: FragmentStore,
    prepared: Option<PreparedQueries>,
    cache: ResultCache,
    frags: Vec<(u32, FragmentData)>,
    pending: VecDeque<(u32, FragmentAssignment)>,
    grant_volumes: Vec<String>,
    assign: Option<OffsetAssignment>,
    stats_total: SearchStats,
    /// Kernel working memory, one scratch per compute slot
    /// (`cfg.threads`), reused across all fragments of the run so the
    /// per-subject search path never allocates — serial runs use slot 0
    /// only.
    scratches: Vec<SearchScratch>,
    /// Checkpoint writes fired and not yet collected (`--io-async`):
    /// they stay in flight across searches and are fenced at the epoch
    /// boundary, before the batch's results are acknowledged.
    pending_ckpts: Vec<IoHandle<'a, 'b>>,
    phase_times: PhaseTimes,
    out_mark: Option<SimTime>,
}

impl<'a, 'b> WorkerIo<'a, 'b> {
    fn new(
        ctx: &'a RankCtx,
        comm: &'a Comm<'b>,
        cfg: &'a PioBlastConfig,
    ) -> Result<WorkerIo<'a, 'b>, PioError> {
        let mut phase_times = PhaseTimes::new();
        let start = ctx.now();
        let bundle = if cfg.fault == FaultMode::Off {
            let bytes = comm.bcast(MASTER, Bytes::new());
            QueryBundle::decode(&bytes).map_err(decode_err)?
        } else {
            let pump = Pump::new(comm, true, default_sweep());
            let m = pump
                .recv_from(MASTER, None)
                .map_err(|_| PioError::MasterDied)?;
            match m.tag {
                TAG_ABORT => return Err(PioError::Aborted),
                TAG_BUNDLE => QueryBundle::decode(&m.payload).map_err(decode_err)?,
                other => {
                    return Err(PioError::Protocol(format!(
                        "worker expected the query bundle, got tag {other}"
                    )))
                }
            }
        };
        let report_cfg =
            ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
        let batches = query_batches(&bundle.queries, cfg.query_batch);
        // Service mode: the bundle's query list is empty (queries come
        // per stream batch), so the batch count comes from the plan.
        let nbatches = match &cfg.service {
            Some(svc) => svc.plan.batches.len(),
            None => batches.len(),
        };
        let policy = policy_of(ctx, cfg, nbatches);
        phase_times.add(phases::OTHER, ctx.now() - start);
        Ok(WorkerIo {
            ctx,
            comm,
            cfg,
            policy,
            compute: cfg.compute_for(ctx.rank()),
            report_cfg,
            molecule: bundle.molecule,
            batches,
            batch_store: HashMap::new(),
            store: FragmentStore::new(cfg.service.as_ref().map_or(0, |s| s.resident_bytes)),
            prepared: None,
            cache: ResultCache::default(),
            frags: Vec::new(),
            pending: VecDeque::new(),
            grant_volumes: Vec::new(),
            assign: None,
            stats_total: SearchStats::default(),
            scratches: (0..cfg.threads.max(1))
                .map(|_| SearchScratch::new())
                .collect(),
            pending_ckpts: Vec::new(),
            phase_times,
            out_mark: None,
        })
    }

    fn run(mut self) -> Result<RankReport, PioError> {
        let (mut sm, init) = WorkerSm::new(self.policy);
        for act in init {
            self.exec(act)?;
        }
        if self.policy.p2p() {
            self.run_p2p(&mut sm)?;
        } else {
            self.run_collective(&mut sm)?;
        }
        Ok(RankReport {
            phases: self.phase_times,
            search_stats: self.stats_total,
        })
    }

    /// The point-to-point command loop (fault modes): everything is
    /// driven by the master; a dead master surfaces as a typed error.
    fn run_p2p(&mut self, sm: &mut WorkerSm) -> Result<(), PioError> {
        if self.policy.schedule == FragmentSchedule::Dynamic {
            self.comm.send(MASTER, TAG_READY, Bytes::new());
        }
        loop {
            let m = self.recv_master()?;
            let event = match m.tag {
                TAG_QBATCH => {
                    // A stream batch's queries, possibly prefetched well
                    // ahead of its first grant: stash and keep listening.
                    self.stash_qbatch(&m.payload)?;
                    continue;
                }
                TAG_GRANT => self.stash_grant(&m.payload)?,
                TAG_SUBMIT_REQ => {
                    let (epoch, body) = split_epoch(&m.payload)?;
                    // A truncated body is a typed protocol error, never a
                    // slice panic.
                    let raw: [u8; 4] = body
                        .get(..4)
                        .and_then(|b| b.try_into().ok())
                        .ok_or_else(|| PioError::Protocol("submit request lacks a batch".into()))?;
                    let batch = u32::from_le_bytes(raw) as usize;
                    WorkerEvent::SubmitReq { batch, epoch }
                }
                TAG_ASSIGN => {
                    let (epoch, body) = split_epoch(&m.payload)?;
                    self.assign = Some(OffsetAssignment::decode(body).map_err(decode_err)?);
                    WorkerEvent::Assign { epoch }
                }
                TAG_FINISH => WorkerEvent::Finish,
                other => {
                    return Err(PioError::Protocol(format!(
                        "worker got unexpected tag {other}"
                    )))
                }
            };
            for act in sm.handle(event) {
                if act == WorkerAction::Stop {
                    return Ok(());
                }
                self.exec(act)?;
            }
        }
    }

    /// The collective choreography (fault mode `Off`): acquire fragments
    /// (scatter or request loop), then one gather/scatter/write round
    /// per query batch. Same machine, synchronous lowering.
    fn run_collective(&mut self, sm: &mut WorkerSm) -> Result<(), PioError> {
        match self.policy.schedule {
            FragmentSchedule::Static => {
                let part_bytes = self.comm.scatterv(MASTER, None);
                let event = self.stash_grant(&part_bytes)?;
                for act in sm.handle(event) {
                    self.exec(act)?;
                }
            }
            FragmentSchedule::Dynamic => {
                // The initial request; each grant's ack doubles as the
                // next request until the master drains us.
                self.comm.send(MASTER, TAG_READY, Bytes::new());
                loop {
                    let m = self.comm.recv(Some(MASTER), Some(TAG_GRANT));
                    let event = self.stash_grant(&m.payload)?;
                    if matches!(event, WorkerEvent::Drained) {
                        break;
                    }
                    for act in sm.handle(event) {
                        self.exec(act)?;
                    }
                }
            }
        }
        for batch in 0..self.policy.nbatches {
            let epoch = batch as u64 + 1; // cosmetic: collectives self-fence
            for act in sm.handle(WorkerEvent::SubmitReq { batch, epoch }) {
                self.exec(act)?;
            }
            for act in sm.handle(WorkerEvent::Assign { epoch }) {
                self.exec(act)?;
            }
        }
        Ok(())
    }

    fn recv_master(&self) -> Result<Message, PioError> {
        let pump = Pump::new(self.comm, true, default_sweep());
        let m = pump
            .recv_from(MASTER, None)
            .map_err(|_| PioError::MasterDied)?;
        if m.tag == TAG_ABORT {
            return Err(PioError::Aborted);
        }
        Ok(m)
    }

    /// Stash a service-mode query batch delivered over the wire.
    fn stash_qbatch(&mut self, payload: &[u8]) -> Result<(), PioError> {
        let (batch, queries) = decode_qbatch(payload, self.molecule)?;
        self.batch_store.insert(batch as usize, queries);
        Ok(())
    }

    /// Block until `batch`'s queries have arrived (service mode). The
    /// master ships each batch ahead of its first grant and FIFO order
    /// per pair holds, so this only actually waits for batch 0's
    /// prepare, which runs before the command loop.
    fn ensure_batch_queries(&mut self, batch: usize) -> Result<(), PioError> {
        while !self.batch_store.contains_key(&batch) {
            let m = self.recv_master()?;
            if m.tag == TAG_QBATCH {
                self.stash_qbatch(&m.payload)?;
            } else {
                return Err(PioError::Protocol(format!(
                    "worker expected stream batch {batch} queries, got tag {}",
                    m.tag
                )));
            }
        }
        Ok(())
    }

    /// Queue a grant's assignments and produce the matching event.
    fn stash_grant(&mut self, payload: &[u8]) -> Result<WorkerEvent, PioError> {
        let (batch, ids, part) = decode_grant(payload)?;
        if ids.len() != part.fragments.len() {
            return Err(PioError::Protocol(
                "grant ids do not match fragments".into(),
            ));
        }
        if part.fragments.is_empty() {
            return Ok(WorkerEvent::Drained);
        }
        let nfrags = part.fragments.len();
        self.grant_volumes = part.volumes;
        self.pending.extend(ids.into_iter().zip(part.fragments));
        Ok(WorkerEvent::Grant {
            batch: batch as usize,
            nfrags,
        })
    }

    fn exec(&mut self, act: WorkerAction) -> Result<(), PioError> {
        match act {
            WorkerAction::Prepare { batch } => {
                if self.policy.service {
                    self.ensure_batch_queries(batch)?;
                }
                let t = self.ctx.now();
                let records = if self.policy.service {
                    self.batch_store.remove(&batch).expect("ensured just above")
                } else {
                    self.batches[batch].clone()
                };
                let residues: u64 = records.iter().map(|q| q.len() as u64).sum();
                let stats = self.report_cfg.db_stats;
                let prepared = self.compute.run_prepare(self.ctx, residues, || {
                    PreparedQueries::prepare(&self.cfg.params, records, stats)
                });
                self.prepared = Some(prepared);
                self.cache = ResultCache::default();
                self.phase_times.add(phases::OTHER, self.ctx.now() - t);
                Ok(())
            }
            WorkerAction::SearchHeld { batch } => {
                let frags = std::mem::take(&mut self.frags);
                for (id, frag) in &frags {
                    self.search_one(batch, *id, frag)?;
                }
                self.frags = frags;
                Ok(())
            }
            WorkerAction::Ingest {
                batch,
                count,
                search,
            } => self.ingest(batch, count, search),
            WorkerAction::AckGrant => {
                self.comm.send(MASTER, TAG_READY, Bytes::new());
                Ok(())
            }
            WorkerAction::Submit { batch: _, epoch } => {
                // Epoch fence: checkpoints fired during this batch's
                // searches must have landed (or degraded) before the
                // results are acknowledged.
                self.drain_ckpts();
                let meta = self.cache.metadata().encode();
                if self.policy.p2p() {
                    self.comm.send(MASTER, TAG_SUBMIT, with_epoch(epoch, &meta));
                } else {
                    self.out_mark = Some(self.ctx.now());
                    self.comm.gather(MASTER, Bytes::from(meta));
                }
                Ok(())
            }
            WorkerAction::WriteAssigned { batch, epoch } => self.write_assigned(batch, epoch),
            WorkerAction::Stop => Ok(()),
        }
    }

    /// Read the granted fragments through the input plane (one posted
    /// view set per file, whatever the strategy makes of it), then
    /// search them if the schedule wants search-on-grant.
    fn ingest(&mut self, batch: usize, count: usize, search: bool) -> Result<(), PioError> {
        let mut granted = Vec::with_capacity(count);
        for _ in 0..count {
            granted.push(
                self.pending
                    .pop_front()
                    .ok_or_else(|| PioError::Protocol("grant count exceeds stash".into()))?,
            );
        }
        if self.policy.service {
            return self.ingest_service(batch, granted);
        }
        let policy = self.policy;
        let plane = input_plane(self.comm, self.cfg, &policy);
        if self.cfg.io.io_async && !plane.is_collective() {
            return self.ingest_readahead(batch, granted, search);
        }
        let specs: Vec<FragmentAssignment> = granted.iter().map(|(_, a)| a.clone()).collect();
        let input_start = self.ctx.now();
        let datas =
            crate::input::read_fragments(&plane, &self.grant_volumes, &specs, self.molecule)?;
        self.phase_times
            .add(phases::INPUT, self.ctx.now() - input_start);
        for ((id, _), frag) in granted.into_iter().zip(datas) {
            if search {
                self.search_one(batch, id, &frag)?;
            }
            self.frags.push((id, frag));
        }
        Ok(())
    }

    /// Service-mode ingest: a granted fragment already resident in the
    /// [`FragmentStore`] skips its read entirely — the cross-query cache
    /// hit this mode exists for. Misses are read through the input plane
    /// (one batched posted set, or pipelined ahead of the searches under
    /// `--io-async`), and every searched fragment is (re)admitted as
    /// most-recently-used.
    fn ingest_service(
        &mut self,
        batch: usize,
        granted: Vec<(u32, FragmentAssignment)>,
    ) -> Result<(), PioError> {
        let policy = self.policy;
        let plane = input_plane(self.comm, self.cfg, &policy);
        // Classify against the store up front so the misses' reads are
        // planned before any search runs.
        let miss_ids: Vec<u32> = granted
            .iter()
            .filter(|(id, _)| !self.store.contains(*id as usize))
            .map(|(id, _)| *id)
            .collect();
        if self.cfg.io.io_async && !plane.is_collective() {
            return self.ingest_service_readahead(batch, granted, miss_ids);
        }
        let specs: Vec<FragmentAssignment> = granted
            .iter()
            .filter(|(id, _)| miss_ids.contains(id))
            .map(|(_, a)| a.clone())
            .collect();
        let input_start = self.ctx.now();
        let datas = if specs.is_empty() {
            Vec::new()
        } else {
            crate::input::read_fragments(&plane, &self.grant_volumes, &specs, self.molecule)?
        };
        self.phase_times
            .add(phases::INPUT, self.ctx.now() - input_start);
        let mut reads = datas.into_iter();
        for (id, a) in granted {
            let frag = match self.store.take(id as usize) {
                Some(frag) => {
                    self.trace_residency(true, id, batch);
                    frag
                }
                None => {
                    self.trace_residency(false, id, batch);
                    if miss_ids.contains(&id) {
                        reads.next().expect("one read per classified miss")
                    } else {
                        // Evicted between classification and use (an
                        // earlier insert in this very batch squeezed it
                        // out): read it now, alone.
                        let t = self.ctx.now();
                        let frag = crate::input::read_fragments(
                            &plane,
                            &self.grant_volumes,
                            std::slice::from_ref(&a),
                            self.molecule,
                        )?
                        .pop()
                        .expect("one spec, one fragment");
                        self.phase_times.add(phases::INPUT, self.ctx.now() - t);
                        frag
                    }
                }
            };
            self.search_one(batch, id, &frag)?;
            self.admit_resident(id, frag);
        }
        Ok(())
    }

    /// The service-mode read-ahead pipeline (`--io-async`): the next
    /// *miss*'s ranged reads go in flight before the current fragment is
    /// searched; resident hits interleave without touching the plane.
    fn ingest_service_readahead(
        &mut self,
        batch: usize,
        granted: Vec<(u32, FragmentAssignment)>,
        miss_ids: Vec<u32>,
    ) -> Result<(), PioError> {
        let policy = self.policy;
        let plane = input_plane(self.comm, self.cfg, &policy);
        let misses: Vec<usize> = granted
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| miss_ids.contains(id))
            .map(|(i, _)| i)
            .collect();
        let mut next_miss = 0usize;
        let mut pend = match misses.first() {
            Some(&p) => {
                next_miss = 1;
                Some((p, crate::input::read_fragment_begin(&plane, &granted[p].1)?))
            }
            None => None,
        };
        for (i, (id, a)) in granted.iter().enumerate() {
            let id = *id;
            let frag = if let Some(frag) = self.store.take(id as usize) {
                self.trace_residency(true, id, batch);
                frag
            } else {
                self.trace_residency(false, id, batch);
                if pend.as_ref().is_some_and(|(p, _)| *p == i) {
                    let (_, p) = pend.take().expect("just checked");
                    let wait_start = self.ctx.now();
                    let frag = crate::input::read_fragment_end(&plane, p, self.molecule)?;
                    self.phase_times
                        .add(phases::INPUT, self.ctx.now() - wait_start);
                    if next_miss < misses.len() {
                        let np = misses[next_miss];
                        next_miss += 1;
                        pend = Some((
                            np,
                            crate::input::read_fragment_begin(&plane, &granted[np].1)?,
                        ));
                    }
                    frag
                } else {
                    // Evicted after classification: synchronous catch-up.
                    let wait_start = self.ctx.now();
                    let p = crate::input::read_fragment_begin(&plane, a)?;
                    let frag = crate::input::read_fragment_end(&plane, p, self.molecule)?;
                    self.phase_times
                        .add(phases::INPUT, self.ctx.now() - wait_start);
                    frag
                }
            };
            self.search_one(batch, id, &frag)?;
            self.admit_resident(id, frag);
        }
        Ok(())
    }

    /// Trace one service-mode residency outcome for a granted fragment.
    fn trace_residency(&self, hit: bool, id: u32, batch: usize) {
        tracelog::instant(
            tracelog::Lane::Io,
            if hit { "cache.hit" } else { "cache.miss" },
            vec![("fragment", u64::from(id).into()), ("batch", batch.into())],
        );
    }

    /// Admit a searched fragment into the resident store, tracing each
    /// LRU eviction the insert forces.
    fn admit_resident(&mut self, id: u32, frag: FragmentData) {
        for evicted in self.store.insert(id as usize, frag) {
            tracelog::instant(
                tracelog::Lane::Io,
                "store.evict",
                vec![("fragment", (evicted as u64).into())],
            );
        }
    }

    /// The read-ahead pipeline (`--io-async`, non-collective planes):
    /// the next granted fragment's ranged reads go in flight *before*
    /// the search kernel runs on the current one, so the exposed input
    /// time is the first fragment's read plus whatever remainder each
    /// search did not cover.
    fn ingest_readahead(
        &mut self,
        batch: usize,
        granted: Vec<(u32, FragmentAssignment)>,
        search: bool,
    ) -> Result<(), PioError> {
        let policy = self.policy;
        let plane = input_plane(self.comm, self.cfg, &policy);
        let mut pend = match granted.first() {
            Some((_, a)) => Some(crate::input::read_fragment_begin(&plane, a)?),
            None => None,
        };
        let mut next = 0usize;
        while let Some(p) = pend.take() {
            let wait_start = self.ctx.now();
            let frag = crate::input::read_fragment_end(&plane, p, self.molecule)?;
            self.phase_times
                .add(phases::INPUT, self.ctx.now() - wait_start);
            let id = granted[next].0;
            next += 1;
            // Read ahead before searching: the next fragment's bytes
            // move while this one is in the kernel.
            if let Some((_, a)) = granted.get(next) {
                pend = Some(crate::input::read_fragment_begin(&plane, a)?);
            }
            if search {
                self.search_one(batch, id, &frag)?;
            }
            self.frags.push((id, frag));
        }
        Ok(())
    }

    /// Join every in-flight checkpoint write. Failures degrade — the
    /// blob is simply absent, exactly as if the worker had died
    /// mid-checkpoint, and recovery re-queues the fragment.
    fn drain_ckpts(&mut self) {
        if self.pending_ckpts.is_empty() {
            return;
        }
        let plane = independent_plane(self.comm, self.cfg);
        for h in std::mem::take(&mut self.pending_ckpts) {
            if let Err(e) = plane.wait(h) {
                tracelog::instant(
                    tracelog::Lane::Io,
                    "ckpt.skipped",
                    vec![("error", e.to_string().into())],
                );
            }
        }
    }

    /// Search one fragment against the prepared batch, cache the
    /// formatted records, and (under the checkpoint policy) persist the
    /// fragment's results before anything is acknowledged.
    ///
    /// With `cfg.threads > 1` the fragment's subjects are sharded into
    /// contiguous ranges, scanned on per-slot scratches through
    /// [`ComputeModel::run_search_sharded`] (the rank is charged the max
    /// over slot loads plus fork/join), and merged deterministically —
    /// byte-identical to the serial kernel for every slot count. This
    /// composes with `--io-async` read-ahead and `FaultMode::Recover`
    /// unchanged because both sit outside this call.
    fn search_one(&mut self, batch: usize, id: u32, frag: &FragmentData) -> Result<(), PioError> {
        use blast_core::search::SubjectSource;
        let prepared = self
            .prepared
            .as_ref()
            .expect("batch prepared before search");
        let searcher = BlastSearcher::new(&self.cfg.params, prepared);
        let scratches = &mut self.scratches;
        let slots = self.cfg.threads.max(1);
        let search_start = self.ctx.now();
        let (per_query, stats) = if slots == 1 {
            let scratch = &mut scratches[0];
            self.compute.run_search(self.ctx, || {
                let r = searcher.search(frag, scratch);
                (r.per_query, r.stats)
            })
        } else {
            let n = frag.num_subjects();
            let nshards = slots.min(n.max(1));
            let per = n.div_ceil(nshards);
            let (parts, _) = self
                .compute
                .run_search_sharded(self.ctx, slots, nshards, |i| {
                    let lo = (i * per).min(n);
                    let hi = ((i + 1) * per).min(n);
                    let r = searcher.search_subject_range(frag, lo..hi, &mut scratches[i]);
                    let stats = r.stats;
                    (r, stats)
                });
            let merged = searcher.merge_sharded(parts, &mut scratches[0]);
            (merged.per_query, merged.stats)
        };
        self.stats_total.merge(&stats);
        tracelog::closed_span(
            tracelog::Lane::Search,
            "search.fragment",
            search_start.0,
            self.ctx.now().0,
            vec![
                ("batch", batch.into()),
                ("fragment", (id as u64).into()),
                ("subjects", stats.subjects.into()),
                ("hsps", stats.hsps_kept.into()),
            ],
        );
        self.phase_times
            .add(phases::SEARCH, self.ctx.now() - search_start);

        let cache_start = self.ctx.now();
        let per_query = if self.cfg.local_prune {
            // Paper §5: a worker's hits beyond the global report limit
            // can never appear in the output; prune before formatting.
            let keep = self
                .cfg
                .report
                .num_descriptions
                .max(self.cfg.report.num_alignments);
            per_query
                .into_iter()
                .map(|mut hits| {
                    hits.truncate(keep);
                    hits
                })
                .collect()
        } else {
            per_query
        };
        let cache = &mut self.cache;
        let (_, meta, records) = self.compute.run_format(
            self.ctx,
            || {
                cache.add_fragment_traced(
                    &self.cfg.params,
                    &self.report_cfg,
                    prepared,
                    frag,
                    per_query,
                )
            },
            |r| r.as_ref().map(|(bytes, _, _)| *bytes).unwrap_or(0),
        )?;
        if self.cfg.checkpoint {
            let blob = FragmentCheckpoint {
                batch: batch as u32,
                fragment: id,
                meta,
                records,
            }
            .encode();
            let path = ckpt_path(self.cfg, batch, id as usize);
            let plane = independent_plane(self.comm, self.cfg);
            if self.cfg.io.io_async {
                // Fire-and-collect: the blob write stays in flight while
                // the worker searches on; drain_ckpts joins it at the
                // epoch fence.
                let handle = plane.submit_begin(IoRequest::CheckpointPut {
                    path: &path,
                    payload: &blob,
                });
                self.pending_ckpts.push(handle);
            } else if let Err(e) = plane.checkpoint_put(&path, &blob) {
                // A full file system degrades, not aborts: the blob is
                // absent and recovery re-queues the fragment.
                tracelog::instant(
                    tracelog::Lane::Io,
                    "ckpt.skipped",
                    vec![("error", e.to_string().into())],
                );
            }
        }
        self.phase_times
            .add(phases::OUTPUT, self.ctx.now() - cache_start);
        Ok(())
    }

    fn write_assigned(&mut self, batch: usize, epoch: u64) -> Result<(), PioError> {
        let t = self.ctx.now();
        let assignment = if self.policy.p2p() {
            self.assign
                .take()
                .expect("assignment stashed with the event")
        } else {
            let bytes = self.comm.scatterv(MASTER, None);
            OffsetAssignment::decode(&bytes).map_err(decode_err)?
        };
        let plane = output_plane(self.comm, self.cfg, &self.policy);
        let items = self
            .cache
            .assigned_records(&assignment.records)
            .map_err(|(q, oid)| {
                PioError::Protocol(format!("assigned record ({q}, {oid}) not cached"))
            })?;
        let path = if self.policy.service {
            stream_output_path(self.cfg, batch)
        } else {
            self.cfg.output_path.clone()
        };
        flush_output(&plane, &path, items)?;
        if !self.policy.p2p() && !plane.is_collective() {
            self.comm.barrier();
        }
        let start = self.out_mark.take().unwrap_or(t);
        self.phase_times.add(phases::OUTPUT, self.ctx.now() - start);
        if self.policy.p2p() {
            self.comm.send(MASTER, TAG_DONE, with_epoch(epoch, &[]));
        }
        Ok(())
    }
}
