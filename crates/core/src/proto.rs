//! pioBLAST-specific protocol payloads: partition assignments.

use seqfmt::codec::{CodecError, Reader, Writer};
use seqfmt::FragmentSpec;

use mpiblast::wire::{decode_fragment_spec, encode_fragment_spec};

/// One virtual fragment assigned to a worker: the byte ranges plus the
/// volume base name whose files they index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentAssignment {
    /// The byte ranges.
    pub spec: FragmentSpec,
    /// Volume base name (e.g. `nr-sim` or `nt-sim.01`), resolved against
    /// the shared `db/` directory.
    pub volume_name: String,
}

/// The master's scatter payload: a worker's list of assignments, plus the
/// global volume list (needed when every rank must iterate the volumes in
/// lockstep, e.g. for collective input).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionMessage {
    /// Assigned fragments, searched in order.
    pub fragments: Vec<FragmentAssignment>,
    /// All volume base names of the database, in oid order.
    pub volumes: Vec<String>,
}

impl PartitionMessage {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.fragments.len() as u32);
        for f in &self.fragments {
            let spec = encode_fragment_spec(&f.spec);
            w.u32(spec.len() as u32);
            w.bytes(&spec);
            w.string(&f.volume_name);
        }
        w.u32(self.volumes.len() as u32);
        for v in &self.volumes {
            w.string(v);
        }
        w.finish()
    }

    /// Deserialize.
    pub fn decode(buf: &[u8]) -> Result<PartitionMessage, CodecError> {
        let mut r = Reader::new(buf);
        let n = r.u32("fragment count")? as usize;
        let mut fragments = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.u32("spec len")? as usize;
            let spec_bytes = r.bytes(len, "spec")?;
            let spec = decode_fragment_spec(spec_bytes)?;
            let volume_name = r.string("volume name")?;
            fragments.push(FragmentAssignment { spec, volume_name });
        }
        let nv = r.u32("volume count")? as usize;
        let mut volumes = Vec::with_capacity(nv);
        for _ in 0..nv {
            volumes.push(r.string("volume")?);
        }
        Ok(PartitionMessage { fragments, volumes })
    }
}

// The even contiguous split now lives with the scheduler primitives in
// `mpisim::sched` (the runtime and the mpiBLAST baseline both use it);
// re-exported here for compatibility.
pub use mpisim::sched::chunk_evenly;

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FragmentSpec {
        FragmentSpec {
            volume: 0,
            first_seq: 0,
            last_seq: 5,
            base_oid: 0,
            seq_range: (0, 500),
            hdr_range: (0, 80),
            idx_seq_range: (64, 112),
            idx_hdr_range: (112, 160),
            residues: 500,
        }
    }

    #[test]
    fn partition_message_round_trips() {
        let m = PartitionMessage {
            fragments: vec![FragmentAssignment {
                spec: spec(),
                volume_name: "nr-sim".into(),
            }],
            volumes: vec!["nr-sim".into()],
        };
        assert_eq!(PartitionMessage::decode(&m.encode()).unwrap(), m);
        let empty = PartitionMessage::default();
        assert_eq!(PartitionMessage::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn chunk_evenly_partitions_in_order() {
        let chunks = chunk_evenly((0..10).collect(), 3);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8, 9]]);
        let chunks = chunk_evenly(Vec::<u8>::new(), 2);
        assert_eq!(chunks, vec![vec![], vec![]]);
        let chunks = chunk_evenly(vec![1], 3);
        assert_eq!(chunks.iter().flatten().count(), 1);
    }
}
