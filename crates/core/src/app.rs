//! The pioBLAST run: dynamic virtual partitioning, parallel input,
//! worker-side result caching, metadata-only merging, and collective
//! output (paper §3), plus the §5 extensions (query batching, local
//! pruning, output-mode ablation).
//!
//! Differences from the mpiBLAST baseline, stage by stage:
//!
//! | stage   | mpiBLAST                              | pioBLAST (here) |
//! |---------|----------------------------------------|-----------------|
//! | prepare | pre-partitioned physical fragments     | none needed |
//! | input   | copy fragment files, re-read in search | each worker `read_at`s its byte ranges of the shared files |
//! | search  | I/O embedded via mmap                  | pure in-memory search |
//! | results | full alignments to master, serialized per-alignment sequence fetch | metadata only; records formatted and cached where the data lives |
//! | output  | master formats and writes everything   | master assigns offsets; workers write collectively via MPI-IO |
//!
//! **Query batching** (paper §5: "query batching and pipelining that
//! adjust to the amount of available memory"): with
//! [`PioBlastConfig::query_batch`] set, the query set is processed in
//! batches — the database stays in memory across batches, but result
//! caches and formatted buffers are bounded by the batch size. Output is
//! byte-identical to an unbatched run; the cost is one search pass over
//! the in-memory fragments per batch.

use blast_core::fasta;
use blast_core::format::ReportConfig;
use blast_core::search::{BlastSearcher, PreparedQueries, SearchStats};
use blast_core::seq::SeqRecord;
use bytes::Bytes;
use mpiblast::phases;
use mpiblast::platform::{ClusterEnv, Platform};
use mpiblast::report::ReportOptions;
use mpiblast::wire::{MetaSubmission, OffsetAssignment, QueryBundle};
use mpiblast::{ComputeModel, RankReport, MASTER};
use mpiio::{CollectiveHints, FileView, MpiFile};
use mpisim::{Collectives, Comm};
use seqfmt::{AliasFile, FragmentData, VolumeIndex};
use simcluster::{PhaseTimes, RankCtx};

use crate::cache::ResultCache;
use crate::fault::{FaultMode, PioError};
use crate::merge::merge_and_layout;
use crate::proto::{chunk_evenly, FragmentAssignment, PartitionMessage};

pub(crate) const TAG_FRAG_REQ: u64 = 1;
const TAG_FRAG_ASSIGN: u64 = 2;

/// How virtual fragments are handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragmentSchedule {
    /// The master scatters a fixed, contiguous share to each worker up
    /// front (the paper's implementation).
    #[default]
    Static,
    /// Workers request fragments one at a time as they finish (paper §5:
    /// "the file ranges can be decided at run time and differentiated
    /// between different workers, ideal for ... heterogeneous nodes or
    /// skewed search"). Output bytes are unchanged; only placement moves.
    Dynamic,
}

/// Configuration of one pioBLAST run.
pub struct PioBlastConfig {
    /// Machine description.
    pub platform: Platform,
    /// Instantiated file systems.
    pub env: ClusterEnv,
    /// Compute-cost mode.
    pub compute: ComputeModel,
    /// BLAST search parameters.
    pub params: blast_core::search::SearchParams,
    /// Report-size limits.
    pub report: ReportOptions,
    /// Alias-file path of the shared formatted database.
    pub db_alias: String,
    /// Query FASTA path on the shared file system.
    pub query_path: String,
    /// Output report path on the shared file system.
    pub output_path: String,
    /// Virtual fragments to create (`None` = natural partitioning, one
    /// per worker).
    pub num_fragments: Option<usize>,
    /// Write the report with two-phase collective I/O (the paper's
    /// design). `false` falls back to one independent `write_at` per
    /// record/section — the ablation showing what collective I/O buys.
    pub collective_output: bool,
    /// Paper §5 "early score communication" in its always-correct form:
    /// workers prune their local hit lists to the report limits before
    /// formatting/submitting (a worker can never contribute more than the
    /// global top-N's size, so output bytes are unchanged).
    pub local_prune: bool,
    /// Process queries in batches of this many (paper §5 query batching;
    /// `None` = one pass over the whole query set).
    pub query_batch: Option<usize>,
    /// Read the shared database files with two-phase collective reads
    /// instead of independent ranged reads (the paper's §4 alternative of
    /// "reading multiple global files simultaneously"). Requires the
    /// static schedule.
    pub collective_input: bool,
    /// Fragment scheduling policy.
    pub schedule: FragmentSchedule,
    /// Fault-tolerance mode (see [`crate::fault`]). `Off` runs the plain
    /// collective protocol; `Detect` and `Recover` switch to a
    /// point-to-point master-driven protocol that notices rank death.
    /// Fault modes always write the report independently
    /// (`collective_output` is ignored) and do not support query batching
    /// or collective input.
    pub fault: FaultMode,
    /// Per-rank compute-speed multipliers (> 1 = slower node), to model
    /// heterogeneous clusters; `None` = homogeneous.
    pub rank_compute: Option<Vec<f64>>,
}

impl PioBlastConfig {
    /// The compute model for one rank, with any heterogeneity applied.
    pub(crate) fn compute_for(&self, rank: usize) -> ComputeModel {
        match &self.rank_compute {
            Some(scales) => self.compute.scaled(scales.get(rank).copied().unwrap_or(1.0)),
            None => self.compute,
        }
    }
}

/// Split the query set into processing batches. An empty query set still
/// yields one (empty) round so the collectives stay matched.
fn query_batches(queries: &[SeqRecord], batch: Option<usize>) -> Vec<Vec<SeqRecord>> {
    let size = batch.unwrap_or(usize::MAX).max(1);
    if queries.is_empty() {
        return vec![Vec::new()];
    }
    queries.chunks(size).map(|c| c.to_vec()).collect()
}

/// The per-rank body of a pioBLAST run.
///
/// With [`PioBlastConfig::fault`] at its default (`Off`) this cannot fail
/// in a fault-free simulation; in `Detect`/`Recover` mode it returns a
/// typed [`PioError`] when the run cannot complete (master death, all
/// workers dead, detected death in `Detect` mode).
pub fn run_rank(ctx: &RankCtx, cfg: &PioBlastConfig) -> Result<RankReport, PioError> {
    assert!(ctx.nranks() >= 2, "pioBLAST needs a master and a worker");
    assert!(
        !(cfg.collective_input && cfg.schedule == FragmentSchedule::Dynamic),
        "collective input requires the static schedule"
    );
    let comm = Comm::new(ctx, cfg.platform.net);
    if cfg.fault != FaultMode::Off {
        assert!(
            cfg.query_batch.is_none(),
            "fault tolerance does not support query batching"
        );
        assert!(
            !cfg.collective_input,
            "fault tolerance requires independent input reads"
        );
        assert!(
            !(cfg.fault == FaultMode::Recover && cfg.schedule == FragmentSchedule::Static),
            "fault recovery requires the dynamic schedule"
        );
        return if ctx.rank() == MASTER {
            crate::fault::run_master_fault(ctx, &comm, cfg)
        } else {
            crate::fault::run_worker_fault(ctx, &comm, cfg)
        };
    }
    Ok(if ctx.rank() == MASTER {
        run_master(ctx, &comm, cfg)
    } else {
        run_worker(ctx, &comm, cfg)
    })
}

fn run_master(ctx: &RankCtx, comm: &Comm, cfg: &PioBlastConfig) -> RankReport {
    let shared = &cfg.env.shared;
    let mut phase_times = PhaseTimes::new();
    let now = || ctx.now();
    let nworkers = ctx.nranks() - 1;

    // ---- startup: alias + queries + broadcast ----
    let start = now();
    let alias_bytes = shared.read_all(ctx, &cfg.db_alias).expect("alias present");
    let alias = AliasFile::decode(&alias_bytes).expect("valid alias");
    let query_text = shared
        .read_all(ctx, &cfg.query_path)
        .expect("query file present");
    let queries = fasta::parse(alias.molecule, &query_text).expect("valid query FASTA");
    let bundle = QueryBundle {
        db_title: alias.title.clone(),
        db_stats: alias.global_stats,
        molecule: alias.molecule,
        queries,
    };
    comm.bcast(MASTER, Bytes::from(bundle.encode()));
    let report_cfg =
        ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
    phase_times.add(phases::OTHER, now() - start);

    // ---- dynamic partitioning: read indexes, compute ranges, scatter ----
    let input_start = now();
    let mut indexes: Vec<VolumeIndex> = Vec::new();
    for vol in &alias.volumes {
        let idx_bytes = shared
            .read_all(ctx, &format!("db/{vol}.idx"))
            .expect("volume index present");
        indexes.push(VolumeIndex::decode(&idx_bytes).expect("valid volume index"));
    }
    let index_refs: Vec<&VolumeIndex> = indexes.iter().collect();
    let nfrags = cfg.num_fragments.unwrap_or(nworkers);
    let specs = seqfmt::virtual_fragments(&index_refs, nfrags);
    let assignments: Vec<FragmentAssignment> = specs
        .into_iter()
        .map(|spec| FragmentAssignment {
            volume_name: alias.volumes[spec.volume].clone(),
            spec,
        })
        .collect();
    match cfg.schedule {
        FragmentSchedule::Static => {
            let mut pieces: Vec<Bytes> =
                vec![Bytes::from(PartitionMessage::default().encode())];
            for chunk in chunk_evenly(assignments, nworkers) {
                pieces.push(Bytes::from(
                    PartitionMessage {
                        fragments: chunk,
                        volumes: alias.volumes.clone(),
                    }
                    .encode(),
                ));
            }
            comm.scatterv(MASTER, Some(pieces));
            if cfg.collective_input {
                // Collective reads involve every rank; the master joins
                // each with an empty view.
                crate::input::read_fragments_collective(
                    comm,
                    shared,
                    &alias.volumes,
                    &[],
                    bundle.molecule,
                    cfg.platform.aggregators,
                );
            }
        }
        FragmentSchedule::Dynamic => {
            // Serve fragments first-come-first-served until every worker
            // has drained the queue.
            let mut next = 0usize;
            let mut drained = 0usize;
            while drained < nworkers {
                let m = comm.recv(None, Some(TAG_FRAG_REQ));
                let msg = if next < assignments.len() {
                    let one = PartitionMessage {
                        fragments: vec![assignments[next].clone()],
                        volumes: alias.volumes.clone(),
                    };
                    next += 1;
                    one
                } else {
                    drained += 1;
                    PartitionMessage::default()
                };
                comm.send(m.src, TAG_FRAG_ASSIGN, Bytes::from(msg.encode()));
            }
        }
    }
    phase_times.add(phases::INPUT, now() - input_start);

    // ---- per batch: merge metadata + collective output ----
    let mut file_offset = 0u64;
    for batch in query_batches(&bundle.queries, cfg.query_batch) {
        // Prepare this batch (headers/footers need spaces and records).
        let t = now();
        let batch_residues: u64 = batch.iter().map(|q| q.len() as u64).sum();
        let prepared = cfg.compute.run_prepare(ctx, batch_residues, || {
            PreparedQueries::prepare(&cfg.params, batch, bundle.db_stats)
        });
        phase_times.add(phases::OTHER, now() - t);

        // The gather blocks until every worker finished searching the
        // batch; the wait is the workers' input+search epochs, not master
        // output time.
        let subs_bytes = comm
            .gather(MASTER, Bytes::from(MetaSubmission::default().encode()))
            .expect("master gathers");
        let out_start = now();
        let subs: Vec<MetaSubmission> = subs_bytes
            .iter()
            .map(|b| MetaSubmission::decode(b).expect("valid metadata"))
            .collect();
        let outcome = cfg.compute.run_format(
            ctx,
            || {
                merge_and_layout(
                    &report_cfg,
                    &cfg.params,
                    &prepared,
                    &subs,
                    cfg.report,
                    file_offset,
                )
            },
            |o| o.master_sections.iter().map(|(_, s)| s.len() as u64).sum(),
        );
        cfg.compute.run_merge(ctx, outcome.merged_items, || ());
        file_offset += outcome.total_bytes;

        // Tell each worker where its selected records go.
        let mut pieces: Vec<Bytes> = Vec::with_capacity(ctx.nranks());
        for a in &outcome.per_rank {
            pieces.push(Bytes::from(a.encode()));
        }
        comm.scatterv(MASTER, Some(pieces));

        // Master writes headers/summaries/footers as its share of the
        // collective write (or independently in the ablation mode).
        if cfg.collective_output {
            let mut regions = Vec::with_capacity(outcome.master_sections.len());
            let mut data = Vec::new();
            for (off, text) in &outcome.master_sections {
                regions.push((*off, text.len() as u64));
                data.extend_from_slice(text.as_bytes());
            }
            let view = FileView::new(0, regions).expect("master regions are ordered");
            let file =
                MpiFile::open(comm, shared, &cfg.output_path).with_hints(CollectiveHints {
                    aggregators: cfg.platform.aggregators,
                });
            file.write_at_all(&view, &data);
        } else {
            for (off, text) in &outcome.master_sections {
                shared.write_at(ctx, &cfg.output_path, *off, text.as_bytes());
            }
            comm.barrier();
        }
        phase_times.add(phases::OUTPUT, now() - out_start);
    }

    RankReport {
        phases: phase_times,
        search_stats: SearchStats::default(),
    }
}

/// One fragment's four ranged reads (the parallel input unit). Shared by
/// the normal worker and the fault-tolerant worker.
pub(crate) fn input_fragment(
    ctx: &RankCtx,
    cfg: &PioBlastConfig,
    molecule: blast_core::Molecule,
    assignment: &FragmentAssignment,
) -> FragmentData {
    let shared = &cfg.env.shared;
    let spec = &assignment.spec;
    let vol = &assignment.volume_name;
    let idx_path = format!("db/{vol}.idx");
    let idx_seq = shared
        .read_at(
            ctx,
            &idx_path,
            spec.idx_seq_range.0,
            spec.idx_seq_range.1 - spec.idx_seq_range.0,
        )
        .expect("index range");
    let idx_hdr = shared
        .read_at(
            ctx,
            &idx_path,
            spec.idx_hdr_range.0,
            spec.idx_hdr_range.1 - spec.idx_hdr_range.0,
        )
        .expect("index range");
    let seq = shared
        .read_at(
            ctx,
            &format!("db/{vol}.seq"),
            spec.seq_range.0,
            spec.seq_range.1 - spec.seq_range.0,
        )
        .expect("sequence range");
    let hdr = shared
        .read_at(
            ctx,
            &format!("db/{vol}.hdr"),
            spec.hdr_range.0,
            spec.hdr_range.1 - spec.hdr_range.0,
        )
        .expect("header range");
    FragmentData::from_ranges(molecule, spec.base_oid, &idx_seq, &idx_hdr, seq, hdr)
        .expect("consistent fragment ranges")
}

/// Search one fragment against a prepared batch and cache the formatted
/// records (the search + result-caching stages). Shared by the normal
/// worker and the fault-tolerant worker.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_fragment_into(
    ctx: &RankCtx,
    cfg: &PioBlastConfig,
    compute: ComputeModel,
    report_cfg: &ReportConfig,
    prepared: &PreparedQueries,
    frag: &FragmentData,
    cache: &mut ResultCache,
    stats_total: &mut SearchStats,
    phase_times: &mut PhaseTimes,
) {
    let searcher = BlastSearcher::new(&cfg.params, prepared);
    let search_start = ctx.now();
    let (per_query, stats) = compute.run_search(ctx, || {
        let r = searcher.search(frag);
        (r.per_query, r.stats)
    });
    stats_total.merge(&stats);
    phase_times.add(phases::SEARCH, ctx.now() - search_start);

    let cache_start = ctx.now();
    let per_query = if cfg.local_prune {
        // Paper §5: a worker's hits beyond the global report limit can
        // never appear in the output; prune before formatting.
        let keep = cfg.report.num_descriptions.max(cfg.report.num_alignments);
        per_query
            .into_iter()
            .map(|mut hits| {
                hits.truncate(keep);
                hits
            })
            .collect()
    } else {
        per_query
    };
    compute.run_format(
        ctx,
        || cache.add_fragment(&cfg.params, report_cfg, prepared, frag, per_query),
        |bytes| *bytes,
    );
    phase_times.add(phases::OUTPUT, ctx.now() - cache_start);
}

fn run_worker(ctx: &RankCtx, comm: &Comm, cfg: &PioBlastConfig) -> RankReport {
    let shared = &cfg.env.shared;
    let compute = cfg.compute_for(ctx.rank());
    let mut phase_times = PhaseTimes::new();
    let now = || ctx.now();

    // ---- startup ----
    let bundle_bytes = comm.bcast(MASTER, Bytes::new());
    let bundle = QueryBundle::decode(&bundle_bytes).expect("valid query bundle");
    let report_cfg =
        ReportConfig::for_molecule(bundle.molecule, bundle.db_title.clone(), bundle.db_stats);
    let mut stats_total = SearchStats::default();
    let batches = query_batches(&bundle.queries, cfg.query_batch);

    // Prepare one query batch (masking, lookup, search spaces), charged.
    let prepare_batch = |batch: Vec<SeqRecord>, phase_times: &mut PhaseTimes| {
        let t = now();
        let residues: u64 = batch.iter().map(|q| q.len() as u64).sum();
        let prepared = compute.run_prepare(ctx, residues, || {
            PreparedQueries::prepare(&cfg.params, batch, bundle.db_stats)
        });
        phase_times.add(phases::OTHER, now() - t);
        prepared
    };

    // ---- acquire fragments ----
    // Static: one scatter, then input everything. Dynamic: request loop —
    // each granted fragment is input *and searched against the first
    // batch* before the next request, so grants follow this worker's real
    // pace (paper §5 dynamic load balancing).
    let mut fragments: Vec<FragmentData> = Vec::new();
    let mut batch0_done: Option<(PreparedQueries, ResultCache)> = None;
    match cfg.schedule {
        FragmentSchedule::Static => {
            let part_bytes = comm.scatterv(MASTER, None);
            let part = PartitionMessage::decode(&part_bytes).expect("valid partition");
            let input_start = now();
            if cfg.collective_input {
                fragments = crate::input::read_fragments_collective(
                    comm,
                    shared,
                    &part.volumes,
                    &part.fragments,
                    bundle.molecule,
                    cfg.platform.aggregators,
                );
            } else {
                for assignment in &part.fragments {
                    fragments.push(input_fragment(ctx, cfg, bundle.molecule, assignment));
                }
            }
            phase_times.add(phases::INPUT, now() - input_start);
        }
        FragmentSchedule::Dynamic => {
            let prepared0 = prepare_batch(batches[0].clone(), &mut phase_times);
            let mut cache0 = ResultCache::default();
            loop {
                comm.send(MASTER, TAG_FRAG_REQ, Bytes::new());
                let m = comm.recv(Some(MASTER), Some(TAG_FRAG_ASSIGN));
                let part = PartitionMessage::decode(&m.payload).expect("valid grant");
                let Some(assignment) = part.fragments.first() else {
                    break;
                };
                let input_start = now();
                let frag = input_fragment(ctx, cfg, bundle.molecule, assignment);
                phase_times.add(phases::INPUT, now() - input_start);
                search_fragment_into(
                    ctx,
                    cfg,
                    compute,
                    &report_cfg,
                    &prepared0,
                    &frag,
                    &mut cache0,
                    &mut stats_total,
                    &mut phase_times,
                );
                fragments.push(frag);
            }
            batch0_done = Some((prepared0, cache0));
        }
    }

    // ---- per batch: search, cache, merge, write ----
    for (bi, batch) in batches.iter().enumerate() {
        let (prepared, cache) = match (bi, batch0_done.take()) {
            (0, Some(done)) => done,
            (_, stash) => {
                debug_assert!(stash.is_none());
                let prepared = prepare_batch(batch.clone(), &mut phase_times);
                let mut cache = ResultCache::default();
                for frag in &fragments {
                    search_fragment_into(
                        ctx,
                        cfg,
                        compute,
                        &report_cfg,
                        &prepared,
                        frag,
                        &mut cache,
                        &mut stats_total,
                        &mut phase_times,
                    );
                }
                (prepared, cache)
            }
        };
        let _ = prepared;

        // ---- metadata-only merge + collective write ----
        let out_start = now();
        comm.gather(MASTER, Bytes::from(cache.metadata().encode()));
        let assign_bytes = comm.scatterv(MASTER, None);
        let assignment = OffsetAssignment::decode(&assign_bytes).expect("valid assignment");
        if cfg.collective_output {
            let mut regions = Vec::with_capacity(assignment.records.len());
            let mut data = Vec::new();
            for &(q, oid, off) in &assignment.records {
                let record = cache.record(q, oid).expect("assigned record is cached");
                regions.push((off, record.len() as u64));
                data.extend_from_slice(record.as_bytes());
            }
            let view = FileView::new(0, regions).expect("assignments are ordered");
            let file =
                MpiFile::open(comm, shared, &cfg.output_path).with_hints(CollectiveHints {
                    aggregators: cfg.platform.aggregators,
                });
            file.write_at_all(&view, &data);
        } else {
            for &(q, oid, off) in &assignment.records {
                let record = cache.record(q, oid).expect("assigned record is cached");
                shared.write_at(ctx, &cfg.output_path, off, record.as_bytes());
            }
            comm.barrier();
        }
        phase_times.add(phases::OUTPUT, now() - out_start);
    }

    RankReport {
        phases: phase_times,
        search_stats: stats_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::search::SearchParams;
    use mpiblast::report::serial_report;
    use mpiblast::setup::{stage_queries, stage_shared_db};
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};
    use simcluster::Sim;

    fn small_db(cap: Option<u64>) -> seqfmt::FormattedDb {
        let recs = generate(&SynthConfig::nr_like(21, 40_000));
        let cfg = FormatDbConfig {
            title: "nr-test".into(),
            molecule: blast_core::Molecule::Protein,
            volume_residue_cap: cap,
        };
        format_records(&recs, &cfg)
    }

    fn sample_queries(db: &seqfmt::FormattedDb, n: usize) -> Vec<SeqRecord> {
        use blast_core::search::SubjectSource;
        let frag = FragmentData::from_volume(&db.volumes[0]);
        (0..n)
            .map(|i| {
                let s = frag.subject((i * 13) % frag.num_subjects());
                SeqRecord {
                    defline: format!("query_{i:05} sampled"),
                    residues: s.residues.to_vec(),
                    molecule: blast_core::Molecule::Protein,
                }
            })
            .collect()
    }

    struct Opts {
        nranks: usize,
        nfrags: Option<usize>,
        platform: Platform,
        cap: Option<u64>,
        collective_output: bool,
        local_prune: bool,
        query_batch: Option<usize>,
        n_queries: usize,
        collective_input: bool,
        schedule: FragmentSchedule,
        fault: FaultMode,
        rank_compute: Option<Vec<f64>>,
    }

    impl Default for Opts {
        fn default() -> Opts {
            Opts {
                nranks: 4,
                nfrags: None,
                platform: Platform::altix(),
                cap: None,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                n_queries: 3,
                collective_input: false,
                schedule: FragmentSchedule::Static,
                fault: FaultMode::Off,
                rank_compute: None,
            }
        }
    }

    fn run_opts(opts: Opts) -> (Vec<u8>, Vec<RankReport>) {
        let db = small_db(opts.cap);
        let queries = sample_queries(&db, opts.n_queries);
        let sim = Sim::new(opts.nranks);
        let env = ClusterEnv::new(&sim, &opts.platform);
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: opts.platform,
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".to_string(),
            num_fragments: opts.nfrags,
            collective_output: opts.collective_output,
            local_prune: opts.local_prune,
            query_batch: opts.query_batch,
            collective_input: opts.collective_input,
            schedule: opts.schedule,
            fault: opts.fault,
            rank_compute: opts.rank_compute.clone(),
        };
        let outcome = sim.run(|ctx| run_rank(&ctx, &cfg));
        let output = env.shared.peek("results.txt").unwrap_or_default();
        let reports = outcome
            .outputs
            .into_iter()
            .map(|r| r.expect("rank completed"))
            .collect();
        (output, reports)
    }

    fn run_once(
        nranks: usize,
        nfrags: Option<usize>,
        platform: Platform,
        cap: Option<u64>,
    ) -> (Vec<u8>, Vec<RankReport>) {
        run_opts(Opts {
            nranks,
            nfrags,
            platform,
            cap,
            ..Opts::default()
        })
    }

    #[test]
    fn output_matches_serial_reference() {
        let db = small_db(None);
        let queries = sample_queries(&db, 3);
        let expected = serial_report(
            &SearchParams::blastp(),
            queries,
            &db,
            ReportOptions::default(),
        )
        .expect("serial oracle");
        let (got, _) = run_once(4, None, Platform::altix(), None);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected)
        );
    }

    #[test]
    fn output_is_invariant_to_worker_and_fragment_count() {
        let (a, _) = run_once(3, None, Platform::altix(), None);
        let (b, _) = run_once(6, None, Platform::altix(), None);
        let (c, _) = run_once(4, Some(7), Platform::altix(), None);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn multi_volume_database_works() {
        // The paper left multi-volume (nt-scale) databases as future work;
        // our implementation handles them via per-volume fragments.
        let (a, _) = run_once(4, None, Platform::altix(), None);
        let (b, _) = run_once(4, None, Platform::altix(), Some(15_000));
        assert_eq!(a, b, "volume split must not change output bytes");
    }

    #[test]
    fn blade_platform_works() {
        let (a, _) = run_once(3, None, Platform::blade_cluster(), None);
        let (b, _) = run_once(3, None, Platform::altix(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn phases_are_populated_and_copy_free() {
        let (_, reports) = run_once(4, None, Platform::altix(), None);
        for r in &reports[1..] {
            assert!(r.phases.get(phases::INPUT) > simcluster::SimDuration::ZERO);
            assert!(r.phases.get(phases::SEARCH) > simcluster::SimDuration::ZERO);
            assert_eq!(r.phases.get(phases::COPY), simcluster::SimDuration::ZERO);
        }
        assert!(reports[0].phases.get(phases::OUTPUT) > simcluster::SimDuration::ZERO);
    }

    #[test]
    fn independent_output_mode_is_byte_identical() {
        let (a, _) = run_opts(Opts::default());
        let (b, _) = run_opts(Opts {
            collective_output: false,
            ..Opts::default()
        });
        assert_eq!(a, b, "ablation must only change timing, not bytes");
    }

    #[test]
    fn local_prune_is_byte_identical() {
        let (a, _) = run_opts(Opts {
            nranks: 5,
            ..Opts::default()
        });
        let (b, _) = run_opts(Opts {
            nranks: 5,
            local_prune: true,
            ..Opts::default()
        });
        assert_eq!(a, b, "local pruning must never change the output");
    }

    #[test]
    fn finer_granularity_is_byte_identical() {
        // Paper §5: partition granularity is a pure performance knob.
        let (a, _) = run_once(4, None, Platform::altix(), None);
        let (b, _) = run_once(4, Some(12), Platform::altix(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn query_batching_is_byte_identical() {
        // Paper §5: batching bounds memory; it must not change the report.
        let (reference, _) = run_opts(Opts {
            n_queries: 5,
            ..Opts::default()
        });
        for batch in [1usize, 2, 3, 5, 100] {
            let (batched, _) = run_opts(Opts {
                n_queries: 5,
                query_batch: Some(batch),
                ..Opts::default()
            });
            assert_eq!(batched, reference, "batch size {batch}");
        }
    }

    #[test]
    fn query_batching_searches_fragments_repeatedly() {
        let (_, unbatched) = run_opts(Opts {
            n_queries: 4,
            ..Opts::default()
        });
        let (_, batched) = run_opts(Opts {
            n_queries: 4,
            query_batch: Some(1),
            ..Opts::default()
        });
        // Four batches -> four search passes per fragment.
        let subjects = |rs: &[RankReport]| -> u64 {
            rs.iter().map(|r| r.search_stats.subjects).sum()
        };
        assert_eq!(subjects(&batched), 4 * subjects(&unbatched));
    }

    #[test]
    fn collective_input_is_byte_identical() {
        // Paper §4's deferred design alternative: reading the global
        // files with collective I/O must not change a single output byte,
        // for any volume layout or fragment granularity.
        let (a, _) = run_opts(Opts::default());
        for cap in [None, Some(15_000)] {
            for nfrags in [None, Some(9)] {
                let (b, _) = run_opts(Opts {
                    cap,
                    nfrags,
                    collective_input: true,
                    ..Opts::default()
                });
                assert_eq!(a, b, "cap {cap:?} nfrags {nfrags:?}");
            }
        }
    }

    #[test]
    fn dynamic_schedule_is_byte_identical() {
        let (a, _) = run_opts(Opts::default());
        for nfrags in [None, Some(9)] {
            let (b, _) = run_opts(Opts {
                nfrags,
                schedule: FragmentSchedule::Dynamic,
                ..Opts::default()
            });
            assert_eq!(a, b, "dynamic scheduling must not change bytes");
        }
    }

    #[test]
    fn dynamic_schedule_balances_heterogeneous_nodes() {
        // One worker 8x slower; with 4 fragments per worker, dynamic
        // scheduling should beat static placement.
        let hetero = Some(vec![1.0, 8.0, 1.0, 1.0, 1.0]);
        let base = Opts {
            nranks: 5,
            nfrags: Some(16),
            n_queries: 4,
            rank_compute: hetero.clone(),
            ..Opts::default()
        };
        let run_total = |schedule: FragmentSchedule| -> u64 {
            let db = small_db(base.cap);
            let queries = sample_queries(&db, base.n_queries);
            let sim = Sim::new(base.nranks);
            let env = ClusterEnv::new(&sim, &base.platform);
            let db_alias = stage_shared_db(&env.shared, &db);
            let query_path = stage_queries(&env.shared, &queries);
            let cfg = PioBlastConfig {
                platform: base.platform.clone(),
                env: env.clone(),
                compute: ComputeModel::modeled(),
                params: SearchParams::blastp(),
                report: ReportOptions::default(),
                db_alias,
                query_path,
                output_path: "results.txt".to_string(),
                num_fragments: base.nfrags,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                collective_input: false,
                schedule,
                fault: FaultMode::Off,
                rank_compute: hetero.clone(),
            };
            sim.run(|ctx| run_rank(&ctx, &cfg)).elapsed.0
        };
        let static_total = run_total(FragmentSchedule::Static);
        let dynamic_total = run_total(FragmentSchedule::Dynamic);
        assert!(
            dynamic_total < static_total,
            "dynamic {dynamic_total} ns should beat static {static_total} ns on a heterogeneous cluster"
        );
    }

    #[test]
    fn empty_query_set_still_runs() {
        let (output, _) = run_opts(Opts {
            n_queries: 0,
            ..Opts::default()
        });
        assert!(output.is_empty(), "no queries -> empty report file");
    }

    #[test]
    fn runs_are_deterministic_in_modeled_mode() {
        let (a, ra) = run_once(4, None, Platform::altix(), None);
        let (b, rb) = run_once(4, None, Platform::altix(), None);
        assert_eq!(a, b);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.phases, y.phases);
        }
    }
}
