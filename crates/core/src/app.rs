//! The pioBLAST run: dynamic virtual partitioning, parallel input,
//! worker-side result caching, metadata-only merging, and collective
//! output (paper §3), plus the §5 extensions (query batching, local
//! pruning, output-mode ablation).
//!
//! Differences from the mpiBLAST baseline, stage by stage:
//!
//! | stage   | mpiBLAST                              | pioBLAST (here) |
//! |---------|----------------------------------------|-----------------|
//! | prepare | pre-partitioned physical fragments     | none needed |
//! | input   | copy fragment files, re-read in search | each worker `read_at`s its byte ranges of the shared files |
//! | search  | I/O embedded via mmap                  | pure in-memory search |
//! | results | full alignments to master, serialized per-alignment sequence fetch | metadata only; records formatted and cached where the data lives |
//! | output  | master formats and writes everything   | master assigns offsets; workers write collectively via MPI-IO |
//!
//! **Query batching** (paper §5: "query batching and pipelining that
//! adjust to the amount of available memory"): with
//! [`PioBlastConfig::query_batch`] set, the query set is processed in
//! batches — the database stays in memory across batches, but result
//! caches and formatted buffers are bounded by the batch size. Output is
//! byte-identical to an unbatched run; the cost is one search pass over
//! the in-memory fragments per batch.
//!
//! The protocol itself — who grants fragments, when submissions are
//! collected, how deaths are handled — lives in [`crate::runtime`] as one
//! event-driven state-machine pair shared by every mode; this module only
//! validates the configuration and dispatches ranks into it.

use blast_core::seq::SeqRecord;
use mpiblast::platform::{ClusterEnv, Platform};
use mpiblast::report::ReportOptions;
use mpiblast::{ComputeModel, RankReport, MASTER};
use mpisim::Comm;
use simcluster::RankCtx;

use crate::fault::{FaultMode, PioError};

/// How virtual fragments are handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragmentSchedule {
    /// The master scatters a fixed, contiguous share to each worker up
    /// front (the paper's implementation).
    #[default]
    Static,
    /// Workers request fragments one at a time as they finish (paper §5:
    /// "the file ranges can be decided at run time and differentiated
    /// between different workers, ideal for ... heterogeneous nodes or
    /// skewed search"). Output bytes are unchanged; only placement moves.
    Dynamic,
}

/// Configuration of one pioBLAST run.
pub struct PioBlastConfig {
    /// Machine description.
    pub platform: Platform,
    /// Instantiated file systems.
    pub env: ClusterEnv,
    /// Compute-cost mode.
    pub compute: ComputeModel,
    /// BLAST search parameters.
    pub params: blast_core::search::SearchParams,
    /// Report-size limits.
    pub report: ReportOptions,
    /// Alias-file path of the shared formatted database.
    pub db_alias: String,
    /// Query FASTA path on the shared file system.
    pub query_path: String,
    /// Output report path on the shared file system.
    pub output_path: String,
    /// Virtual fragments to create (`None` = natural partitioning, one
    /// per worker).
    pub num_fragments: Option<usize>,
    /// Write the report with two-phase collective I/O (the paper's
    /// design). `false` falls back to one independent `write_at` per
    /// record/section — the ablation showing what collective I/O buys.
    pub collective_output: bool,
    /// Paper §5 "early score communication" in its always-correct form:
    /// workers prune their local hit lists to the report limits before
    /// formatting/submitting (a worker can never contribute more than the
    /// global top-N's size, so output bytes are unchanged).
    pub local_prune: bool,
    /// Process queries in batches of this many (paper §5 query batching;
    /// `None` = one pass over the whole query set). Supported in every
    /// fault mode.
    pub query_batch: Option<usize>,
    /// Read the shared database files with aggregated reads instead of
    /// independent ranged reads (the paper's §4 alternative of "reading
    /// multiple global files simultaneously"). On the static fault-free
    /// schedule this is a true two-phase collective read; under the
    /// dynamic schedule or a fault mode the I/O plane aggregates
    /// (sieves) each rank's granted views instead — output bytes are
    /// identical in every combination.
    pub collective_input: bool,
    /// Fragment scheduling policy.
    pub schedule: FragmentSchedule,
    /// Fault-tolerance mode (see [`crate::fault`]). `Off` lowers the
    /// runtime onto collectives; `Detect` and `Recover` lower it onto a
    /// point-to-point master-driven protocol that notices rank death.
    /// Fault modes cannot synchronize ranks for two-phase collective
    /// I/O, so `collective_input`/`collective_output` degrade to
    /// per-rank sieved access through the I/O plane.
    pub fault: FaultMode,
    /// Persist each completed `(batch, fragment)` search result to the
    /// shared file system so a recovery epoch re-queues only the victim's
    /// *unfinished* fragments (see [`crate::runtime`]). Requires
    /// [`FaultMode::Recover`].
    pub checkpoint: bool,
    /// Per-rank compute-speed multipliers (> 1 = slower node), to model
    /// heterogeneous clusters; `None` = homogeneous.
    pub rank_compute: Option<Vec<f64>>,
    /// Intra-rank compute slots per worker (`--threads`): each granted
    /// fragment's subjects are sharded across this many slots (one
    /// `SearchScratch` per slot) and the per-shard hit lists are merged
    /// deterministically, so output bytes never change. Must be ≥ 1 and
    /// ≤ the platform's `cores_per_node`.
    pub threads: usize,
    /// I/O-plane tuning: the physical access strategy (independent,
    /// sieve, or the adaptive two-phase default) and the sieve-hole
    /// threshold. Strategy is a pure performance knob — output bytes
    /// never depend on it.
    pub io: mpiio::IoOptions,
    /// Query-stream service mode (`pioblast serve`): the query set is
    /// split by a [`crate::service::QueryStreamPlan`] into per-user
    /// stream batches, admitted at their arrival times, with every
    /// fragment re-granted per batch; workers keep a bounded resident
    /// fragment store so re-grants skip their reads, and the scheduler
    /// steers each fragment back to its last holder when
    /// [`crate::service::ServiceOptions::affinity`] is set. Each stream
    /// batch's report lands at `<output_path>.q<batch>`, byte-identical
    /// to a one-shot run over the same queries. Requires the dynamic
    /// schedule and excludes `query_batch`. `None` = one-shot run.
    pub service: Option<crate::service::ServiceOptions>,
}

impl PioBlastConfig {
    /// The compute model for one rank, with any heterogeneity applied.
    pub(crate) fn compute_for(&self, rank: usize) -> ComputeModel {
        match &self.rank_compute {
            Some(scales) => self
                .compute
                .scaled(scales.get(rank).copied().unwrap_or(1.0)),
            None => self.compute,
        }
    }

    /// Reject configuration combinations the runtime does not support,
    /// with a typed [`PioError::UnsupportedConfig`] naming the conflict.
    pub fn validate(&self) -> Result<(), PioError> {
        let unsupported = |what: &str| Err(PioError::UnsupportedConfig(what.to_string()));
        if self.fault == FaultMode::Recover && self.schedule == FragmentSchedule::Static {
            return unsupported("fault recovery requires the dynamic schedule");
        }
        if self.checkpoint && self.fault != FaultMode::Recover {
            return unsupported("fragment checkpointing requires FaultMode::Recover");
        }
        if self.threads == 0 {
            return unsupported("--threads must be at least 1");
        }
        if self.threads > self.platform.cores_per_node {
            return unsupported("--threads exceeds the platform's cores per node");
        }
        if let Some(svc) = &self.service {
            if self.schedule != FragmentSchedule::Dynamic {
                return unsupported("service mode requires the dynamic schedule");
            }
            if self.query_batch.is_some() {
                return unsupported(
                    "service mode excludes --query-batch (the stream plan batches queries)",
                );
            }
            if svc.plan.batches.is_empty() {
                return unsupported("service mode needs a non-empty stream plan");
            }
        }
        Ok(())
    }
}

/// Split the query set into processing batches. An empty query set still
/// yields one (empty) round so the collectives stay matched.
pub(crate) fn query_batches(queries: &[SeqRecord], batch: Option<usize>) -> Vec<Vec<SeqRecord>> {
    let size = batch.unwrap_or(usize::MAX).max(1);
    if queries.is_empty() {
        return vec![Vec::new()];
    }
    queries.chunks(size).map(|c| c.to_vec()).collect()
}

/// The per-rank body of a pioBLAST run.
///
/// Every mode runs the same [`crate::runtime`] state machines; the
/// configuration only changes how their actions are lowered. With
/// [`PioBlastConfig::fault`] at its default (`Off`) this cannot fail in a
/// fault-free simulation; in `Detect`/`Recover` mode it returns a typed
/// [`PioError`] when the run cannot complete (master death, all workers
/// dead, detected death in `Detect` mode). Unsupported configuration
/// combinations fail on every rank with
/// [`PioError::UnsupportedConfig`].
pub fn run_rank(ctx: &RankCtx, cfg: &PioBlastConfig) -> Result<RankReport, PioError> {
    assert!(ctx.nranks() >= 2, "pioBLAST needs a master and a worker");
    cfg.validate()?;
    let comm = Comm::new(ctx, cfg.platform.net);
    if ctx.rank() == MASTER {
        crate::runtime::run_master(ctx, &comm, cfg)
    } else {
        crate::runtime::run_worker(ctx, &comm, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::search::SearchParams;
    use mpiblast::phases;
    use mpiblast::report::serial_report;
    use mpiblast::setup::{stage_queries, stage_shared_db};
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};
    use seqfmt::FragmentData;
    use simcluster::Sim;

    fn small_db(cap: Option<u64>) -> seqfmt::FormattedDb {
        let recs = generate(&SynthConfig::nr_like(21, 40_000));
        let cfg = FormatDbConfig {
            title: "nr-test".into(),
            molecule: blast_core::Molecule::Protein,
            volume_residue_cap: cap,
        };
        format_records(&recs, &cfg)
    }

    fn sample_queries(db: &seqfmt::FormattedDb, n: usize) -> Vec<SeqRecord> {
        use blast_core::search::SubjectSource;
        let frag = FragmentData::from_volume(&db.volumes[0]);
        (0..n)
            .map(|i| {
                let s = frag.subject((i * 13) % frag.num_subjects());
                SeqRecord {
                    defline: format!("query_{i:05} sampled"),
                    residues: s.residues.to_vec(),
                    molecule: blast_core::Molecule::Protein,
                }
            })
            .collect()
    }

    struct Opts {
        nranks: usize,
        nfrags: Option<usize>,
        platform: Platform,
        cap: Option<u64>,
        collective_output: bool,
        local_prune: bool,
        query_batch: Option<usize>,
        n_queries: usize,
        collective_input: bool,
        schedule: FragmentSchedule,
        fault: FaultMode,
        rank_compute: Option<Vec<f64>>,
        threads: usize,
        io: mpiio::IoOptions,
    }

    impl Default for Opts {
        fn default() -> Opts {
            Opts {
                nranks: 4,
                nfrags: None,
                platform: Platform::altix(),
                cap: None,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                n_queries: 3,
                collective_input: false,
                schedule: FragmentSchedule::Static,
                fault: FaultMode::Off,
                rank_compute: None,
                threads: 1,
                io: mpiio::IoOptions::default(),
            }
        }
    }

    fn run_opts(opts: Opts) -> (Vec<u8>, Vec<RankReport>) {
        let db = small_db(opts.cap);
        let queries = sample_queries(&db, opts.n_queries);
        let sim = Sim::new(opts.nranks);
        let env = ClusterEnv::new(&sim, &opts.platform);
        let db_alias = stage_shared_db(&env.shared, &db);
        let query_path = stage_queries(&env.shared, &queries);
        let cfg = PioBlastConfig {
            platform: opts.platform,
            env: env.clone(),
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias,
            query_path,
            output_path: "results.txt".to_string(),
            num_fragments: opts.nfrags,
            collective_output: opts.collective_output,
            local_prune: opts.local_prune,
            query_batch: opts.query_batch,
            collective_input: opts.collective_input,
            schedule: opts.schedule,
            fault: opts.fault,
            checkpoint: false,
            rank_compute: opts.rank_compute.clone(),
            threads: opts.threads,
            io: opts.io,
            service: None,
        };
        let outcome = sim.run(|ctx| run_rank(&ctx, &cfg));
        let output = env.shared.peek("results.txt").unwrap_or_default();
        let reports = outcome
            .outputs
            .into_iter()
            .map(|r| r.expect("rank completed"))
            .collect();
        (output, reports)
    }

    fn run_once(
        nranks: usize,
        nfrags: Option<usize>,
        platform: Platform,
        cap: Option<u64>,
    ) -> (Vec<u8>, Vec<RankReport>) {
        run_opts(Opts {
            nranks,
            nfrags,
            platform,
            cap,
            ..Opts::default()
        })
    }

    #[test]
    fn output_matches_serial_reference() {
        let db = small_db(None);
        let queries = sample_queries(&db, 3);
        let expected = serial_report(
            &SearchParams::blastp(),
            queries,
            &db,
            ReportOptions::default(),
        )
        .expect("serial oracle");
        let (got, _) = run_once(4, None, Platform::altix(), None);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected)
        );
    }

    #[test]
    fn output_is_invariant_to_worker_and_fragment_count() {
        let (a, _) = run_once(3, None, Platform::altix(), None);
        let (b, _) = run_once(6, None, Platform::altix(), None);
        let (c, _) = run_once(4, Some(7), Platform::altix(), None);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn multi_volume_database_works() {
        // The paper left multi-volume (nt-scale) databases as future work;
        // our implementation handles them via per-volume fragments.
        let (a, _) = run_once(4, None, Platform::altix(), None);
        let (b, _) = run_once(4, None, Platform::altix(), Some(15_000));
        assert_eq!(a, b, "volume split must not change output bytes");
    }

    #[test]
    fn blade_platform_works() {
        let (a, _) = run_once(3, None, Platform::blade_cluster(), None);
        let (b, _) = run_once(3, None, Platform::altix(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn phases_are_populated_and_copy_free() {
        let (_, reports) = run_once(4, None, Platform::altix(), None);
        for r in &reports[1..] {
            assert!(r.phases.get(phases::INPUT) > simcluster::SimDuration::ZERO);
            assert!(r.phases.get(phases::SEARCH) > simcluster::SimDuration::ZERO);
            assert_eq!(r.phases.get(phases::COPY), simcluster::SimDuration::ZERO);
        }
        assert!(reports[0].phases.get(phases::OUTPUT) > simcluster::SimDuration::ZERO);
    }

    #[test]
    fn independent_output_mode_is_byte_identical() {
        let (a, _) = run_opts(Opts::default());
        let (b, _) = run_opts(Opts {
            collective_output: false,
            ..Opts::default()
        });
        assert_eq!(a, b, "ablation must only change timing, not bytes");
    }

    #[test]
    fn local_prune_is_byte_identical() {
        let (a, _) = run_opts(Opts {
            nranks: 5,
            ..Opts::default()
        });
        let (b, _) = run_opts(Opts {
            nranks: 5,
            local_prune: true,
            ..Opts::default()
        });
        assert_eq!(a, b, "local pruning must never change the output");
    }

    #[test]
    fn finer_granularity_is_byte_identical() {
        // Paper §5: partition granularity is a pure performance knob.
        let (a, _) = run_once(4, None, Platform::altix(), None);
        let (b, _) = run_once(4, Some(12), Platform::altix(), None);
        assert_eq!(a, b);
    }

    #[test]
    fn query_batching_is_byte_identical() {
        // Paper §5: batching bounds memory; it must not change the report.
        let (reference, _) = run_opts(Opts {
            n_queries: 5,
            ..Opts::default()
        });
        for batch in [1usize, 2, 3, 5, 100] {
            let (batched, _) = run_opts(Opts {
                n_queries: 5,
                query_batch: Some(batch),
                ..Opts::default()
            });
            assert_eq!(batched, reference, "batch size {batch}");
        }
    }

    #[test]
    fn query_batching_searches_fragments_repeatedly() {
        let (_, unbatched) = run_opts(Opts {
            n_queries: 4,
            ..Opts::default()
        });
        let (_, batched) = run_opts(Opts {
            n_queries: 4,
            query_batch: Some(1),
            ..Opts::default()
        });
        // Four batches -> four search passes per fragment.
        let subjects =
            |rs: &[RankReport]| -> u64 { rs.iter().map(|r| r.search_stats.subjects).sum() };
        assert_eq!(subjects(&batched), 4 * subjects(&unbatched));
    }

    #[test]
    fn collective_input_is_byte_identical() {
        // Paper §4's deferred design alternative: reading the global
        // files with collective I/O must not change a single output byte,
        // for any volume layout or fragment granularity.
        let (a, _) = run_opts(Opts::default());
        for cap in [None, Some(15_000)] {
            for nfrags in [None, Some(9)] {
                let (b, _) = run_opts(Opts {
                    cap,
                    nfrags,
                    collective_input: true,
                    ..Opts::default()
                });
                assert_eq!(a, b, "cap {cap:?} nfrags {nfrags:?}");
            }
        }
    }

    #[test]
    fn dynamic_schedule_is_byte_identical() {
        let (a, _) = run_opts(Opts::default());
        for nfrags in [None, Some(9)] {
            let (b, _) = run_opts(Opts {
                nfrags,
                schedule: FragmentSchedule::Dynamic,
                ..Opts::default()
            });
            assert_eq!(a, b, "dynamic scheduling must not change bytes");
        }
    }

    #[test]
    fn dynamic_schedule_balances_heterogeneous_nodes() {
        // One worker 8x slower; with 4 fragments per worker, dynamic
        // scheduling should beat static placement.
        let hetero = Some(vec![1.0, 8.0, 1.0, 1.0, 1.0]);
        let base = Opts {
            nranks: 5,
            nfrags: Some(16),
            n_queries: 4,
            rank_compute: hetero.clone(),
            ..Opts::default()
        };
        let run_total = |schedule: FragmentSchedule| -> u64 {
            let db = small_db(base.cap);
            let queries = sample_queries(&db, base.n_queries);
            let sim = Sim::new(base.nranks);
            let env = ClusterEnv::new(&sim, &base.platform);
            let db_alias = stage_shared_db(&env.shared, &db);
            let query_path = stage_queries(&env.shared, &queries);
            let cfg = PioBlastConfig {
                platform: base.platform.clone(),
                env: env.clone(),
                compute: ComputeModel::modeled(),
                params: SearchParams::blastp(),
                report: ReportOptions::default(),
                db_alias,
                query_path,
                output_path: "results.txt".to_string(),
                num_fragments: base.nfrags,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                collective_input: false,
                schedule,
                fault: FaultMode::Off,
                checkpoint: false,
                rank_compute: hetero.clone(),
                threads: 1,
                io: Default::default(),
                service: None,
            };
            sim.run(|ctx| run_rank(&ctx, &cfg)).elapsed.0
        };
        let static_total = run_total(FragmentSchedule::Static);
        let dynamic_total = run_total(FragmentSchedule::Dynamic);
        assert!(
            dynamic_total < static_total,
            "dynamic {dynamic_total} ns should beat static {static_total} ns on a heterogeneous cluster"
        );
    }

    #[test]
    fn empty_query_set_still_runs() {
        let (output, _) = run_opts(Opts {
            n_queries: 0,
            ..Opts::default()
        });
        assert!(output.is_empty(), "no queries -> empty report file");
    }

    #[test]
    fn runs_are_deterministic_in_modeled_mode() {
        let (a, ra) = run_once(4, None, Platform::altix(), None);
        let (b, rb) = run_once(4, None, Platform::altix(), None);
        assert_eq!(a, b);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.phases, y.phases);
        }
    }

    #[test]
    fn collective_input_composes_with_dynamic_and_fault_modes() {
        // The I/O-plane refactor lifted the old `UnsupportedConfig`
        // rejections: collective input now composes with the dynamic
        // schedule and with both fault modes (the plane sieves the
        // granted views instead of synchronizing), byte-identically.
        let (reference, _) = run_opts(Opts::default());
        let combos = [
            (FragmentSchedule::Dynamic, FaultMode::Off),
            (FragmentSchedule::Static, FaultMode::Detect),
            (FragmentSchedule::Dynamic, FaultMode::Detect),
            (FragmentSchedule::Dynamic, FaultMode::Recover),
        ];
        for (schedule, fault) in combos {
            let (got, _) = run_opts(Opts {
                collective_input: true,
                schedule,
                fault,
                ..Opts::default()
            });
            assert_eq!(got, reference, "schedule {schedule:?} fault {fault:?}");
        }
    }

    #[test]
    fn io_strategies_are_byte_identical() {
        // `--io-strategy` is a pure performance knob; pin that every
        // strategy produces the reference bytes with aggregation
        // requested on both paths, across two sieve thresholds.
        let (reference, _) = run_opts(Opts::default());
        for strategy in [
            mpiio::IoStrategy::Independent,
            mpiio::IoStrategy::Sieve,
            mpiio::IoStrategy::TwoPhase,
        ] {
            for sieve_threshold in [0u64, 1 << 20] {
                let (got, _) = run_opts(Opts {
                    collective_input: true,
                    io: mpiio::IoOptions {
                        strategy,
                        sieve_threshold,
                        ..Default::default()
                    },
                    ..Opts::default()
                });
                assert_eq!(got, reference, "{strategy} threshold {sieve_threshold}");
            }
        }
    }

    #[test]
    fn unsupported_configs_fail_with_a_typed_error() {
        // Satellite: conflicting knob combinations must surface as
        // `PioError::UnsupportedConfig` on every rank, not as a panic or
        // a hang. Pin the exact conflicts the runtime rejects.
        let cases: &[(Opts, &str)] = &[(
            Opts {
                schedule: FragmentSchedule::Static,
                fault: FaultMode::Recover,
                ..Opts::default()
            },
            "fault recovery requires the dynamic schedule",
        )];
        for (opts, want) in cases {
            let db = small_db(opts.cap);
            let queries = sample_queries(&db, opts.n_queries);
            let sim = Sim::new(opts.nranks);
            let env = ClusterEnv::new(&sim, &opts.platform);
            let db_alias = stage_shared_db(&env.shared, &db);
            let query_path = stage_queries(&env.shared, &queries);
            let cfg = PioBlastConfig {
                platform: opts.platform.clone(),
                env: env.clone(),
                compute: ComputeModel::modeled(),
                params: SearchParams::blastp(),
                report: ReportOptions::default(),
                db_alias,
                query_path,
                output_path: "results.txt".to_string(),
                num_fragments: opts.nfrags,
                collective_output: opts.collective_output,
                local_prune: opts.local_prune,
                query_batch: opts.query_batch,
                collective_input: opts.collective_input,
                schedule: opts.schedule,
                fault: opts.fault,
                checkpoint: false,
                rank_compute: opts.rank_compute.clone(),
                threads: opts.threads,
                io: opts.io,
                service: None,
            };
            let outcome = sim.run(|ctx| run_rank(&ctx, &cfg));
            for r in outcome.outputs {
                assert_eq!(
                    r.expect_err("conflicting config must fail"),
                    PioError::UnsupportedConfig(want.to_string())
                );
            }
        }
        // Checkpointing without recovery is rejected by validate() alone.
        let sim = Sim::new(2);
        let env = ClusterEnv::new(&sim, &Platform::altix());
        let cfg = PioBlastConfig {
            platform: Platform::altix(),
            env,
            compute: ComputeModel::modeled(),
            params: SearchParams::blastp(),
            report: ReportOptions::default(),
            db_alias: "db.pal".into(),
            query_path: "queries.fa".into(),
            output_path: "results.txt".into(),
            num_fragments: None,
            collective_output: true,
            local_prune: false,
            query_batch: None,
            collective_input: false,
            schedule: FragmentSchedule::Dynamic,
            fault: FaultMode::Detect,
            checkpoint: true,
            rank_compute: None,
            threads: 1,
            io: Default::default(),
            service: None,
        };
        assert_eq!(
            cfg.validate().expect_err("checkpoint needs Recover"),
            PioError::UnsupportedConfig(
                "fragment checkpointing requires FaultMode::Recover".to_string()
            )
        );
    }

    #[test]
    fn thread_counts_are_validated_against_the_platform() {
        // Satellite: `--threads 0` and thread counts beyond the
        // platform's cores are typed errors, not panics or silent clamps.
        let mk = |platform: Platform, threads: usize| {
            let sim = Sim::new(2);
            let env = ClusterEnv::new(&sim, &platform);
            PioBlastConfig {
                platform,
                env,
                compute: ComputeModel::modeled(),
                params: SearchParams::blastp(),
                report: ReportOptions::default(),
                db_alias: "db.pal".into(),
                query_path: "queries.fa".into(),
                output_path: "results.txt".into(),
                num_fragments: None,
                collective_output: true,
                local_prune: false,
                query_batch: None,
                collective_input: false,
                schedule: FragmentSchedule::Static,
                fault: FaultMode::Off,
                checkpoint: false,
                rank_compute: None,
                threads,
                io: Default::default(),
                service: None,
            }
        };
        assert_eq!(
            mk(Platform::altix(), 0).validate().expect_err("zero slots"),
            PioError::UnsupportedConfig("--threads must be at least 1".to_string())
        );
        // Blade nodes expose four hardware threads: 8 slots oversubscribe.
        assert_eq!(
            mk(Platform::blade_cluster(), 8)
                .validate()
                .expect_err("oversubscribed"),
            PioError::UnsupportedConfig(
                "--threads exceeds the platform's cores per node".to_string()
            )
        );
        // Every in-budget count on every profile validates.
        for (platform, max) in [
            (Platform::altix(), 16),
            (Platform::blade_cluster(), 4),
            (Platform::manycore(), 64),
        ] {
            assert!(mk(platform.clone(), 1).validate().is_ok());
            assert!(mk(platform, max).validate().is_ok());
        }
    }
}
