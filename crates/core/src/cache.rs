//! The worker-side result cache.
//!
//! As local results are discovered, a pioBLAST worker formats each
//! alignment record into a memory buffer immediately — while the subject's
//! residues and defline are still in its in-memory fragment — and records
//! only metadata (ordering key, record size, defline) for the master.
//! This is the paper's §3.2: it eliminates the mpiBLAST master's
//! per-alignment sequence-data fetch entirely, and it is what makes the
//! later collective write possible (record sizes are known up front).

use std::collections::HashMap;

use blast_core::format::{self, ReportConfig};
use blast_core::search::{PreparedQueries, SearchParams, SubjectHit};
use mpiblast::wire::{MetaHit, MetaSubmission};
use seqfmt::FragmentData;

use crate::fault::PioError;

/// A worker's formatted-record cache plus the metadata to submit.
#[derive(Debug, Default)]
pub struct ResultCache {
    records: HashMap<(u32, u32), String>,
    per_query: Vec<(u32, Vec<MetaHit>)>,
}

impl ResultCache {
    /// Format and cache every hit of one searched fragment.
    ///
    /// `per_query[q]` holds query `q`'s subjects found in `fragment`.
    /// Returns the number of record bytes formatted (for cost accounting).
    /// A hit whose oid falls outside `fragment` is a protocol violation
    /// (the search produced it from *some* fragment, so a mismatch means
    /// grant bookkeeping went wrong) and fails with a typed error rather
    /// than panicking the rank.
    pub fn add_fragment(
        &mut self,
        params: &SearchParams,
        report_cfg: &ReportConfig,
        prepared: &PreparedQueries,
        fragment: &FragmentData,
        per_query: Vec<Vec<SubjectHit>>,
    ) -> Result<u64, PioError> {
        self.add_fragment_traced(params, report_cfg, prepared, fragment, per_query)
            .map(|(bytes, _, _)| bytes)
    }

    /// [`ResultCache::add_fragment`], also returning this fragment's own
    /// metadata and `(query, oid, record)` bytes — the content of a
    /// fragment checkpoint blob. Both are deterministic in the fragment
    /// and batch alone, which is what makes checkpoint rewrites during
    /// retried recovery epochs idempotent.
    #[allow(clippy::type_complexity)]
    pub fn add_fragment_traced(
        &mut self,
        params: &SearchParams,
        report_cfg: &ReportConfig,
        prepared: &PreparedQueries,
        fragment: &FragmentData,
        per_query: Vec<Vec<SubjectHit>>,
    ) -> Result<(u64, MetaSubmission, Vec<(u32, u32, String)>), PioError> {
        let mut bytes = 0u64;
        let mut frag_meta = Vec::new();
        let mut frag_records = Vec::new();
        for (q, hits) in per_query.into_iter().enumerate() {
            if hits.is_empty() {
                continue;
            }
            let query = &prepared.records[q];
            let mut metas = Vec::with_capacity(hits.len());
            for hit in hits {
                let outside = |what: &str| {
                    PioError::Protocol(format!(
                        "hit subject oid {} has no {what} in the searched fragment \
                         ({} sequences)",
                        hit.oid,
                        fragment.num_seqs()
                    ))
                };
                let defline_bytes = fragment
                    .defline_of(hit.oid)
                    .ok_or_else(|| outside("defline"))?;
                let residues = fragment
                    .residues_of(hit.oid)
                    .ok_or_else(|| outside("residues"))?;
                let defline = String::from_utf8_lossy(defline_bytes).into_owned();
                let record = format::alignment_record(
                    params,
                    report_cfg,
                    &query.residues,
                    &defline,
                    residues,
                    &hit.hsps,
                );
                bytes += record.len() as u64;
                metas.push(MetaHit {
                    oid: hit.oid,
                    subject_len: hit.subject_len,
                    record_size: record.len() as u64,
                    defline,
                    best: hit.hsps[0],
                });
                frag_records.push((q as u32, hit.oid, record.clone()));
                self.records.insert((q as u32, hit.oid), record);
            }
            frag_meta.push((q as u32, metas.clone()));
            // Merge into any existing list for this query (multiple
            // fragments per worker).
            match self.per_query.iter_mut().find(|(qi, _)| *qi == q as u32) {
                Some((_, list)) => list.extend(metas),
                None => self.per_query.push((q as u32, metas)),
            }
        }
        Ok((
            bytes,
            MetaSubmission {
                per_query: frag_meta,
            },
            frag_records,
        ))
    }

    /// The metadata submission for the master (sorted by query index).
    pub fn metadata(&self) -> MetaSubmission {
        let mut per_query = self.per_query.clone();
        per_query.sort_by_key(|(q, _)| *q);
        MetaSubmission { per_query }
    }

    /// A cached record's bytes.
    pub fn record(&self, query_idx: u32, oid: u32) -> Option<&str> {
        self.records.get(&(query_idx, oid)).map(|s| s.as_str())
    }

    /// Look up every master-assigned `(query, oid, offset)` record for an
    /// output flush, or report the first `(query, oid)` that is missing
    /// from the cache.
    pub fn assigned_records(
        &self,
        assignments: &[(u32, u32, u64)],
    ) -> Result<Vec<(u64, &str)>, (u32, u32)> {
        assignments
            .iter()
            .map(|&(q, oid, off)| self.record(q, oid).map(|r| (off, r)).ok_or((q, oid)))
            .collect()
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cached bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.values().map(|r| r.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::search::{BlastSearcher, SearchScratch};
    use blast_core::seq::SeqRecord;
    use blast_core::Molecule;
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};

    fn setup() -> (SearchParams, ReportConfig, PreparedQueries, FragmentData) {
        let recs = generate(&SynthConfig::nr_like(33, 20_000));
        let db = format_records(&recs, &FormatDbConfig::protein("cache-test"));
        let frag = FragmentData::from_volume(&db.volumes[0]);
        use blast_core::search::SubjectSource;
        let q = frag.subject(0);
        let queries = vec![SeqRecord {
            defline: "query_0 sampled".into(),
            residues: q.residues.to_vec(),
            molecule: Molecule::Protein,
        }];
        let params = SearchParams::blastp();
        let prepared = PreparedQueries::prepare(&params, queries, db.stats());
        let report_cfg = ReportConfig::blastp("cache-test", db.stats());
        (params, report_cfg, prepared, frag)
    }

    #[test]
    fn cache_holds_formatted_records_with_exact_sizes() {
        let (params, cfg, prepared, frag) = setup();
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(&frag, &mut SearchScratch::new());
        let mut cache = ResultCache::default();
        let bytes = cache
            .add_fragment(&params, &cfg, &prepared, &frag, result.per_query.clone())
            .expect("hits resolve in their own fragment");
        assert!(!cache.is_empty());
        assert_eq!(bytes, cache.total_bytes());
        let meta = cache.metadata();
        assert_eq!(meta.per_query.len(), 1);
        for (q, hits) in &meta.per_query {
            for h in hits {
                let rec = cache.record(*q, h.oid).expect("cached record");
                assert_eq!(rec.len() as u64, h.record_size);
                assert!(rec.starts_with('>'), "record starts with defline");
                assert!(rec.contains("Score ="));
            }
        }
    }

    #[test]
    fn metadata_best_hsp_matches_search_order() {
        let (params, cfg, prepared, frag) = setup();
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(&frag, &mut SearchScratch::new());
        let best_score = result.per_query[0][0].hsps[0].score;
        let mut cache = ResultCache::default();
        cache
            .add_fragment(&params, &cfg, &prepared, &frag, result.per_query)
            .expect("hits resolve in their own fragment");
        let meta = cache.metadata();
        let max_meta = meta.per_query[0]
            .1
            .iter()
            .map(|h| h.best.score)
            .max()
            .unwrap();
        assert_eq!(max_meta, best_score);
    }

    #[test]
    fn missing_record_is_none() {
        let cache = ResultCache::default();
        assert!(cache.record(0, 42).is_none());
        assert_eq!(cache.metadata().per_query.len(), 0);
    }

    #[test]
    fn hit_outside_fragment_is_a_typed_error_not_a_panic() {
        let (params, cfg, prepared, frag) = setup();
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(&frag, &mut SearchScratch::new());
        // Forge a hit whose oid lies past the fragment's last sequence —
        // the shape a corrupted grant or a stale resident fragment would
        // produce.
        let mut forged = result.per_query.clone();
        let mut bogus = forged[0][0].clone();
        bogus.oid = frag.num_seqs() as u32 + 7;
        forged[0].push(bogus);
        let mut cache = ResultCache::default();
        let err = cache
            .add_fragment(&params, &cfg, &prepared, &frag, forged)
            .expect_err("out-of-fragment oid must fail");
        match err {
            PioError::Protocol(msg) => assert!(msg.contains("no defline"), "{msg}"),
            other => panic!("wrong error kind: {other:?}"),
        }
    }
}
