//! Master-side metadata merging, global selection, and output layout.
//!
//! The master never touches sequence data or record bytes: it merges the
//! workers' metadata, picks the global output set, renders only the
//! per-query headers/summaries/footers (whose content is metadata), and
//! assigns an absolute file offset to every selected record. Workers then
//! write their own cached records at those offsets collectively.

use blast_core::format::ReportConfig;
use blast_core::search::{PreparedQueries, SearchParams};
use mpiblast::report::{build_layout, order_meta, ReportOptions};
use mpiblast::wire::{MetaHit, MetaSubmission, OffsetAssignment};

/// The result of merging all workers' metadata.
#[derive(Debug, Clone, Default)]
pub struct MergeOutcome {
    /// Per-rank offset assignments (index = rank; the master's entry is
    /// always empty).
    pub per_rank: Vec<OffsetAssignment>,
    /// The master's own file regions: `(absolute offset, text)` for each
    /// query's header+summary block and footer.
    pub master_sections: Vec<(u64, String)>,
    /// Total output-file size.
    pub total_bytes: u64,
    /// Items that passed through the merge (cost accounting).
    pub merged_items: u64,
}

/// Merge `subs[rank]` (one [`MetaSubmission`] per rank, the master's
/// empty) into the global output layout, starting at file offset
/// `start_offset` (non-zero when the run processes queries in batches:
/// each batch's sections append after the previous batch's).
pub fn merge_and_layout(
    report_cfg: &ReportConfig,
    params: &SearchParams,
    prepared: &PreparedQueries,
    subs: &[MetaSubmission],
    opts: ReportOptions,
    start_offset: u64,
) -> MergeOutcome {
    let nranks = subs.len();
    let mut out = MergeOutcome {
        per_rank: vec![OffsetAssignment::default(); nranks],
        ..Default::default()
    };

    // Regroup metadata per query, remembering each hit's owner rank.
    let mut per_query: Vec<Vec<(MetaHit, usize)>> = vec![Vec::new(); prepared.len()];
    for (rank, sub) in subs.iter().enumerate() {
        for (q, hits) in &sub.per_query {
            for h in hits {
                per_query[*q as usize].push((h.clone(), rank));
            }
        }
    }

    let mut section_start = start_offset;
    for (q, mut hits) in per_query.into_iter().enumerate() {
        out.merged_items += hits.len() as u64;
        // order_meta's key, applied through the (hit, owner) pair.
        {
            let mut keyed: Vec<MetaHit> = hits.iter().map(|(h, _)| h.clone()).collect();
            order_meta(&mut keyed);
            // Sort the paired list with the same comparison.
            hits.sort_by_key(|a| a.0.best.rank_key());
            debug_assert!(keyed
                .iter()
                .zip(&hits)
                .all(|(k, (h, _))| k.oid == h.oid && k.best == h.best));
        }
        let n_desc = hits.len().min(opts.num_descriptions);
        let n_rec = hits.len().min(opts.num_alignments);
        let summaries: Vec<(String, f64, f64)> = hits
            .iter()
            .take(n_desc)
            .map(|(h, _)| (h.defline.clone(), h.best.bit_score, h.best.evalue))
            .collect();
        let layout = build_layout(
            report_cfg,
            params,
            &prepared.records[q],
            &prepared.spaces[q],
            &summaries,
            hits.iter()
                .take(n_rec)
                .map(|(h, _)| h.record_size)
                .collect(),
        );
        for (i, (h, owner)) in hits.iter().take(n_rec).enumerate() {
            out.per_rank[*owner].records.push((
                q as u32,
                h.oid,
                layout.record_offset(section_start, i),
            ));
        }
        let mut head = layout.header.clone();
        head.push_str(&layout.summary);
        out.master_sections.push((section_start, head));
        let footer_off = section_start + layout.total() - layout.footer.len() as u64;
        out.master_sections
            .push((footer_off, layout.footer.clone()));
        section_start += layout.total();
    }
    out.total_bytes = section_start - start_offset;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::hsp::Hsp;
    use blast_core::seq::SeqRecord;
    use blast_core::stats::DbStats;
    use blast_core::Molecule;

    fn meta(oid: u32, score: i32, size: u64) -> MetaHit {
        MetaHit {
            oid,
            subject_len: 100,
            record_size: size,
            defline: format!("gi|{oid}| subject"),
            best: Hsp {
                query_idx: 0,
                oid,
                q_start: 0,
                q_end: 10,
                s_start: 0,
                s_end: 10,
                score,
                bit_score: score as f64,
                evalue: (-(score as f64)).exp(),
            },
        }
    }

    fn prepared() -> (SearchParams, PreparedQueries, ReportConfig) {
        let params = SearchParams::blastp();
        let stats = DbStats {
            num_sequences: 100,
            total_residues: 50_000,
        };
        let queries = vec![SeqRecord {
            defline: "q0".into(),
            residues: vec![0u8; 60],
            molecule: Molecule::Protein,
        }];
        let prepared = PreparedQueries::prepare(&params, queries, stats);
        let cfg = ReportConfig::blastp("mdb", stats);
        (params, prepared, cfg)
    }

    #[test]
    fn records_are_placed_in_score_order_without_overlap() {
        let (params, prepared, cfg) = prepared();
        // Worker 1 has oids 10 (score 50) and 11 (score 90); worker 2 has
        // oid 20 (score 70).
        let subs = vec![
            MetaSubmission::default(),
            MetaSubmission {
                per_query: vec![(0, vec![meta(10, 50, 100), meta(11, 90, 200)])],
            },
            MetaSubmission {
                per_query: vec![(0, vec![meta(20, 70, 300)])],
            },
        ];
        let out = merge_and_layout(&cfg, &params, &prepared, &subs, ReportOptions::default(), 0);
        assert_eq!(out.merged_items, 3);
        // Worker 1 owns two records, worker 2 one; rank 0 none.
        assert!(out.per_rank[0].records.is_empty());
        assert_eq!(out.per_rank[1].records.len(), 2);
        assert_eq!(out.per_rank[2].records.len(), 1);
        // File order: 11 (90), 20 (70), 10 (50) — offsets must chain with
        // the record sizes 200, 300, 100 after the header+summary block.
        let (_, _, off11) = out.per_rank[1].records[0];
        let (_, _, off10) = out.per_rank[1].records[1];
        let (_, _, off20) = out.per_rank[2].records[0];
        assert_eq!(off20, off11 + 200);
        assert_eq!(off10, off20 + 300);
        // Master's header+summary block starts at 0 and footer follows the
        // last record.
        assert_eq!(out.master_sections[0].0, 0);
        assert_eq!(out.master_sections[1].0, off10 + 100);
        assert_eq!(
            out.total_bytes,
            out.master_sections[1].0 + out.master_sections[1].1.len() as u64
        );
    }

    #[test]
    fn num_alignments_limits_records_but_not_summaries() {
        let (params, prepared, cfg) = prepared();
        let subs = vec![
            MetaSubmission::default(),
            MetaSubmission {
                per_query: vec![(0, vec![meta(1, 90, 10), meta(2, 80, 10), meta(3, 70, 10)])],
            },
        ];
        let opts = ReportOptions {
            num_descriptions: 3,
            num_alignments: 1,
        };
        let out = merge_and_layout(&cfg, &params, &prepared, &subs, opts, 0);
        assert_eq!(out.per_rank[1].records.len(), 1);
        assert_eq!(out.per_rank[1].records[0].1, 1, "best oid kept");
        // All three appear in the summary text.
        assert!(out.master_sections[0].1.contains("gi|1|"));
        assert!(out.master_sections[0].1.contains("gi|3|"));
    }

    #[test]
    fn no_hits_query_still_gets_sections() {
        let (params, prepared, cfg) = prepared();
        let subs = vec![MetaSubmission::default(), MetaSubmission::default()];
        let out = merge_and_layout(&cfg, &params, &prepared, &subs, ReportOptions::default(), 0);
        assert_eq!(out.master_sections.len(), 2);
        assert!(out.master_sections[0].1.contains("No hits found"));
        assert!(out.total_bytes > 0);
        assert!(out.per_rank.iter().all(|a| a.records.is_empty()));
    }
}
