//! Query-stream service mode: the long-lived BLAST-as-a-service
//! scenario the paper's one-shot runs amortize into.
//!
//! A [`QueryStreamPlan`] is a seeded, deterministic simulation of N
//! users submitting query batches over virtual time. `pioblast serve`
//! feeds the plan into an admission layer on the master: each stream
//! batch becomes one distribute → collect → write cycle of the same
//! runtime state machines, with every fragment re-granted per batch.
//! What makes the stream cheaper than B independent one-shot runs:
//!
//! * workers keep a bounded resident [`FragmentStore`] (LRU by bytes),
//!   so a re-granted fragment whose data is already resident skips the
//!   parafs read entirely and records a `cache.hit` trace instant;
//! * the master's grant queue prefers fragments a worker already holds
//!   (`GrantQueue::grant_to_preferring`), falling back to front-of-queue
//!   work stealing so load balance and Recover-mode requeues still win
//!   over affinity;
//! * the next batch's queries are shipped to workers while the current
//!   batch is still searching, so admission overlaps compute.
//!
//! Each stream batch's report is written to `<output>.q<batch>` and is
//! byte-identical to running that batch as its own one-shot job — the
//! property `tests/service.rs` pins down.

use seqfmt::FragmentData;
use tracelog::{ArgVal, EventKind, Trace};

use crate::fault::PioError;

/// One user's query batch in the stream: who submitted, when, and how
/// many queries of the run's query file it consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBatch {
    /// Submitting user id (`0..users`).
    pub user: u32,
    /// Virtual arrival time, nanoseconds since run start. The master
    /// admits the batch no earlier than this.
    pub arrival_ns: u64,
    /// Queries consumed from the query file, in file order.
    pub nqueries: usize,
}

/// A deterministic, seeded stream of query batches (arrival-ordered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStreamPlan {
    /// The batches, sorted by arrival time.
    pub batches: Vec<StreamBatch>,
}

/// splitmix64: the plan generator's only randomness source — tiny,
/// seedable, and identical everywhere, so a `(seed, shape)` pair names
/// exactly one plan.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl QueryStreamPlan {
    /// Generate a plan: `nbatches` batches from `users` users, jointly
    /// consuming `total_queries` queries, with seeded inter-arrival gaps
    /// averaging `mean_gap_ns`. Deterministic in its arguments. Batch
    /// sizes start from an even split and are jittered (never to zero
    /// while `total_queries >= nbatches`); the first batch arrives at
    /// time zero.
    pub fn generate(
        users: u32,
        nbatches: usize,
        total_queries: usize,
        mean_gap_ns: u64,
        seed: u64,
    ) -> QueryStreamPlan {
        assert!(users >= 1, "a stream needs at least one user");
        assert!(nbatches >= 1, "a stream needs at least one batch");
        let mut rng = seed ^ 0x5157_5354_5245_414D; // "QWSTREAM"
                                                    // Even contiguous split, then a seeded transfer between
                                                    // neighbours for size variety (bounded so no batch empties).
        let mut sizes: Vec<usize> = (0..nbatches)
            .map(|b| total_queries * (b + 1) / nbatches - total_queries * b / nbatches)
            .collect();
        for b in 0..nbatches.saturating_sub(1) {
            let movable = sizes[b].saturating_sub(1);
            let t = (splitmix64(&mut rng) as usize) % (movable / 2 + 1);
            sizes[b] -= t;
            sizes[b + 1] += t;
        }
        let mut arrival = 0u64;
        let batches = sizes
            .into_iter()
            .enumerate()
            .map(|(b, nqueries)| {
                let user = (splitmix64(&mut rng) % users as u64) as u32;
                if b > 0 {
                    // Uniform on [mean/2, 3*mean/2): mean-preserving,
                    // never zero for a nonzero mean.
                    let gap = mean_gap_ns / 2 + splitmix64(&mut rng) % mean_gap_ns.max(1);
                    arrival += gap;
                }
                StreamBatch {
                    user,
                    arrival_ns: arrival,
                    nqueries,
                }
            })
            .collect();
        QueryStreamPlan { batches }
    }

    /// Total queries the plan consumes.
    pub fn total_queries(&self) -> usize {
        self.batches.iter().map(|b| b.nqueries).sum()
    }

    /// Split a query set into the plan's per-batch slices, consuming the
    /// set in file order. The plan must consume the set exactly —
    /// anything else means the plan was generated for a different query
    /// file, which is a typed error, not a truncation.
    pub fn partition<T: Clone>(&self, queries: &[T]) -> Result<Vec<Vec<T>>, PioError> {
        if self.total_queries() != queries.len() {
            return Err(PioError::Protocol(format!(
                "stream plan consumes {} queries but the query set has {}",
                self.total_queries(),
                queries.len()
            )));
        }
        let mut at = 0usize;
        Ok(self
            .batches
            .iter()
            .map(|b| {
                let slice = queries[at..at + b.nqueries].to_vec();
                at += b.nqueries;
                slice
            })
            .collect())
    }
}

/// Service-mode knobs carried on the run configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// The query stream to serve.
    pub plan: QueryStreamPlan,
    /// Per-worker resident fragment store capacity in bytes
    /// (`--resident-mb`); 0 disables cross-batch residency entirely.
    pub resident_bytes: u64,
    /// Affinity-aware grants (`--affinity`): prefer re-granting a
    /// fragment to the worker that last held it.
    pub affinity: bool,
}

/// A worker's bounded resident fragment store: fragments kept in memory
/// across stream batches, evicted least-recently-used by data bytes.
///
/// `take` removes the entry (the caller searches it, then `insert`s it
/// back, which refreshes recency); eviction happens on insert, oldest
/// first, until the store fits its byte cap. A fragment larger than the
/// whole cap is evicted immediately — a zero cap therefore retains
/// nothing, which is the affinity-off baseline.
#[derive(Debug, Default)]
pub struct FragmentStore {
    cap_bytes: u64,
    bytes: u64,
    /// Front = least recently used, back = most recently used.
    entries: Vec<(usize, FragmentData)>,
}

impl FragmentStore {
    /// An empty store capped at `cap_bytes`.
    pub fn new(cap_bytes: u64) -> FragmentStore {
        FragmentStore {
            cap_bytes,
            bytes: 0,
            entries: Vec::new(),
        }
    }

    /// Is fragment `id` resident?
    pub fn contains(&self, id: usize) -> bool {
        self.entries.iter().any(|(f, _)| *f == id)
    }

    /// Resident fragment ids, least recently used first.
    pub fn resident_ids(&self) -> Vec<usize> {
        self.entries.iter().map(|(f, _)| *f).collect()
    }

    /// Remove and return fragment `id`'s data, if resident.
    pub fn take(&mut self, id: usize) -> Option<FragmentData> {
        let pos = self.entries.iter().position(|(f, _)| *f == id)?;
        let (_, frag) = self.entries.remove(pos);
        self.bytes -= frag.data_bytes();
        Some(frag)
    }

    /// Insert (or refresh) fragment `id` as most recently used, then
    /// evict LRU-first until the store fits its cap. Returns the evicted
    /// fragment ids (which may include `id` itself when it alone
    /// exceeds the cap).
    pub fn insert(&mut self, id: usize, frag: FragmentData) -> Vec<usize> {
        if let Some(pos) = self.entries.iter().position(|(f, _)| *f == id) {
            let (_, old) = self.entries.remove(pos);
            self.bytes -= old.data_bytes();
        }
        self.bytes += frag.data_bytes();
        self.entries.push((id, frag));
        let mut evicted = Vec::new();
        while self.bytes > self.cap_bytes && !self.entries.is_empty() {
            let (f, old) = self.entries.remove(0);
            self.bytes -= old.data_bytes();
            evicted.push(f);
        }
        evicted
    }

    /// Resident data bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Resident fragment count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Service-level metrics derived from a run's merged trace: throughput,
/// per-query (per stream batch) latency percentiles, and the resident
/// store's hit rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Completed stream batches (one "query" each, in the service sense).
    pub queries: usize,
    /// Virtual wall clock of the run, seconds.
    pub wall_s: f64,
    /// Completed stream batches per virtual second.
    pub queries_per_sec: f64,
    /// Median admission-to-seal latency, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile admission-to-seal latency, seconds.
    pub p99_latency_s: f64,
    /// Fragment grants served from the resident store.
    pub cache_hits: u64,
    /// Fragment grants that had to read from the file system.
    pub cache_misses: u64,
}

impl ServiceMetrics {
    /// Derive metrics from a merged trace: `service.done` instants carry
    /// each stream batch's latency; `cache.hit`/`cache.miss` instants
    /// tally the resident store.
    pub fn from_trace(trace: &Trace) -> ServiceMetrics {
        let mut latencies_ns: Vec<u64> = Vec::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for e in &trace.events {
            if e.kind != EventKind::Instant {
                continue;
            }
            match &*e.name {
                "service.done" => {
                    let lat = e
                        .args
                        .iter()
                        .find(|(k, _)| *k == "latency_ns")
                        .and_then(|(_, v)| match v {
                            ArgVal::U64(n) => Some(*n),
                            ArgVal::Str(_) => None,
                        })
                        .unwrap_or(0);
                    latencies_ns.push(lat);
                }
                "cache.hit" => hits += 1,
                "cache.miss" => misses += 1,
                _ => {}
            }
        }
        latencies_ns.sort_unstable();
        let pct = |q: f64| -> f64 {
            if latencies_ns.is_empty() {
                return 0.0;
            }
            let idx = ((latencies_ns.len() - 1) as f64 * q).round() as usize;
            latencies_ns[idx] as f64 / 1e9
        };
        let wall_s = trace.wall as f64 / 1e9;
        let queries = latencies_ns.len();
        ServiceMetrics {
            queries,
            wall_s,
            queries_per_sec: if wall_s > 0.0 {
                queries as f64 / wall_s
            } else {
                0.0
            },
            p50_latency_s: pct(0.50),
            p99_latency_s: pct(0.99),
            cache_hits: hits,
            cache_misses: misses,
        }
    }

    /// Resident-store hit rate over all fragment grants (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfmt::formatdb::{format_records, FormatDbConfig};
    use seqfmt::synth::{generate, SynthConfig};

    fn frags(n: usize) -> Vec<FragmentData> {
        let recs = generate(&SynthConfig::nr_like(4 * n as u64, 2_000 * n as u64));
        let db = format_records(&recs, &FormatDbConfig::protein("store-test"));
        let index_refs = vec![&db.volumes[0].index];
        seqfmt::virtual_fragments(&index_refs, n)
            .into_iter()
            .map(|spec| FragmentData::from_volume_slice(&db.volumes[0], &spec))
            .collect()
    }

    #[test]
    fn plans_are_deterministic_and_partition_exactly() {
        let a = QueryStreamPlan::generate(3, 8, 40, 1_000_000, 42);
        let b = QueryStreamPlan::generate(3, 8, 40, 1_000_000, 42);
        assert_eq!(a, b, "same seed, same plan");
        let c = QueryStreamPlan::generate(3, 8, 40, 1_000_000, 43);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.total_queries(), 40);
        assert_eq!(a.batches[0].arrival_ns, 0);
        for w in a.batches.windows(2) {
            assert!(w[0].arrival_ns < w[1].arrival_ns, "arrivals ascend");
        }
        for batch in &a.batches {
            assert!(batch.nqueries >= 1, "jitter never empties a batch");
            assert!(batch.user < 3);
        }
        let queries: Vec<usize> = (0..40).collect();
        let parts = a.partition(&queries).unwrap();
        assert_eq!(parts.len(), 8);
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, queries, "partition consumes the set in order");
        // Wrong-size query sets are a typed error.
        assert!(matches!(
            a.partition(&queries[..39]),
            Err(PioError::Protocol(_))
        ));
    }

    #[test]
    fn store_evicts_least_recently_used_by_bytes() {
        let data = frags(4);
        let one = data[0].data_bytes();
        // Every synthetic fragment is within ~2x of its siblings; cap
        // the store at two median fragments.
        let cap: u64 = data.iter().map(|f| f.data_bytes()).sum::<u64>() / 2;
        let mut store = FragmentStore::new(cap);
        assert!(store.is_empty());
        let mut evicted_total = Vec::new();
        for (i, f) in data.iter().enumerate() {
            evicted_total.extend(store.insert(i, f.clone()));
        }
        assert!(store.bytes() <= cap);
        assert!(!store.contains(evicted_total[0]), "evictions left");
        // The most recent insert survives.
        assert!(store.contains(3));
        // take removes; re-insert refreshes recency.
        let f3 = store.take(3).expect("resident");
        assert!(!store.contains(3));
        store.insert(3, f3);
        let ids = store.resident_ids();
        assert_eq!(*ids.last().unwrap(), 3, "re-insert is most recent");
        // Eviction order is LRU-first: fill until something evicts and
        // check it was the front entry.
        let before = store.resident_ids();
        let evicted = store.insert(0, data[0].clone());
        for e in &evicted {
            assert!(
                before.first() == Some(e) || !before.contains(e) || *e == 0,
                "evicted {e} was not the LRU of {before:?}"
            );
        }
        // A zero-cap store retains nothing.
        let mut none = FragmentStore::new(0);
        let evicted = none.insert(7, data[1].clone());
        assert_eq!(evicted, vec![7]);
        assert!(none.is_empty());
        assert_eq!(none.bytes(), 0);
        let _ = one;
    }

    #[test]
    fn metrics_read_service_and_cache_instants() {
        use std::borrow::Cow;
        use tracelog::{Event, Lane};
        let mk = |t: u64, name: &'static str, args: Vec<(&'static str, ArgVal)>| Event {
            t,
            rank: 0,
            seq: t,
            lane: Lane::Runtime,
            kind: EventKind::Instant,
            name: Cow::Borrowed(name),
            args,
        };
        let trace = Trace {
            nranks: 2,
            wall: 4_000_000_000,
            events: vec![
                mk(
                    1_000,
                    "service.done",
                    vec![
                        ("query", 0u64.into()),
                        ("latency_ns", 1_000_000_000u64.into()),
                    ],
                ),
                mk(
                    2_000,
                    "service.done",
                    vec![
                        ("query", 1u64.into()),
                        ("latency_ns", 3_000_000_000u64.into()),
                    ],
                ),
                mk(10, "cache.hit", Vec::new()),
                mk(11, "cache.hit", Vec::new()),
                mk(12, "cache.hit", Vec::new()),
                mk(13, "cache.miss", Vec::new()),
            ],
            dropped: 0,
        };
        let m = ServiceMetrics::from_trace(&trace);
        assert_eq!(m.queries, 2);
        assert_eq!(m.cache_hits, 3);
        assert_eq!(m.cache_misses, 1);
        assert!((m.hit_rate() - 0.75).abs() < 1e-9);
        assert!((m.queries_per_sec - 0.5).abs() < 1e-9);
        assert!((m.p50_latency_s - 1.0).abs() < 1e-9 || (m.p50_latency_s - 3.0).abs() < 1e-9);
        assert!((m.p99_latency_s - 3.0).abs() < 1e-9);
    }
}
