//! # pioblast
//!
//! The paper's contribution: **pioBLAST**, a parallel BLAST with
//! efficient data access (Lin, Ma, Chandramohan, Geist, Samatova,
//! IPPS 2005), rebuilt from scratch on a simulated cluster.
//!
//! Four optimizations over the mpiBLAST baseline (the `mpiblast` crate):
//!
//! 1. **Dynamic virtual partitioning** — the master computes
//!    `(start offset, end offset)` byte ranges over the shared formatted
//!    database's index, sequence and header files; no physical fragments
//!    are ever created, and any worker count works against one database
//!    ([`proto`], `seqfmt::virtual_fragments`).
//! 2. **Parallel input** — each worker reads exactly its ranges with
//!    MPI-IO-style ranged reads and searches in-memory buffers, removing
//!    both the copy stage and the I/O embedded in the search kernel.
//! 3. **Result caching** — workers format alignment records the moment
//!    results are found, while the subject data is at hand, and keep the
//!    bytes locally ([`cache`]).
//! 4. **Metadata-only merging + collective output** — the master merges
//!    scores and sizes, assigns absolute file offsets ([`merge`]), and
//!    all ranks emit the report with one two-phase collective write
//!    (`mpiio`), the master contributing headers/summaries/footers.
//!
//! Given the same queries and database, the serial reference
//! (`mpiblast::report::serial_report`), mpiBLAST, and pioBLAST produce
//! byte-identical output — the property the test suites of both app
//! crates pin down.
//!
//! Use [`app::run_rank`] as the rank body of a `simcluster::Sim`; see the
//! `examples/` directory at the workspace root.

#![warn(missing_docs)]

pub mod app;
pub mod cache;
pub mod fault;
pub mod input;
pub mod merge;
pub mod proto;
pub mod runtime;
pub mod service;

pub use app::{run_rank, FragmentSchedule, PioBlastConfig};
pub use cache::ResultCache;
pub use fault::{FaultMode, PioError};
pub use input::InputError;
pub use merge::{merge_and_layout, MergeOutcome};
pub use service::{FragmentStore, QueryStreamPlan, ServiceMetrics, ServiceOptions, StreamBatch};

// Re-export the pieces callers need to assemble a run.
pub use mpiblast::{phases, ClusterEnv, ComputeModel, Platform, RankReport, ReportOptions};
pub use mpiio::{IoOptions, IoStrategy};
