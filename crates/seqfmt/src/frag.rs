//! Database fragmentation.
//!
//! Two flavors, matching the paper's two systems:
//!
//! * [`virtual_fragments`] — pioBLAST's *dynamic* partitioning: compute,
//!   from volume indexes alone, the `(start offset, end offset)` byte
//!   ranges that each worker should read from the shared `.seq`/`.hdr`/
//!   `.idx` files. No new files are created; any worker count works
//!   against the same formatted database.
//! * [`physical_fragments`] — mpiBLAST's `mpiformatdb` behaviour: re-emit
//!   the database as `n` separate small volumes ("fragments"), which must
//!   be created before a run and copied around during it.

use blast_core::stats::DbStats;

use crate::formatdb::FormattedDb;
use crate::volume::{EncodedVolume, VolumeIndex};

/// A virtual fragment: byte ranges into one volume's files.
///
/// All ranges are half-open `[start, end)`. The index ranges cover
/// `num_seqs + 1` table entries, so the reader can rebase offsets without
/// any other information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentSpec {
    /// Which volume (index into the database's volume list).
    pub volume: usize,
    /// First sequence (local index within the volume).
    pub first_seq: u64,
    /// One past the last sequence (local index).
    pub last_seq: u64,
    /// Global ordinal id of `first_seq`.
    pub base_oid: u64,
    /// Byte range in the volume's `.seq` file.
    pub seq_range: (u64, u64),
    /// Byte range in the volume's `.hdr` file.
    pub hdr_range: (u64, u64),
    /// Byte range of the sequence-offset table slice in `.idx`
    /// (covers entries `first_seq ..= last_seq`).
    pub idx_seq_range: (u64, u64),
    /// Byte range of the header-offset table slice in `.idx`.
    pub idx_hdr_range: (u64, u64),
    /// Residues in this fragment.
    pub residues: u64,
}

impl FragmentSpec {
    /// Number of sequences in the fragment.
    pub fn num_seqs(&self) -> u64 {
        self.last_seq - self.first_seq
    }

    /// Total bytes a worker reads to load this fragment (seq + hdr + both
    /// index slices) — the paper's parallel-input volume.
    pub fn input_bytes(&self) -> u64 {
        (self.seq_range.1 - self.seq_range.0)
            + (self.hdr_range.1 - self.hdr_range.0)
            + (self.idx_seq_range.1 - self.idx_seq_range.0)
            + (self.idx_hdr_range.1 - self.idx_hdr_range.0)
    }
}

/// Compute up to `n` virtual fragments over a set of volume indexes,
/// balanced by residue count. Fragments never span volumes; when `n` is
/// smaller than the volume count, every volume still gets at least one
/// fragment (so the result may exceed `n` in that degenerate case), and
/// when sequences are scarce the result may have fewer than `n` fragments.
pub fn virtual_fragments(indexes: &[&VolumeIndex], n: usize) -> Vec<FragmentSpec> {
    let n = n.max(1);
    let total_residues: u64 = indexes.iter().map(|i| i.volume_stats.total_residues).sum();
    let mut out = Vec::with_capacity(n);

    // Assign fragment counts to volumes proportionally to residues
    // (largest-remainder), with at least one per non-empty volume.
    let mut assigned: Vec<usize> = vec![0; indexes.len()];
    if total_residues == 0 {
        for (vi, idx) in indexes.iter().enumerate() {
            if idx.num_seqs() > 0 {
                assigned[vi] = 1;
            }
        }
    } else {
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(indexes.len());
        let mut used = 0usize;
        for (vi, idx) in indexes.iter().enumerate() {
            let share = n as f64 * idx.volume_stats.total_residues as f64 / total_residues as f64;
            let base = share.floor() as usize;
            let at_least = usize::from(idx.num_seqs() > 0);
            assigned[vi] = base.max(at_least);
            used += assigned[vi];
            remainders.push((vi, share - base as f64));
        }
        // Distribute any remaining fragments by largest remainder.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut left = n.saturating_sub(used);
        for &(vi, _) in &remainders {
            if left == 0 {
                break;
            }
            if indexes[vi].num_seqs() > 0 {
                assigned[vi] += 1;
                left -= 1;
            }
        }
    }

    for (vi, idx) in indexes.iter().enumerate() {
        if assigned[vi] > 0 {
            partition_volume(vi, idx, assigned[vi], &mut out);
        }
    }
    out
}

/// Split one volume into up to `k` residue-balanced fragments.
fn partition_volume(vi: usize, idx: &VolumeIndex, k: usize, out: &mut Vec<FragmentSpec>) {
    let num_seqs = idx.num_seqs() as u64;
    if num_seqs == 0 {
        return;
    }
    let k = (k as u64).min(num_seqs);
    let total = idx.volume_stats.total_residues;
    let mut first = 0u64;
    for part in 0..k {
        // Cut where cumulative residues reach the proportional target, but
        // always leave enough sequences for the remaining parts.
        let target = total.saturating_mul(part + 1) / k;
        let mut last = if part + 1 == k {
            num_seqs
        } else {
            // seq_offsets is nondecreasing: binary search the cut point.
            let cut = idx
                .seq_offsets
                .partition_point(|&o| o < target)
                .max(first as usize + 1) as u64;
            cut.min(num_seqs - (k - part - 1))
        };
        if last < first + 1 {
            last = first + 1;
        }
        out.push(make_spec(vi, idx, first, last));
        first = last;
    }
}

/// Build the byte ranges for sequences `[first, last)` of a volume.
pub fn make_spec(vi: usize, idx: &VolumeIndex, first: u64, last: u64) -> FragmentSpec {
    debug_assert!(first <= last && last <= idx.num_seqs() as u64);
    let seq_lo = idx.seq_offsets[first as usize];
    let seq_hi = idx.seq_offsets[last as usize];
    let hdr_lo = idx.hdr_offsets[first as usize];
    let hdr_hi = idx.hdr_offsets[last as usize];
    let st = idx.seq_table_start();
    let ht = idx.hdr_table_start();
    FragmentSpec {
        volume: vi,
        first_seq: first,
        last_seq: last,
        base_oid: idx.base_oid + first,
        seq_range: (seq_lo, seq_hi),
        hdr_range: (hdr_lo, hdr_hi),
        idx_seq_range: (st + 8 * first, st + 8 * (last + 1)),
        idx_hdr_range: (ht + 8 * first, ht + 8 * (last + 1)),
        residues: seq_hi - seq_lo,
    }
}

/// mpiBLAST's `mpiformatdb`: rewrite a formatted database as `n` physical
/// fragment volumes (each a standalone single-volume database carrying the
/// *global* statistics, exactly like mpiBLAST fragments do).
///
/// Like `mpiformatdb`, the requested count is not always achievable; the
/// actual count is `min(n, total sequences)` (the paper hits this: they
/// asked for 63 fragments and got 61).
pub fn physical_fragments(db: &FormattedDb, n: usize) -> Vec<EncodedVolume> {
    let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
    let specs = virtual_fragments(&indexes, n);
    let mut out = Vec::with_capacity(specs.len());
    for (fi, spec) in specs.iter().enumerate() {
        let vol = &db.volumes[spec.volume];
        let (slo, shi) = (spec.seq_range.0 as usize, spec.seq_range.1 as usize);
        let (hlo, hhi) = (spec.hdr_range.0 as usize, spec.hdr_range.1 as usize);
        let first = spec.first_seq as usize;
        let last = spec.last_seq as usize;
        let seq_offsets: Vec<u64> = vol.index.seq_offsets[first..=last]
            .iter()
            .map(|&o| o - spec.seq_range.0)
            .collect();
        let hdr_offsets: Vec<u64> = vol.index.hdr_offsets[first..=last]
            .iter()
            .map(|&o| o - spec.hdr_range.0)
            .collect();
        let index = VolumeIndex {
            molecule: vol.index.molecule,
            title: vol.index.title.clone(),
            base_oid: spec.base_oid,
            volume_stats: DbStats {
                num_sequences: spec.num_seqs(),
                total_residues: spec.residues,
            },
            global_stats: vol.index.global_stats,
            seq_offsets,
            hdr_offsets,
        };
        out.push(EncodedVolume {
            name: format!("{}.frag{:03}", db.alias.title, fi),
            idx: index.encode(),
            seq: vol.seq[slo..shi].to_vec(),
            hdr: vol.hdr[hlo..hhi].to_vec(),
            index,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formatdb::{format_records, FormatDbConfig};
    use blast_core::alphabet::Molecule;
    use blast_core::seq::SeqRecord;

    fn make_db(lens: &[usize]) -> FormattedDb {
        let recs: Vec<SeqRecord> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| SeqRecord {
                defline: format!("gi|{i}| seq {i}"),
                residues: vec![(i % 20) as u8; len],
                molecule: Molecule::Protein,
            })
            .collect();
        format_records(&recs, &FormatDbConfig::protein("t"))
    }

    fn check_partition(db: &FormattedDb, specs: &[FragmentSpec]) {
        // Fragments cover every sequence exactly once, in order.
        let mut oid = 0u64;
        for s in specs {
            assert_eq!(s.base_oid, oid, "fragments must chain");
            assert!(s.last_seq > s.first_seq, "no empty fragments");
            oid += s.num_seqs();
        }
        assert_eq!(oid, db.stats().num_sequences);
    }

    #[test]
    fn fragments_partition_the_database() {
        let db = make_db(&[10, 20, 30, 40, 50, 60, 10, 20, 30, 40]);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        for n in [1, 2, 3, 4, 7, 10] {
            let specs = virtual_fragments(&indexes, n);
            assert_eq!(specs.len(), n, "n = {n}");
            check_partition(&db, &specs);
        }
    }

    #[test]
    fn more_fragments_than_sequences_saturates() {
        let db = make_db(&[10, 20, 30]);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, 10);
        assert_eq!(specs.len(), 3);
        check_partition(&db, &specs);
    }

    #[test]
    fn fragments_are_residue_balanced() {
        let db = make_db(&[100; 64]);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, 8);
        for s in &specs {
            assert_eq!(s.residues, 800);
        }
    }

    #[test]
    fn byte_ranges_slice_the_right_residues() {
        let db = make_db(&[5, 7, 11, 13]);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, 2);
        let vol = &db.volumes[0];
        let total: u64 = specs.iter().map(|s| s.residues).sum();
        assert_eq!(total, 36);
        // Concatenating all fragments' seq bytes re-creates the volume.
        let mut rebuilt = Vec::new();
        for s in &specs {
            rebuilt.extend_from_slice(&vol.seq[s.seq_range.0 as usize..s.seq_range.1 as usize]);
        }
        assert_eq!(rebuilt, vol.seq);
    }

    #[test]
    fn idx_table_ranges_decode_correct_offsets() {
        let db = make_db(&[5, 7, 11, 13, 17]);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, 3);
        let vol = &db.volumes[0];
        for s in &specs {
            let (lo, hi) = s.idx_seq_range;
            let slice = &vol.idx[lo as usize..hi as usize];
            assert_eq!(slice.len() as u64, 8 * (s.num_seqs() + 1));
            let first = u64::from_le_bytes(slice[..8].try_into().unwrap());
            assert_eq!(first, s.seq_range.0);
            let last = u64::from_le_bytes(slice[slice.len() - 8..].try_into().unwrap());
            assert_eq!(last, s.seq_range.1);
        }
    }

    #[test]
    fn multi_volume_fragments_respect_volume_bounds() {
        let recs: Vec<SeqRecord> = (0..12)
            .map(|i| SeqRecord {
                defline: format!("s{i}"),
                residues: vec![0u8; 10],
                molecule: Molecule::Protein,
            })
            .collect();
        let cfg = FormatDbConfig {
            title: "mv".into(),
            molecule: Molecule::Protein,
            volume_residue_cap: Some(40),
        };
        let db = format_records(&recs, &cfg);
        assert!(db.volumes.len() == 3);
        let indexes: Vec<&VolumeIndex> = db.volumes.iter().map(|v| &v.index).collect();
        let specs = virtual_fragments(&indexes, 6);
        assert_eq!(specs.len(), 6);
        check_partition(&db, &specs);
        for s in &specs {
            // Each fragment's sequence range lies within its own volume.
            let vol_seqs = db.volumes[s.volume].index.num_seqs() as u64;
            assert!(s.last_seq <= vol_seqs);
        }
    }

    #[test]
    fn physical_fragments_carry_global_stats() {
        let db = make_db(&[10, 20, 30, 40, 50]);
        let frags = physical_fragments(&db, 3);
        assert_eq!(frags.len(), 3);
        let mut seqs = 0u64;
        for f in &frags {
            assert_eq!(f.index.global_stats, db.stats());
            seqs += f.index.volume_stats.num_sequences;
            // Fragment index decodes from its own bytes.
            let back = VolumeIndex::decode(&f.idx).unwrap();
            assert_eq!(back, f.index);
            // Offsets are rebased to the fragment file.
            assert_eq!(back.seq_offsets[0], 0);
            assert_eq!(*back.seq_offsets.last().unwrap() as usize, f.seq.len());
        }
        assert_eq!(seqs, 5);
    }

    #[test]
    fn requested_63_like_the_paper_may_yield_fewer() {
        // The paper could not get 63 fragments out of mpiformatdb (got 61);
        // our analogue: more fragments than sequences saturates.
        let db = make_db(&[10; 61]);
        let frags = physical_fragments(&db, 63);
        assert_eq!(frags.len(), 61);
    }
}
