//! The formatted-database volume layout.
//!
//! A *volume* is one indexed chunk of a database, stored as three files
//! (mirroring formatdb's `.pin`/`.psq`/`.phr` triple):
//!
//! * `<name>.idx` — header (magic, molecule, title, statistics) followed by
//!   two fixed-stride offset tables: sequence offsets into `.seq` and
//!   defline offsets into `.hdr`. Fixed stride is the property pioBLAST's
//!   dynamic partitioning depends on: the byte range of any sequence
//!   interval's index entries is computable without reading the file.
//! * `<name>.seq` — concatenated encoded residues.
//! * `<name>.hdr` — concatenated defline bytes.
//!
//! Databases larger than a volume cap are split into `name.00`, `name.01`,
//! ... with a text alias file `<name>.al` naming the volumes (formatdb's
//! `.pal`). All encode/decode works on in-memory byte buffers so volumes
//! can live on the simulated cluster file system or the host file system
//! alike.

use blast_core::alphabet::Molecule;
use blast_core::stats::DbStats;

use crate::codec::{CodecError, Reader, Writer};

/// Magic bytes opening every `.idx` file.
pub const IDX_MAGIC: &[u8; 8] = b"PIOBDB1\0";

/// File-name extensions of the volume triple.
pub const EXT_IDX: &str = "idx";
/// Sequence-file extension.
pub const EXT_SEQ: &str = "seq";
/// Header-file extension.
pub const EXT_HDR: &str = "hdr";
/// Alias-file extension.
pub const EXT_ALIAS: &str = "al";

/// Parsed contents of a volume's `.idx` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeIndex {
    /// Molecule type of the residues in `.seq`.
    pub molecule: Molecule,
    /// Database title.
    pub title: String,
    /// Ordinal id (within the whole database) of this volume's first
    /// sequence.
    pub base_oid: u64,
    /// Statistics of this volume only.
    pub volume_stats: DbStats,
    /// Statistics of the whole database (all volumes), so any single
    /// volume suffices to compute global E-values.
    pub global_stats: DbStats,
    /// `seq_offsets[i]..seq_offsets[i+1]` is sequence `i`'s byte range in
    /// `.seq` (local oid `i`; `num_seqs + 1` entries).
    pub seq_offsets: Vec<u64>,
    /// Same for deflines in `.hdr`.
    pub hdr_offsets: Vec<u64>,
}

impl VolumeIndex {
    /// Number of sequences in this volume.
    pub fn num_seqs(&self) -> usize {
        self.seq_offsets.len().saturating_sub(1)
    }

    /// Length in residues of local sequence `i`.
    pub fn seq_len(&self, i: usize) -> u64 {
        self.seq_offsets[i + 1] - self.seq_offsets[i]
    }

    /// Serialize to `.idx` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + 16 * self.seq_offsets.len());
        w.bytes(IDX_MAGIC);
        w.u8(self.molecule.tag());
        w.bytes(&[0u8; 3]); // pad to a 4-byte boundary
        w.string(&self.title);
        w.u64(self.base_oid);
        w.u64(self.volume_stats.num_sequences);
        w.u64(self.volume_stats.total_residues);
        w.u64(self.global_stats.num_sequences);
        w.u64(self.global_stats.total_residues);
        w.u64(self.seq_offsets.len() as u64);
        for &o in &self.seq_offsets {
            w.u64(o);
        }
        for &o in &self.hdr_offsets {
            w.u64(o);
        }
        w.finish()
    }

    /// Parse `.idx` bytes.
    pub fn decode(buf: &[u8]) -> Result<VolumeIndex, CodecError> {
        let mut r = Reader::new(buf);
        let magic = r.bytes(8, "idx magic")?;
        if magic != IDX_MAGIC {
            return Err(CodecError::BadValue { what: "idx magic" });
        }
        let tag = r.u8("molecule tag")?;
        let molecule = Molecule::from_tag(tag).ok_or(CodecError::BadValue {
            what: "molecule tag",
        })?;
        r.bytes(3, "pad")?;
        let title = r.string("title")?;
        let base_oid = r.u64("base oid")?;
        let volume_stats = DbStats {
            num_sequences: r.u64("volume num_seqs")?,
            total_residues: r.u64("volume residues")?,
        };
        let global_stats = DbStats {
            num_sequences: r.u64("global num_seqs")?,
            total_residues: r.u64("global residues")?,
        };
        let n = r.u64("offset count")? as usize;
        let mut seq_offsets = Vec::with_capacity(n);
        for _ in 0..n {
            seq_offsets.push(r.u64("seq offset")?);
        }
        let mut hdr_offsets = Vec::with_capacity(n);
        for _ in 0..n {
            hdr_offsets.push(r.u64("hdr offset")?);
        }
        Ok(VolumeIndex {
            molecule,
            title,
            base_oid,
            volume_stats,
            global_stats,
            seq_offsets,
            hdr_offsets,
        })
    }

    /// Byte offset, within the `.idx` file, where the sequence-offset
    /// table begins. Entries are 8 bytes each, so entry `i` lives at
    /// `seq_table_start() + 8*i`. This is what lets a worker read just its
    /// fragment's slice of the index with a ranged read.
    pub fn seq_table_start(&self) -> u64 {
        // magic(8) + tag(1) + pad(3) + title(4 + len) + 5×u64 stats/base +
        // count(8)
        (8 + 4 + 4 + self.title.len() + 5 * 8 + 8) as u64
    }

    /// Byte offset of the header-offset table.
    pub fn hdr_table_start(&self) -> u64 {
        self.seq_table_start() + 8 * self.seq_offsets.len() as u64
    }
}

/// The three files of an encoded volume, plus its parsed index.
#[derive(Debug, Clone)]
pub struct EncodedVolume {
    /// Volume base name, e.g. `nr-sim.00`.
    pub name: String,
    /// `.idx` bytes.
    pub idx: Vec<u8>,
    /// `.seq` bytes.
    pub seq: Vec<u8>,
    /// `.hdr` bytes.
    pub hdr: Vec<u8>,
    /// The index these bytes encode.
    pub index: VolumeIndex,
}

impl EncodedVolume {
    /// The `(file name, contents)` pairs of this volume.
    pub fn files(&self) -> [(String, &[u8]); 3] {
        [
            (format!("{}.{}", self.name, EXT_IDX), &self.idx[..]),
            (format!("{}.{}", self.name, EXT_SEQ), &self.seq[..]),
            (format!("{}.{}", self.name, EXT_HDR), &self.hdr[..]),
        ]
    }
}

/// The alias file describing a multi-volume database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasFile {
    /// Database title.
    pub title: String,
    /// Molecule type.
    pub molecule: Molecule,
    /// Volume base names, in oid order.
    pub volumes: Vec<String>,
    /// Whole-database statistics.
    pub global_stats: DbStats,
}

impl AliasFile {
    /// Render the text form (a formatdb-like key/value file).
    pub fn encode(&self) -> Vec<u8> {
        let mut s = String::new();
        s.push_str("# pioblast-rs database alias\n");
        s.push_str(&format!("TITLE {}\n", self.title));
        s.push_str(&format!("MOLECULE {}\n", self.molecule.tag() as char));
        s.push_str(&format!("NSEQ {}\n", self.global_stats.num_sequences));
        s.push_str(&format!("LENGTH {}\n", self.global_stats.total_residues));
        s.push_str(&format!("DBLIST {}\n", self.volumes.join(" ")));
        s.into_bytes()
    }

    /// Parse the text form.
    pub fn decode(buf: &[u8]) -> Result<AliasFile, CodecError> {
        let text =
            std::str::from_utf8(buf).map_err(|_| CodecError::BadValue { what: "alias utf8" })?;
        let mut title = None;
        let mut molecule = None;
        let mut nseq = None;
        let mut length = None;
        let mut volumes = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(' ') else {
                continue;
            };
            match key {
                "TITLE" => title = Some(value.to_string()),
                "MOLECULE" => {
                    molecule = Molecule::from_tag(value.as_bytes().first().copied().unwrap_or(0))
                }
                "NSEQ" => {
                    nseq = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| CodecError::BadValue { what: "alias NSEQ" })?,
                    )
                }
                "LENGTH" => {
                    length = Some(value.parse::<u64>().map_err(|_| CodecError::BadValue {
                        what: "alias LENGTH",
                    })?)
                }
                "DBLIST" => volumes = value.split_whitespace().map(String::from).collect(),
                _ => {}
            }
        }
        Ok(AliasFile {
            title: title.ok_or(CodecError::BadValue {
                what: "alias TITLE",
            })?,
            molecule: molecule.ok_or(CodecError::BadValue {
                what: "alias MOLECULE",
            })?,
            volumes,
            global_stats: DbStats {
                num_sequences: nseq.ok_or(CodecError::BadValue { what: "alias NSEQ" })?,
                total_residues: length.ok_or(CodecError::BadValue {
                    what: "alias LENGTH",
                })?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> VolumeIndex {
        VolumeIndex {
            molecule: Molecule::Protein,
            title: "nr-sim".to_string(),
            base_oid: 100,
            volume_stats: DbStats {
                num_sequences: 3,
                total_residues: 30,
            },
            global_stats: DbStats {
                num_sequences: 10,
                total_residues: 100,
            },
            seq_offsets: vec![0, 10, 22, 30],
            hdr_offsets: vec![0, 5, 11, 20],
        }
    }

    #[test]
    fn index_round_trips() {
        let idx = sample_index();
        let bytes = idx.encode();
        let back = VolumeIndex::decode(&bytes).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn table_starts_are_correct() {
        let idx = sample_index();
        let bytes = idx.encode();
        let s = idx.seq_table_start() as usize;
        // Entry 0 of the sequence table must decode to seq_offsets[0].
        let v = u64::from_le_bytes(bytes[s..s + 8].try_into().unwrap());
        assert_eq!(v, 0);
        let v = u64::from_le_bytes(bytes[s + 8..s + 16].try_into().unwrap());
        assert_eq!(v, 10);
        let h = idx.hdr_table_start() as usize;
        let v = u64::from_le_bytes(bytes[h + 8..h + 16].try_into().unwrap());
        assert_eq!(v, 5);
        // The header table ends exactly at the file end.
        assert_eq!(h + 8 * idx.hdr_offsets.len(), bytes.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_index().encode();
        bytes[0] = b'X';
        assert!(VolumeIndex::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_index_is_rejected() {
        let bytes = sample_index().encode();
        assert!(VolumeIndex::decode(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn seq_len_uses_offsets() {
        let idx = sample_index();
        assert_eq!(idx.num_seqs(), 3);
        assert_eq!(idx.seq_len(0), 10);
        assert_eq!(idx.seq_len(1), 12);
        assert_eq!(idx.seq_len(2), 8);
    }

    #[test]
    fn alias_round_trips() {
        let alias = AliasFile {
            title: "nt-sim".to_string(),
            molecule: Molecule::Dna,
            volumes: vec!["nt-sim.00".into(), "nt-sim.01".into()],
            global_stats: DbStats {
                num_sequences: 42,
                total_residues: 12345,
            },
        };
        let bytes = alias.encode();
        assert_eq!(AliasFile::decode(&bytes).unwrap(), alias);
    }

    #[test]
    fn alias_with_missing_fields_is_rejected() {
        assert!(AliasFile::decode(b"TITLE x\n").is_err());
        assert!(AliasFile::decode(b"# nothing\n").is_err());
    }
}
