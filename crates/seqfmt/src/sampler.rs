//! Query sampling.
//!
//! "To better control the query output size, we created several input
//! query sets, each containing a different number of query sequences, by
//! randomly sampling the nr database itself." (paper, §4). This module
//! reproduces that: sample whole sequences uniformly at random from a
//! record set until the query set's FASTA size reaches a byte target.

use blast_core::seq::SeqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Approximate FASTA size of a record: defline + `>` + newlines + residues.
pub fn fasta_size(rec: &SeqRecord) -> u64 {
    (rec.defline.len() + 2 + rec.len() + rec.len() / 60 + 1) as u64
}

/// Sample whole sequences from `records` until the set's FASTA size
/// reaches `target_bytes`. Sampling is with replacement over a shuffled
/// order (deterministic for a given seed); re-sampled duplicates get
/// distinct query ids so downstream output is unambiguous.
pub fn sample_queries(records: &[SeqRecord], target_bytes: u64, seed: u64) -> Vec<SeqRecord> {
    assert!(!records.is_empty(), "cannot sample an empty database");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut bytes = 0u64;
    while bytes < target_bytes {
        let pick = rng.gen_range(0..records.len());
        let src = &records[pick];
        let rec = SeqRecord {
            defline: format!("query_{:05} sampled_from {}", out.len(), src.id()),
            residues: src.residues.clone(),
            molecule: src.molecule,
        };
        bytes += fasta_size(&rec);
        out.push(rec);
    }
    out
}

/// The paper's query-size ladder (Table 2), expressed as byte targets and
/// scaled by `scale` (1.0 = the paper's sizes against the real nr; the
/// default harness runs at a smaller scale with a proportionally smaller
/// database).
pub fn table2_query_sizes(scale: f64) -> Vec<(String, u64)> {
    [
        ("26KB", 26u64 * 1024),
        ("77KB", 77 * 1024),
        ("159KB", 159 * 1024),
        ("289KB", 289 * 1024),
    ]
    .into_iter()
    .map(|(name, bytes)| (name.to_string(), ((bytes as f64 * scale) as u64).max(256)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::alphabet::Molecule;

    fn records() -> Vec<SeqRecord> {
        (0..50)
            .map(|i| SeqRecord {
                defline: format!("gi|{i}| db seq"),
                residues: vec![(i % 20) as u8; 100 + i],
                molecule: Molecule::Protein,
            })
            .collect()
    }

    #[test]
    fn sampling_reaches_target() {
        let recs = records();
        let qs = sample_queries(&recs, 4096, 1);
        let total: u64 = qs.iter().map(fasta_size).sum();
        assert!(total >= 4096);
        // Not wildly past the target either (one record overshoot max).
        assert!(total < 4096 + 1024);
    }

    #[test]
    fn sampling_is_deterministic() {
        let recs = records();
        assert_eq!(
            sample_queries(&recs, 2048, 7),
            sample_queries(&recs, 2048, 7)
        );
        assert_ne!(
            sample_queries(&recs, 2048, 7),
            sample_queries(&recs, 2048, 8)
        );
    }

    #[test]
    fn sampled_queries_come_from_the_database() {
        let recs = records();
        for q in sample_queries(&recs, 2048, 3) {
            assert!(q.defline.contains("sampled_from gi|"));
            assert!(recs.iter().any(|r| r.residues == q.residues));
        }
    }

    #[test]
    fn query_ids_are_unique() {
        let recs = records();
        let qs = sample_queries(&recs, 8192, 5);
        let mut ids: Vec<&str> = qs.iter().map(|q| q.id()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn table2_ladder_scales() {
        let full = table2_query_sizes(1.0);
        assert_eq!(full.len(), 4);
        assert_eq!(full[2].1, 159 * 1024);
        let small = table2_query_sizes(0.01);
        assert_eq!(small[0].1, (26.0 * 1024.0 * 0.01) as u64);
    }
}
