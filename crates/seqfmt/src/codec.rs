//! Little-endian binary encode/decode helpers for the database format.

/// Decoding errors shared by all seqfmt readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a field was complete.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A magic tag or enum byte had an unexpected value.
    BadValue {
        /// What was being read.
        what: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated input while reading {what}"),
            CodecError::BadValue { what } => write!(f, "invalid value for {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over a byte slice with typed little-endian reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed (u32) UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.bytes(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadValue { what })
    }
}

/// Typed little-endian appends onto a `Vec<u8>`.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty buffer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Start with a capacity hint.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed (u32) string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes())
    }

    /// Take the finished buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7).u32(0xDEADBEEF).u64(u64::MAX - 1).string("héllo");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.string("d").unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.u64("field").unwrap_err(),
            CodecError::Truncated { what: "field" }
        );
        // Position is unchanged after a failed read.
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = Writer::new();
        w.u32(2).bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.string("s").unwrap_err(),
            CodecError::BadValue { what: "s" }
        );
    }
}
