//! Synthetic GenBank-like database generation.
//!
//! The paper benchmarks against GenBank nr (~1 GB of peptides, ~2 M
//! sequences). We cannot ship nr, so we generate a statistically similar
//! stand-in: sequence lengths follow a lognormal fit of nr (median ≈ 300
//! residues), residues follow Robinson–Robinson background frequencies,
//! and — crucially for output volumes — sequences come in *homologous
//! families* (a parent plus mutated copies). Families are what make a
//! query sampled from the database align against many subjects, which is
//! why the paper's 150 KB query sets produce ~100 MB of output.

use blast_core::alphabet::Molecule;
use blast_core::karlin::ROBINSON_FREQS;
use blast_core::seq::SeqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; same seed, same database.
    pub seed: u64,
    /// Stop once this many residues have been emitted.
    pub target_residues: u64,
    /// Mean family size (geometric distribution; 1 = no families).
    pub family_size_mean: f64,
    /// Per-residue substitution probability for family members.
    pub mutation_rate: f64,
    /// Per-family-member probability of a small indel event.
    pub indel_rate: f64,
    /// ln-space mean of the length distribution.
    pub len_ln_mean: f64,
    /// ln-space standard deviation of the length distribution.
    pub len_ln_sigma: f64,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl SynthConfig {
    /// An nr-like protein database of roughly `target_residues` residues.
    pub fn nr_like(seed: u64, target_residues: u64) -> SynthConfig {
        SynthConfig {
            seed,
            target_residues,
            family_size_mean: 8.0,
            mutation_rate: 0.25,
            indel_rate: 0.3,
            len_ln_mean: 5.7, // median ≈ 300 residues
            len_ln_sigma: 0.55,
            min_len: 40,
            max_len: 4000,
        }
    }

    /// An nt-like nucleotide database: longer sequences, lower mutation
    /// rates (nucleotide families are more conserved per position).
    pub fn nt_like_dna(seed: u64, target_residues: u64) -> SynthConfig {
        SynthConfig {
            seed,
            target_residues,
            family_size_mean: 6.0,
            mutation_rate: 0.1,
            indel_rate: 0.3,
            len_ln_mean: 6.9, // median ≈ 1000 bases
            len_ln_sigma: 0.7,
            min_len: 100,
            max_len: 20_000,
        }
    }
}

/// One volume of a multi-volume synthesis plan: its residue budget and
/// its own record-length distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeSpec {
    /// Residues to emit into this volume.
    pub residues: u64,
    /// ln-space mean of this volume's length distribution.
    pub len_ln_mean: f64,
    /// ln-space standard deviation of this volume's length distribution.
    pub len_ln_sigma: f64,
}

/// A multi-volume database synthesis plan — the scale sweep's database
/// generator. Each volume draws from its *own* record-length
/// distribution and its *own* seed (derived deterministically from the
/// base seed and the volume index), so:
///
/// * volume `v`'s records are identical no matter how many other
///   volumes the plan holds — growing a 4-volume database to 16 volumes
///   extends it without rewriting a byte of the first four;
/// * the sweep can vary composition across volumes (short-record
///   volumes next to contig-like ones) to exercise fragment-size skew.
///
/// [`MultiVolumeConfig::format`] formats the volumes with explicit
/// boundaries ([`crate::formatdb::format_volumes`]): the generator, not
/// a residue cap, decides where volumes end.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVolumeConfig {
    /// Base seed; volume `v` uses a seed derived from `(seed, v)`.
    pub seed: u64,
    /// The volumes, in oid order.
    pub volumes: Vec<VolumeSpec>,
}

impl MultiVolumeConfig {
    /// A size sweep: `nvolumes` volumes totalling `total_residues`,
    /// with per-volume length distributions swept from short-record
    /// (ln-mean 5.0, median ≈ 150) to contig-like (ln-mean 6.4,
    /// median ≈ 600) across the volume index.
    pub fn size_sweep(seed: u64, nvolumes: usize, total_residues: u64) -> MultiVolumeConfig {
        let n = nvolumes.max(1);
        let volumes = (0..n)
            .map(|v| {
                let t = if n == 1 {
                    0.0
                } else {
                    v as f64 / (n - 1) as f64
                };
                VolumeSpec {
                    residues: total_residues / n as u64,
                    len_ln_mean: 5.0 + 1.4 * t,
                    len_ln_sigma: 0.45 + 0.2 * t,
                }
            })
            .collect();
        MultiVolumeConfig { seed, volumes }
    }

    /// The seed volume `v` generates from: a splitmix64 of the base
    /// seed and the index, so adjacent volumes are decorrelated.
    fn volume_seed(&self, v: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((v as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Generate every volume's records (protein), one record set per
    /// volume, deterministically.
    pub fn generate_volumes(&self) -> Vec<Vec<SeqRecord>> {
        self.volumes
            .iter()
            .enumerate()
            .map(|(v, spec)| {
                let mut cfg = SynthConfig::nr_like(self.volume_seed(v), spec.residues);
                cfg.len_ln_mean = spec.len_ln_mean;
                cfg.len_ln_sigma = spec.len_ln_sigma;
                generate_with_namespace(&cfg, Molecule::Protein, v as u64)
            })
            .collect()
    }

    /// Generate and format the database with explicit volume
    /// boundaries.
    pub fn format(&self, title: &str) -> crate::formatdb::FormattedDb {
        crate::formatdb::format_volumes(
            &self.generate_volumes(),
            &crate::formatdb::FormatDbConfig::protein(title),
        )
    }
}

/// Cumulative Robinson–Robinson table for residue sampling.
fn cumulative_freqs() -> [f64; 20] {
    let total: f64 = ROBINSON_FREQS.iter().sum();
    let mut cum = [0.0; 20];
    let mut acc = 0.0;
    for (i, &f) in ROBINSON_FREQS.iter().enumerate() {
        acc += f / total;
        cum[i] = acc;
    }
    cum[19] = 1.0;
    cum
}

fn sample_residue(rng: &mut StdRng, cum: &[f64; 20]) -> u8 {
    let x: f64 = rng.gen();
    cum.iter().position(|&c| x <= c).unwrap_or(19) as u8
}

/// Box–Muller standard normal.
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn sample_length(rng: &mut StdRng, cfg: &SynthConfig) -> usize {
    let ln_len = cfg.len_ln_mean + cfg.len_ln_sigma * sample_normal(rng);
    (ln_len.exp() as usize).clamp(cfg.min_len, cfg.max_len)
}

/// Geometric family size with the configured mean (>= 1).
fn sample_family_size(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let mut size = 1usize;
    while size < 500 && rng.gen::<f64>() > p {
        size += 1;
    }
    size
}

/// Derive a family member by point mutation plus optional small indels.
fn mutate(rng: &mut StdRng, cfg: &SynthConfig, cum: &[f64; 20], parent: &[u8]) -> Vec<u8> {
    let mut child: Vec<u8> = parent
        .iter()
        .map(|&c| {
            if rng.gen::<f64>() < cfg.mutation_rate {
                sample_residue(rng, cum)
            } else {
                c
            }
        })
        .collect();
    if rng.gen::<f64>() < cfg.indel_rate && child.len() > cfg.min_len + 12 {
        let ev_len = rng.gen_range(1..=8usize);
        let pos = rng.gen_range(0..child.len() - ev_len);
        if rng.gen::<bool>() {
            child.drain(pos..pos + ev_len);
        } else {
            let insert: Vec<u8> = (0..ev_len).map(|_| sample_residue(rng, cum)).collect();
            for (k, c) in insert.into_iter().enumerate() {
                child.insert(pos + k, c);
            }
        }
    }
    child
}

/// Generate a synthetic protein database.
pub fn generate(cfg: &SynthConfig) -> Vec<SeqRecord> {
    generate_with(cfg, Molecule::Protein)
}

/// Generate a synthetic nucleotide database (uniform base composition).
pub fn generate_dna(cfg: &SynthConfig) -> Vec<SeqRecord> {
    generate_with(cfg, Molecule::Dna)
}

/// The shared generator; `molecule` selects the residue sampler and the
/// defline style.
fn generate_with(cfg: &SynthConfig, molecule: Molecule) -> Vec<SeqRecord> {
    generate_with_namespace(cfg, molecule, 0)
}

/// Like [`generate_with`], but with gi and family numbering offset into
/// namespace `ns`, so record sets generated independently (one per
/// database volume) have globally unique identifiers.
fn generate_with_namespace(cfg: &SynthConfig, molecule: Molecule, ns: u64) -> Vec<SeqRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cum = match molecule {
        Molecule::Protein => cumulative_freqs(),
        Molecule::Dna => {
            // Uniform ACGT: cumulative quarters over the first 4 codes.
            let mut cum = [1.0f64; 20];
            cum[0] = 0.25;
            cum[1] = 0.5;
            cum[2] = 0.75;
            cum[3] = 1.0;
            cum
        }
    };
    let mut records = Vec::new();
    let mut residues = 0u64;
    let mut gi = 1_000_000 + ns * 1_000_000_000;
    let mut family = ns * 1_000_000;
    while residues < cfg.target_residues {
        family += 1;
        let len = sample_length(&mut rng, cfg);
        let parent: Vec<u8> = (0..len).map(|_| sample_residue(&mut rng, &cum)).collect();
        let size = sample_family_size(&mut rng, cfg.family_size_mean);
        for member in 0..size {
            if residues >= cfg.target_residues {
                break;
            }
            let seq = if member == 0 {
                parent.clone()
            } else {
                mutate(&mut rng, cfg, &cum, &parent)
            };
            residues += seq.len() as u64;
            gi += 1;
            let kind = match molecule {
                Molecule::Protein => "hypothetical protein",
                Molecule::Dna => "genomic sequence",
            };
            records.push(SeqRecord {
                defline: format!(
                    "gi|{gi}|ref|SYN_{family:06}.{member}| {kind} fam{family} m{member} [Synthetica simulata]"
                ),
                residues: seq,
                molecule,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::nr_like(42, 50_000);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::nr_like(1, 20_000));
        let b = generate(&SynthConfig::nr_like(2, 20_000));
        assert_ne!(a, b);
    }

    #[test]
    fn target_residues_is_respected() {
        let cfg = SynthConfig::nr_like(7, 100_000);
        let recs = generate(&cfg);
        let total: u64 = recs.iter().map(|r| r.len() as u64).sum();
        assert!(total >= 100_000);
        assert!(total < 100_000 + cfg.max_len as u64);
    }

    #[test]
    fn lengths_are_in_bounds_and_plausible() {
        let cfg = SynthConfig::nr_like(3, 200_000);
        let recs = generate(&cfg);
        let mut lens: Vec<usize> = recs.iter().map(|r| r.len()).collect();
        lens.sort_unstable();
        assert!(*lens.first().unwrap() >= cfg.min_len);
        assert!(*lens.last().unwrap() <= cfg.max_len);
        let median = lens[lens.len() / 2];
        assert!(
            (120..900).contains(&median),
            "median length {median} is implausible for nr"
        );
    }

    #[test]
    fn families_share_sequence_similarity() {
        let cfg = SynthConfig::nr_like(11, 60_000);
        let recs = generate(&cfg);
        // Find a family with at least 2 members.
        let mut by_family: std::collections::BTreeMap<&str, Vec<&SeqRecord>> = Default::default();
        for r in &recs {
            let fam = r
                .defline
                .split("fam")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .unwrap_or("");
            by_family.entry(fam).or_default().push(r);
        }
        let fam = by_family
            .values()
            .find(|v| v.len() >= 2)
            .expect("some family has two members");
        let a = &fam[0].residues;
        let b = &fam[1].residues;
        // A member may carry one indel of up to 8 residues, which destroys
        // naive positional identity past the indel point; measure the best
        // identity over small alignment shifts instead.
        let mut best = 0.0f64;
        for shift in -8i64..=8 {
            let (a_off, b_off) = if shift >= 0 {
                (shift as usize, 0usize)
            } else {
                (0usize, (-shift) as usize)
            };
            let n = (a.len() - a_off).min(b.len() - b_off);
            if n == 0 {
                continue;
            }
            let same = a[a_off..a_off + n]
                .iter()
                .zip(&b[b_off..b_off + n])
                .filter(|(x, y)| x == y)
                .count();
            best = best.max(same as f64 / n as f64);
        }
        // One indel splits the 75%-identity region in two; the better half
        // alone guarantees well over background (~6%) identity.
        assert!(best > 0.3, "family best-shift identity only {best}");
    }

    #[test]
    fn residue_composition_tracks_background() {
        let cfg = SynthConfig::nr_like(5, 300_000);
        let recs = generate(&cfg);
        let mut counts = [0u64; 20];
        let mut total = 0u64;
        for r in &recs {
            for &c in &r.residues {
                counts[c as usize] += 1;
                total += 1;
            }
        }
        // Leucine (code 10) is the most common residue in nr (~9%).
        let leu = counts[10] as f64 / total as f64;
        assert!((0.06..0.13).contains(&leu), "Leu freq {leu}");
        // Tryptophan (code 17) is the rarest (~1.3%).
        let trp = counts[17] as f64 / total as f64;
        assert!(trp < 0.03, "Trp freq {trp}");
    }

    #[test]
    fn multivolume_boundaries_are_exactly_the_generated_sets() {
        let cfg = MultiVolumeConfig::size_sweep(17, 4, 80_000);
        let per_volume = cfg.generate_volumes();
        let db = cfg.format("sweepdb");
        assert_eq!(db.volumes.len(), 4);
        // Each volume holds exactly its generated record set — the
        // formatter must not re-draw boundaries — and oids run
        // continuously across volume edges.
        let mut base_oid = 0u64;
        for (v, vol) in db.volumes.iter().enumerate() {
            assert_eq!(
                vol.index.volume_stats.num_sequences,
                per_volume[v].len() as u64,
                "volume {v} boundary moved"
            );
            assert_eq!(vol.index.base_oid, base_oid, "volume {v} oid base");
            base_oid += per_volume[v].len() as u64;
            assert_eq!(vol.name, format!("sweepdb.{v:02}"));
        }
        assert_eq!(db.stats().num_sequences, base_oid);
        // Round-trip: the first and last records survive encoding at
        // their global oids.
        let first = crate::FragmentData::from_volume(&db.volumes[0]);
        use blast_core::search::SubjectSource;
        assert_eq!(
            first.subject(0).residues,
            per_volume[0][0].residues.as_slice()
        );
    }

    #[test]
    fn multivolume_sweep_varies_length_distribution_per_volume() {
        let cfg = MultiVolumeConfig::size_sweep(3, 5, 250_000);
        let per_volume = cfg.generate_volumes();
        let median = |recs: &[SeqRecord]| {
            let mut lens: Vec<usize> = recs.iter().map(|r| r.len()).collect();
            lens.sort_unstable();
            lens[lens.len() / 2]
        };
        let first = median(&per_volume[0]);
        let last = median(&per_volume[4]);
        assert!(
            last as f64 > 1.8 * first as f64,
            "sweep must skew lengths: first median {first}, last {last}"
        );
    }

    #[test]
    fn multivolume_volumes_are_stable_under_growth() {
        // Growing the plan from 2 to 6 volumes must not change the
        // records of the first two: per-volume seeds are a function of
        // (base seed, index) only. Note size_sweep varies the length
        // distribution with the volume *fraction*, so compare explicit
        // specs instead.
        let spec = |r| VolumeSpec {
            residues: r,
            len_ln_mean: 5.7,
            len_ln_sigma: 0.5,
        };
        let small = MultiVolumeConfig {
            seed: 9,
            volumes: vec![spec(20_000), spec(30_000)],
        };
        let large = MultiVolumeConfig {
            seed: 9,
            volumes: (0..6).map(|_| spec(20_000)).collect(),
        };
        let a = small.generate_volumes();
        let b = large.generate_volumes();
        assert_eq!(a[0], b[0], "volume 0 rewrote under growth");
        // Different budgets share a prefix: volume 1's first records
        // agree even though `small`'s volume 1 is larger.
        assert_eq!(a[1][..b[1].len().min(a[1].len())], b[1][..]);
        // And different volume indexes decorrelate.
        assert_ne!(b[0], b[1]);
    }

    #[test]
    fn multivolume_ids_are_globally_unique() {
        let cfg = MultiVolumeConfig::size_sweep(21, 3, 45_000);
        let all: Vec<SeqRecord> = cfg.generate_volumes().into_iter().flatten().collect();
        let mut ids: Vec<String> = all.iter().map(|r| r.id().to_string()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate ids across volumes");
    }

    #[test]
    fn multivolume_format_is_deterministic() {
        let files = |seed| {
            MultiVolumeConfig::size_sweep(seed, 3, 30_000)
                .format("det")
                .files()
        };
        assert_eq!(files(5), files(5));
        assert_ne!(files(5), files(6));
    }

    #[test]
    fn deflines_are_unique_and_genbank_like() {
        let recs = generate(&SynthConfig::nr_like(9, 30_000));
        let mut ids: Vec<&str> = recs.iter().map(|r| r.id()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate identifiers");
        assert!(recs[0].defline.starts_with("gi|"));
        assert!(recs[0].defline.contains("[Synthetica simulata]"));
    }
}
