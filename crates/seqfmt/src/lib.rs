//! # seqfmt
//!
//! The database-formatting substrate of the pioBLAST reproduction — the
//! role NCBI `formatdb` plays for mpiBLAST:
//!
//! * [`formatdb`] turns raw FASTA into indexed [`volume`]s (sequence,
//!   header and index files) plus an alias file, with multi-volume
//!   splitting for large databases.
//! * [`frag`] computes fragments two ways: *virtual* byte-range fragments
//!   for pioBLAST's dynamic partitioning, and *physical* fragment files
//!   for the mpiBLAST baseline (`mpiformatdb`).
//! * [`reader`] reassembles a searchable fragment from either whole files
//!   or the exact byte ranges a worker read with parallel I/O.
//! * [`synth`] generates deterministic GenBank-nr-like databases (the
//!   stand-in for nr/nt) and [`sampler`] draws query sets from them, the
//!   way the paper sampled its query workloads.
//!
//! All formats encode to and decode from plain byte buffers, so a
//! database can live on the simulated cluster file system, the host file
//! system, or in memory, identically.

#![warn(missing_docs)]

pub mod codec;
pub mod formatdb;
pub mod frag;
pub mod reader;
pub mod sampler;
pub mod synth;
pub mod volume;

pub use formatdb::{format_fasta, format_records, FormatDbConfig, FormattedDb};
pub use frag::{physical_fragments, virtual_fragments, FragmentSpec};
pub use reader::FragmentData;
pub use volume::{AliasFile, EncodedVolume, VolumeIndex};
