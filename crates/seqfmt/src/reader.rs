//! Fragment readers: turning raw file bytes (or ranges of them) into a
//! searchable [`SubjectSource`].

use blast_core::alphabet::Molecule;
use blast_core::search::SubjectSource;
use blast_core::seq::SubjectView;

use crate::codec::CodecError;
use crate::frag::FragmentSpec;
use crate::volume::{EncodedVolume, VolumeIndex};

/// An in-memory database fragment: the unit a worker searches.
///
/// pioBLAST workers build this from four ranged reads of the shared files
/// ([`FragmentData::from_ranges`] — the paper's parallel input stage);
/// mpiBLAST workers build it from whole fragment files they copied
/// ([`FragmentData::from_volume`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentData {
    /// Molecule type.
    pub molecule: Molecule,
    /// Global ordinal id of the first sequence.
    pub base_oid: u64,
    /// Residue offsets rebased to this fragment's `seq` buffer
    /// (`num_seqs + 1` entries).
    seq_offsets: Vec<u64>,
    /// Defline offsets rebased to `hdr`.
    hdr_offsets: Vec<u64>,
    /// Concatenated encoded residues.
    seq: Vec<u8>,
    /// Concatenated defline bytes.
    hdr: Vec<u8>,
}

impl FragmentData {
    /// Build from the four byte ranges named by a [`FragmentSpec`]:
    /// slices of the `.idx` offset tables plus the `.seq`/`.hdr` ranges.
    ///
    /// This is the pioBLAST input path: each buffer is exactly what one
    /// `read_at` of the shared files returns; nothing else is needed.
    pub fn from_ranges(
        molecule: Molecule,
        base_oid: u64,
        idx_seq_table: &[u8],
        idx_hdr_table: &[u8],
        seq: Vec<u8>,
        hdr: Vec<u8>,
    ) -> Result<FragmentData, CodecError> {
        let seq_offsets = decode_rebased_table(idx_seq_table, "seq offset table")?;
        let hdr_offsets = decode_rebased_table(idx_hdr_table, "hdr offset table")?;
        if seq_offsets.len() != hdr_offsets.len() {
            return Err(CodecError::BadValue {
                what: "offset table lengths",
            });
        }
        if seq_offsets.last().copied().unwrap_or(0) != seq.len() as u64
            || hdr_offsets.last().copied().unwrap_or(0) != hdr.len() as u64
        {
            return Err(CodecError::BadValue {
                what: "offset table vs data length",
            });
        }
        Ok(FragmentData {
            molecule,
            base_oid,
            seq_offsets,
            hdr_offsets,
            seq,
            hdr,
        })
    }

    /// Build from the raw bytes of a volume's three files, as read back
    /// from disk (the mpiBLAST worker path: fragment files were copied to
    /// local storage and are now loaded for searching).
    pub fn from_file_bytes(
        idx: &[u8],
        seq: Vec<u8>,
        hdr: Vec<u8>,
    ) -> Result<FragmentData, CodecError> {
        let index = VolumeIndex::decode(idx)?;
        if index.seq_offsets.last().copied().unwrap_or(0) != seq.len() as u64
            || index.hdr_offsets.last().copied().unwrap_or(0) != hdr.len() as u64
        {
            return Err(CodecError::BadValue {
                what: "volume data length vs index",
            });
        }
        Ok(FragmentData {
            molecule: index.molecule,
            base_oid: index.base_oid,
            seq_offsets: index.seq_offsets,
            hdr_offsets: index.hdr_offsets,
            seq,
            hdr,
        })
    }

    /// Build from a whole in-memory volume (mpiBLAST fragment files, or a
    /// serial whole-database search).
    pub fn from_volume(vol: &EncodedVolume) -> FragmentData {
        FragmentData {
            molecule: vol.index.molecule,
            base_oid: vol.index.base_oid,
            seq_offsets: vol.index.seq_offsets.clone(),
            hdr_offsets: vol.index.hdr_offsets.clone(),
            seq: vol.seq.clone(),
            hdr: vol.hdr.clone(),
        }
    }

    /// Build by slicing a whole volume with a [`FragmentSpec`] (a virtual
    /// fragment materialized locally — used in tests to validate the
    /// ranged-read path against an in-memory reference).
    pub fn from_volume_slice(vol: &EncodedVolume, spec: &FragmentSpec) -> FragmentData {
        let first = spec.first_seq as usize;
        let last = spec.last_seq as usize;
        FragmentData {
            molecule: vol.index.molecule,
            base_oid: spec.base_oid,
            seq_offsets: vol.index.seq_offsets[first..=last]
                .iter()
                .map(|&o| o - spec.seq_range.0)
                .collect(),
            hdr_offsets: vol.index.hdr_offsets[first..=last]
                .iter()
                .map(|&o| o - spec.hdr_range.0)
                .collect(),
            seq: vol.seq[spec.seq_range.0 as usize..spec.seq_range.1 as usize].to_vec(),
            hdr: vol.hdr[spec.hdr_range.0 as usize..spec.hdr_range.1 as usize].to_vec(),
        }
    }

    /// Number of sequences.
    pub fn num_seqs(&self) -> usize {
        self.seq_offsets.len().saturating_sub(1)
    }

    /// Total residues held.
    pub fn total_residues(&self) -> u64 {
        self.seq.len() as u64
    }

    /// Total bytes of all buffers (memory footprint; equals the bytes read
    /// from the file system to build it, minus the index slices).
    pub fn data_bytes(&self) -> u64 {
        (self.seq.len() + self.hdr.len() + 16 * self.seq_offsets.len()) as u64
    }

    /// Residues of a subject by *global* oid.
    pub fn residues_of(&self, oid: u32) -> Option<&[u8]> {
        let local = (oid as u64).checked_sub(self.base_oid)? as usize;
        if local >= self.num_seqs() {
            return None;
        }
        Some(&self.seq[self.seq_offsets[local] as usize..self.seq_offsets[local + 1] as usize])
    }

    /// Defline bytes of a subject by global oid.
    pub fn defline_of(&self, oid: u32) -> Option<&[u8]> {
        let local = (oid as u64).checked_sub(self.base_oid)? as usize;
        if local >= self.num_seqs() {
            return None;
        }
        Some(&self.hdr[self.hdr_offsets[local] as usize..self.hdr_offsets[local + 1] as usize])
    }
}

/// Decode a slice of the fixed-stride offset table, rebasing so the first
/// entry is zero.
fn decode_rebased_table(bytes: &[u8], what: &'static str) -> Result<Vec<u64>, CodecError> {
    if !bytes.len().is_multiple_of(8) || bytes.is_empty() {
        return Err(CodecError::BadValue { what });
    }
    let base = u64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("exact chunks"));
        if v < base {
            return Err(CodecError::BadValue { what });
        }
        out.push(v - base);
    }
    Ok(out)
}

impl SubjectSource for FragmentData {
    fn num_subjects(&self) -> usize {
        self.num_seqs()
    }

    fn subject(&self, i: usize) -> SubjectView<'_> {
        SubjectView {
            oid: (self.base_oid + i as u64) as u32,
            residues: &self.seq[self.seq_offsets[i] as usize..self.seq_offsets[i + 1] as usize],
            defline: &self.hdr[self.hdr_offsets[i] as usize..self.hdr_offsets[i + 1] as usize],
        }
    }
}

/// Reconstruct a volume's full index from bytes (convenience re-export
/// point for apps that read the whole `.idx` file).
pub fn decode_index(idx_bytes: &[u8]) -> Result<VolumeIndex, CodecError> {
    VolumeIndex::decode(idx_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formatdb::{format_records, FormatDbConfig};
    use crate::frag::virtual_fragments;
    use blast_core::seq::SeqRecord;

    fn make_db() -> crate::formatdb::FormattedDb {
        let recs: Vec<SeqRecord> = (0..6)
            .map(|i| SeqRecord {
                defline: format!("gi|{i}| protein number {i}"),
                residues: (0..(10 + i * 3)).map(|j| ((i + j) % 20) as u8).collect(),
                molecule: Molecule::Protein,
            })
            .collect();
        format_records(&recs, &FormatDbConfig::protein("rdb"))
    }

    #[test]
    fn from_volume_exposes_all_subjects() {
        let db = make_db();
        let frag = FragmentData::from_volume(&db.volumes[0]);
        assert_eq!(frag.num_subjects(), 6);
        let s = frag.subject(2);
        assert_eq!(s.oid, 2);
        assert_eq!(s.residues.len(), 16);
        assert_eq!(s.defline, b"gi|2| protein number 2");
    }

    #[test]
    fn ranged_read_path_matches_local_slice_path() {
        let db = make_db();
        let vol = &db.volumes[0];
        let indexes = vec![&vol.index];
        for n in [1, 2, 3] {
            for spec in virtual_fragments(&indexes, n) {
                let reference = FragmentData::from_volume_slice(vol, &spec);
                // Simulate the four ranged reads a pioBLAST worker issues.
                let idx_seq =
                    &vol.idx[spec.idx_seq_range.0 as usize..spec.idx_seq_range.1 as usize];
                let idx_hdr =
                    &vol.idx[spec.idx_hdr_range.0 as usize..spec.idx_hdr_range.1 as usize];
                let seq = vol.seq[spec.seq_range.0 as usize..spec.seq_range.1 as usize].to_vec();
                let hdr = vol.hdr[spec.hdr_range.0 as usize..spec.hdr_range.1 as usize].to_vec();
                let from_ranges = FragmentData::from_ranges(
                    Molecule::Protein,
                    spec.base_oid,
                    idx_seq,
                    idx_hdr,
                    seq,
                    hdr,
                )
                .unwrap();
                assert_eq!(from_ranges, reference, "n = {n}, spec = {spec:?}");
            }
        }
    }

    #[test]
    fn oid_lookups_respect_base() {
        let db = make_db();
        let vol = &db.volumes[0];
        let indexes = vec![&vol.index];
        let specs = virtual_fragments(&indexes, 2);
        let frag = FragmentData::from_volume_slice(vol, &specs[1]);
        let first_oid = specs[1].base_oid as u32;
        assert!(frag.residues_of(first_oid).is_some());
        assert!(frag.residues_of(first_oid.wrapping_sub(1)).is_none());
        assert!(frag.defline_of(first_oid).unwrap().starts_with(b"gi|"));
        let past = (specs[1].base_oid + specs[1].num_seqs()) as u32;
        assert!(frag.residues_of(past).is_none());
    }

    #[test]
    fn corrupted_tables_are_rejected() {
        assert!(decode_rebased_table(&[1, 2, 3], "x").is_err());
        assert!(decode_rebased_table(&[], "x").is_err());
        // Decreasing offsets are invalid.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&10u64.to_le_bytes());
        bytes.extend_from_slice(&5u64.to_le_bytes());
        assert!(decode_rebased_table(&bytes, "x").is_err());
    }

    #[test]
    fn mismatched_data_length_is_rejected() {
        let db = make_db();
        let vol = &db.volumes[0];
        let spec = virtual_fragments(&[&vol.index], 1)[0];
        let idx_seq = &vol.idx[spec.idx_seq_range.0 as usize..spec.idx_seq_range.1 as usize];
        let idx_hdr = &vol.idx[spec.idx_hdr_range.0 as usize..spec.idx_hdr_range.1 as usize];
        let result = FragmentData::from_ranges(
            Molecule::Protein,
            0,
            idx_seq,
            idx_hdr,
            vec![0u8; 3], // wrong length
            vol.hdr.clone(),
        );
        assert!(result.is_err());
    }
}
