//! The `formatdb` equivalent: raw FASTA -> indexed volumes.
//!
//! Mirrors NCBI `formatdb` (and therefore the first half of mpiBLAST's
//! `mpiformatdb`): scan the raw database once, encode residues, and emit
//! one or more indexed volumes plus an alias file. Volumes are split when
//! a residue cap is exceeded, the way formatdb splits the multi-gigabyte
//! `nt` database — the case the paper's §4 discusses.

use blast_core::alphabet::Molecule;
use blast_core::fasta::{self, FastaError};
use blast_core::seq::SeqRecord;
use blast_core::stats::DbStats;

use crate::volume::{AliasFile, EncodedVolume, VolumeIndex, EXT_ALIAS};

/// Configuration for a formatting run.
#[derive(Debug, Clone)]
pub struct FormatDbConfig {
    /// Database title (also the output base name).
    pub title: String,
    /// Molecule type of the input.
    pub molecule: Molecule,
    /// Split volumes when they would exceed this many residues
    /// (`None` = single volume, like formatdb on a small database).
    pub volume_residue_cap: Option<u64>,
}

impl FormatDbConfig {
    /// Single-volume protein database.
    pub fn protein(title: impl Into<String>) -> FormatDbConfig {
        FormatDbConfig {
            title: title.into(),
            molecule: Molecule::Protein,
            volume_residue_cap: None,
        }
    }
}

/// A fully formatted database: all volumes plus the alias file.
#[derive(Debug, Clone)]
pub struct FormattedDb {
    /// Alias describing the volume set.
    pub alias: AliasFile,
    /// Volumes in oid order.
    pub volumes: Vec<EncodedVolume>,
}

impl FormattedDb {
    /// Whole-database statistics.
    pub fn stats(&self) -> DbStats {
        self.alias.global_stats
    }

    /// Every output file as `(name, contents)`, alias first.
    pub fn files(&self) -> Vec<(String, Vec<u8>)> {
        let mut out = vec![(
            format!("{}.{}", self.alias.title, EXT_ALIAS),
            self.alias.encode(),
        )];
        for v in &self.volumes {
            for (name, bytes) in v.files() {
                out.push((name, bytes.to_vec()));
            }
        }
        out
    }

    /// Total bytes across all output files.
    pub fn total_bytes(&self) -> u64 {
        self.files().iter().map(|(_, b)| b.len() as u64).sum()
    }
}

/// Format already-parsed records.
pub fn format_records(records: &[SeqRecord], cfg: &FormatDbConfig) -> FormattedDb {
    let global_stats = DbStats {
        num_sequences: records.len() as u64,
        total_residues: records.iter().map(|r| r.len() as u64).sum(),
    };

    // Split records into volumes by the residue cap.
    let mut volume_ranges: Vec<(usize, usize)> = Vec::new();
    match cfg.volume_residue_cap {
        None => volume_ranges.push((0, records.len())),
        Some(cap) => {
            let cap = cap.max(1);
            let mut start = 0usize;
            let mut acc = 0u64;
            for (i, r) in records.iter().enumerate() {
                let len = r.len() as u64;
                if acc > 0 && acc + len > cap {
                    volume_ranges.push((start, i));
                    start = i;
                    acc = 0;
                }
                acc += len;
            }
            if start < records.len() || volume_ranges.is_empty() {
                volume_ranges.push((start, records.len()));
            }
        }
    }

    let multi = volume_ranges.len() > 1;
    let mut volumes = Vec::with_capacity(volume_ranges.len());
    let mut base_oid = 0u64;
    for (vi, &(lo, hi)) in volume_ranges.iter().enumerate() {
        let slice = &records[lo..hi];
        let name = if multi {
            format!("{}.{:02}", cfg.title, vi)
        } else {
            cfg.title.clone()
        };
        volumes.push(encode_volume(
            &name,
            &cfg.title,
            cfg.molecule,
            base_oid,
            slice,
            global_stats,
        ));
        base_oid += slice.len() as u64;
    }

    let alias = AliasFile {
        title: cfg.title.clone(),
        molecule: cfg.molecule,
        volumes: volumes.iter().map(|v| v.name.clone()).collect(),
        global_stats,
    };
    FormattedDb { alias, volumes }
}

/// Format records with *explicit* volume boundaries — one input slice
/// per volume — instead of splitting by a residue cap. This is what the
/// multi-volume synthesis sweep uses: each volume's record set (and
/// therefore its size and length distribution) is chosen by the
/// generator, and the formatter must not re-draw the boundaries.
/// `cfg.volume_residue_cap` is ignored. Oids stay continuous across
/// volumes, exactly as with cap-based splitting.
pub fn format_volumes(per_volume: &[Vec<SeqRecord>], cfg: &FormatDbConfig) -> FormattedDb {
    let global_stats = DbStats {
        num_sequences: per_volume.iter().map(|v| v.len() as u64).sum(),
        total_residues: per_volume
            .iter()
            .flat_map(|v| v.iter())
            .map(|r| r.len() as u64)
            .sum(),
    };
    let empty: Vec<SeqRecord> = Vec::new();
    let slices: Vec<&Vec<SeqRecord>> = if per_volume.is_empty() {
        vec![&empty]
    } else {
        per_volume.iter().collect()
    };
    let multi = slices.len() > 1;
    let mut volumes = Vec::with_capacity(slices.len());
    let mut base_oid = 0u64;
    for (vi, slice) in slices.iter().enumerate() {
        let name = if multi {
            format!("{}.{:02}", cfg.title, vi)
        } else {
            cfg.title.clone()
        };
        volumes.push(encode_volume(
            &name,
            &cfg.title,
            cfg.molecule,
            base_oid,
            slice,
            global_stats,
        ));
        base_oid += slice.len() as u64;
    }
    let alias = AliasFile {
        title: cfg.title.clone(),
        molecule: cfg.molecule,
        volumes: volumes.iter().map(|v| v.name.clone()).collect(),
        global_stats,
    };
    FormattedDb { alias, volumes }
}

/// Format raw FASTA text.
pub fn format_fasta(text: &[u8], cfg: &FormatDbConfig) -> Result<FormattedDb, FastaError> {
    let records = fasta::parse(cfg.molecule, text)?;
    Ok(format_records(&records, cfg))
}

fn encode_volume(
    name: &str,
    title: &str,
    molecule: Molecule,
    base_oid: u64,
    records: &[SeqRecord],
    global_stats: DbStats,
) -> EncodedVolume {
    let mut seq = Vec::new();
    let mut hdr = Vec::new();
    let mut seq_offsets = Vec::with_capacity(records.len() + 1);
    let mut hdr_offsets = Vec::with_capacity(records.len() + 1);
    seq_offsets.push(0u64);
    hdr_offsets.push(0u64);
    for r in records {
        seq.extend_from_slice(&r.residues);
        hdr.extend_from_slice(r.defline.as_bytes());
        seq_offsets.push(seq.len() as u64);
        hdr_offsets.push(hdr.len() as u64);
    }
    let index = VolumeIndex {
        molecule,
        title: title.to_string(),
        base_oid,
        volume_stats: DbStats {
            num_sequences: records.len() as u64,
            total_residues: seq.len() as u64,
        },
        global_stats,
        seq_offsets,
        hdr_offsets,
    };
    EncodedVolume {
        name: name.to_string(),
        idx: index.encode(),
        seq,
        hdr,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize, len: usize) -> Vec<SeqRecord> {
        (0..n)
            .map(|i| SeqRecord {
                defline: format!("gi|{i}| synthetic {i}"),
                residues: vec![(i % 20) as u8; len],
                molecule: Molecule::Protein,
            })
            .collect()
    }

    #[test]
    fn single_volume_round_trip() {
        let recs = records(5, 10);
        let db = format_records(&recs, &FormatDbConfig::protein("testdb"));
        assert_eq!(db.volumes.len(), 1);
        let v = &db.volumes[0];
        assert_eq!(v.name, "testdb");
        assert_eq!(v.index.num_seqs(), 5);
        assert_eq!(v.index.global_stats.total_residues, 50);
        // Index bytes decode back to the same index.
        let back = VolumeIndex::decode(&v.idx).unwrap();
        assert_eq!(back, v.index);
        // Residues of sequence 3 are recoverable through the offsets.
        let s = v.index.seq_offsets[3] as usize;
        let e = v.index.seq_offsets[4] as usize;
        assert_eq!(&v.seq[s..e], &recs[3].residues[..]);
        let s = v.index.hdr_offsets[3] as usize;
        let e = v.index.hdr_offsets[4] as usize;
        assert_eq!(&v.hdr[s..e], recs[3].defline.as_bytes());
    }

    #[test]
    fn volume_cap_splits() {
        let recs = records(10, 10); // 100 residues
        let cfg = FormatDbConfig {
            title: "big".into(),
            molecule: Molecule::Protein,
            volume_residue_cap: Some(35),
        };
        let db = format_records(&recs, &cfg);
        assert!(db.volumes.len() >= 3, "got {} volumes", db.volumes.len());
        // Volumes chain base oids and cover everything exactly once.
        let mut oid = 0u64;
        for v in &db.volumes {
            assert_eq!(v.index.base_oid, oid);
            assert!(v.index.volume_stats.total_residues <= 35);
            oid += v.index.volume_stats.num_sequences;
        }
        assert_eq!(oid, 10);
        assert_eq!(db.alias.volumes.len(), db.volumes.len());
        assert!(db.volumes[0].name.starts_with("big.0"));
    }

    #[test]
    fn sequence_longer_than_cap_still_fits_one_volume() {
        let recs = records(2, 100);
        let cfg = FormatDbConfig {
            title: "huge".into(),
            molecule: Molecule::Protein,
            volume_residue_cap: Some(10),
        };
        let db = format_records(&recs, &cfg);
        assert_eq!(db.volumes.len(), 2);
        assert_eq!(db.stats().num_sequences, 2);
    }

    #[test]
    fn format_fasta_end_to_end() {
        let db = format_fasta(
            b">a one\nMKVL\n>b two\nACDEFG\n",
            &FormatDbConfig::protein("mini"),
        )
        .unwrap();
        assert_eq!(db.stats().num_sequences, 2);
        assert_eq!(db.stats().total_residues, 10);
        let files = db.files();
        assert_eq!(files.len(), 4); // alias + idx/seq/hdr
        assert!(files[0].0.ends_with(".al"));
    }

    #[test]
    fn empty_database_formats() {
        let db = format_records(&[], &FormatDbConfig::protein("empty"));
        assert_eq!(db.volumes.len(), 1);
        assert_eq!(db.volumes[0].index.num_seqs(), 0);
        assert_eq!(db.stats().total_residues, 0);
    }
}
