//! Property-based tests of the file-system contention model.

use parafs::{FsProfile, SimFs};
use proptest::prelude::*;
use simcluster::{Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any pattern of concurrent staggered reads, (a) every byte
    /// requested is delivered exactly once (conservation), and (b) no
    /// transfer finishes faster than the uncontended bound or slower than
    /// the fully-serialized bound.
    #[test]
    fn processor_sharing_bounds_hold(
        sizes in prop::collection::vec(10_000u64..2_000_000, 2..8),
        delays_ms in prop::collection::vec(0u64..50, 2..8),
    ) {
        let n = sizes.len().min(delays_ms.len());
        let sizes = sizes[..n].to_vec();
        let delays = delays_ms[..n].to_vec();
        let profile = FsProfile {
            per_client_bw: 100.0e6,
            aggregate_bw: 250.0e6,
            op_latency: 0.0005,
        };
        let total: u64 = sizes.iter().sum();
        let sim = Sim::new(n);
        let fs = SimFs::new(sim.handle(), "prop", profile);
        fs.preload("f", vec![0u8; total as usize]);
        let offsets: Vec<u64> = sizes
            .iter()
            .scan(0u64, |acc, &s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let sizes2 = sizes.clone();
        let delays2 = delays.clone();
        let offsets2 = offsets.clone();
        let fs2 = fs.clone();
        let out = sim.run(move |ctx| {
            let r = ctx.rank();
            ctx.charge(SimDuration::from_millis(delays2[r]));
            let start = ctx.now();
            let data = fs2.read_at(&ctx, "f", offsets2[r], sizes2[r]).unwrap();
            assert_eq!(data.len() as u64, sizes2[r]);
            (start.as_secs_f64(), ctx.now().as_secs_f64())
        });
        // Conservation.
        prop_assert_eq!(fs.counters().bytes_read, total);
        // Per-transfer bounds.
        for (r, &(start, end)) in out.outputs.iter().enumerate() {
            let dur = end - start;
            let floor = profile.op_latency + sizes[r] as f64 / profile.per_client_bw;
            // Upper bound: latency + everything serialized through the
            // aggregate pipe (loose but always valid).
            let ceil = profile.op_latency + total as f64 / profile.aggregate_bw
                + 0.05 /* staggering slack */;
            prop_assert!(dur >= floor - 1e-9, "rank {r}: {dur} < floor {floor}");
            prop_assert!(dur <= ceil + 1e-9, "rank {r}: {dur} > ceil {ceil}");
        }
    }

    /// Writes then reads round-trip arbitrary interleaved chunks.
    #[test]
    fn write_read_round_trip(
        chunks in prop::collection::vec((0u64..5_000, 1usize..400), 1..20),
    ) {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "prop", FsProfile::altix_xfs());
        let chunks2 = chunks.clone();
        let fs2 = fs.clone();
        sim.run(move |ctx| {
            let mut mirror: Vec<u8> = Vec::new();
            for (i, &(off, len)) in chunks2.iter().enumerate() {
                let data = vec![(i % 251) as u8; len];
                fs2.write_at(&ctx, "f", off, &data).unwrap();
                let end = off as usize + len;
                if mirror.len() < end {
                    mirror.resize(end, 0);
                }
                mirror[off as usize..end].copy_from_slice(&data);
            }
            let got = fs2.read_all(&ctx, "f").unwrap();
            assert_eq!(got, mirror);
        });
    }
}
