//! # parafs
//!
//! Simulated cluster file systems for the pioBLAST reproduction: an
//! in-memory object [`store`] behind a processor-sharing bandwidth
//! contention model ([`fs::SimFs`]), parameterized by [`profile`]s that
//! model the paper's two platforms — XFS on the ORNL SGI Altix (high
//! aggregate bandwidth, collective writes scale) and NFS on the NCSU
//! blade cluster (a single saturated server, concurrent clients mostly
//! serialize). Node-local disks are just private `SimFs` instances with
//! the `local_disk` profile.

#![warn(missing_docs)]

pub mod fs;
pub mod profile;
pub mod store;

pub use fs::{AsyncIo, FsCounters, SimFs};
pub use profile::{ClassTally, FsProfile, IoClass};
pub use store::{FileStore, StoreError};
