//! File-system performance profiles.
//!
//! The paper's two platforms differ almost entirely in their shared file
//! systems: the ORNL Altix ("Ram") ran XFS with high aggregate bandwidth,
//! while the NCSU blade cluster shared an NFS server that collapses under
//! concurrent clients. These profiles parameterize the contention model in
//! [`crate::fs::SimFs`].

/// The access-strategy class an I/O-plane request was serviced under.
///
/// The I/O plane (`mpiio`) attributes every logical request it services
/// to one of these classes so benches can break file-system traffic
/// down by strategy (see [`crate::fs::SimFs::class_tally`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// One file-system operation per view region.
    Independent,
    /// Data-sieved: regions coalesced across small holes.
    Sieved,
    /// Two-phase collective: aggregator ranks issue the transfers.
    TwoPhase,
}

impl IoClass {
    /// Every class, in a fixed order (for iteration/reporting).
    pub const ALL: [IoClass; 3] = [IoClass::Independent, IoClass::Sieved, IoClass::TwoPhase];

    /// A stable lowercase label (used in bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            IoClass::Independent => "independent",
            IoClass::Sieved => "sieve",
            IoClass::TwoPhase => "two-phase",
        }
    }

    /// The `tracelog` registry keys this class tallies under:
    /// `(io.<class>.requests, io.<class>.bytes)`.
    pub fn counter_keys(self) -> (&'static str, &'static str) {
        match self {
            IoClass::Independent => ("io.independent.requests", "io.independent.bytes"),
            IoClass::Sieved => ("io.sieve.requests", "io.sieve.bytes"),
            IoClass::TwoPhase => ("io.two-phase.requests", "io.two-phase.bytes"),
        }
    }
}

/// Logical traffic attributed to one [`IoClass`]: how many view regions
/// were posted through that strategy and how many bytes they covered.
/// (Physical operation counts live in [`crate::fs::FsCounters`]; the
/// gap between the two is exactly what aggregation buys.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Logical noncontiguous regions posted.
    pub requests: u64,
    /// Bytes those regions covered.
    pub bytes: u64,
}

/// Performance parameters of a (simulated) file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsProfile {
    /// Maximum transfer bandwidth one client stream can get (bytes/s).
    pub per_client_bw: f64,
    /// Total bandwidth shared by all concurrent streams (bytes/s).
    pub aggregate_bw: f64,
    /// Fixed latency charged per operation (metadata or data), seconds.
    pub op_latency: f64,
}

impl FsProfile {
    /// XFS on the SGI Altix: striped, high aggregate throughput; many
    /// clients can stream concurrently before saturating.
    pub fn altix_xfs() -> FsProfile {
        FsProfile {
            per_client_bw: 400.0e6,
            aggregate_bw: 3.2e9,
            op_latency: 300e-6,
        }
    }

    /// NFS on the NCSU blade cluster: a single server; per-client speed is
    /// modest and the aggregate cap is barely above it, so concurrent
    /// clients mostly serialize.
    pub fn blade_nfs() -> FsProfile {
        FsProfile {
            per_client_bw: 60.0e6,
            aggregate_bw: 90.0e6,
            op_latency: 2.0e-3,
        }
    }

    /// A node-local IDE/SCSI disk of the era (the blades' 40 GB disks).
    pub fn local_disk() -> FsProfile {
        FsProfile {
            per_client_bw: 50.0e6,
            aggregate_bw: 50.0e6,
            op_latency: 1.0e-3,
        }
    }

    /// An S3/Ceph-class parallel object store: any one client stream is
    /// modest, but the striped backend aggregates to tens of GB/s, so
    /// hundreds of clients can read concurrently without serializing.
    /// Each request pays HTTP-scale overhead rather than a syscall.
    pub fn object_store() -> FsProfile {
        FsProfile {
            per_client_bw: 250.0e6,
            aggregate_bw: 25.0e9,
            op_latency: 8.0e-3,
        }
    }

    /// A shared file system mounted across sites: streaming bandwidth is
    /// tolerable once established, but every operation pays a WAN round
    /// trip of tens of milliseconds.
    pub fn wan_shared() -> FsProfile {
        FsProfile {
            per_client_bw: 80.0e6,
            aggregate_bw: 400.0e6,
            op_latency: 45.0e-3,
        }
    }

    /// Effective per-stream bandwidth when `n` streams are active.
    pub fn stream_bw(&self, n: usize) -> f64 {
        debug_assert!(n > 0);
        self.per_client_bw.min(self.aggregate_bw / n as f64)
    }

    /// Seconds to move `bytes` as the only active stream (plus latency).
    pub fn solo_seconds(&self, bytes: u64) -> f64 {
        self.op_latency + bytes as f64 / self.per_client_bw.min(self.aggregate_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfs_scales_with_clients_nfs_does_not() {
        let xfs = FsProfile::altix_xfs();
        let nfs = FsProfile::blade_nfs();
        // With 8 clients XFS still gives each its full stream rate.
        assert_eq!(xfs.stream_bw(8), xfs.per_client_bw);
        // NFS is already aggregate-bound at 2 clients.
        assert!(nfs.stream_bw(2) < nfs.per_client_bw);
        assert!((nfs.stream_bw(30) - 3.0e6).abs() < 1.0);
    }

    #[test]
    fn solo_seconds_includes_latency() {
        let p = FsProfile {
            per_client_bw: 100.0,
            aggregate_bw: 1000.0,
            op_latency: 0.5,
        };
        assert!((p.solo_seconds(100) - 1.5).abs() < 1e-12);
    }
}
