//! The in-memory object store backing a simulated file system.

use std::collections::BTreeMap;

/// A flat namespace of files (paths are plain strings; `/`-separated
/// prefixes act as directories for listing purposes).
#[derive(Debug, Default, Clone)]
pub struct FileStore {
    files: BTreeMap<String, Vec<u8>>,
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named file does not exist.
    NotFound {
        /// The requested path.
        path: String,
    },
    /// A ranged read fell outside the file.
    OutOfRange {
        /// The requested path.
        path: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// A write would grow the file system past its configured capacity
    /// (see [`crate::fs::SimFs::set_capacity`]). The write did not land.
    NoSpace {
        /// The path being written.
        path: String,
        /// Bytes the write would have added.
        needed: u64,
        /// Bytes still free under the capacity.
        free: u64,
    },
    /// Bytes that should decode as a known on-disk or on-wire structure
    /// did not (produced by layers above the store, e.g. the I/O plane's
    /// view-bundle decoder).
    Corrupt {
        /// What failed to decode.
        what: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound { path } => write!(f, "file not found: {path}"),
            StoreError::OutOfRange {
                path,
                offset,
                len,
                size,
            } => write!(
                f,
                "read [{offset}, {offset}+{len}) out of range for {path} (size {size})"
            ),
            StoreError::NoSpace { path, needed, free } => write!(
                f,
                "file system full writing {path} (needs {needed} more bytes, {free} free)"
            ),
            StoreError::Corrupt { what } => write!(f, "corrupt data: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl FileStore {
    /// An empty store.
    pub fn new() -> FileStore {
        FileStore::default()
    }

    /// Create or truncate a file.
    pub fn create(&mut self, path: &str) {
        self.files.insert(path.to_string(), Vec::new());
    }

    /// Replace a file's entire contents.
    pub fn put(&mut self, path: &str, data: Vec<u8>) {
        self.files.insert(path.to_string(), data);
    }

    /// Whether the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// File size, if it exists.
    pub fn len(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|d| d.len() as u64)
    }

    /// Whether the store holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Read `len` bytes at `offset`.
    pub fn read_at(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let data = self.files.get(path).ok_or_else(|| StoreError::NotFound {
            path: path.to_string(),
        })?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len() as u64)
            .ok_or_else(|| StoreError::OutOfRange {
                path: path.to_string(),
                offset,
                len,
                size: data.len() as u64,
            })?;
        Ok(data[offset as usize..end as usize].to_vec())
    }

    /// Read a whole file.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, StoreError> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| StoreError::NotFound {
                path: path.to_string(),
            })
    }

    /// Write at `offset`, zero-padding any gap and extending as needed.
    /// Creates the file if absent (like O_CREAT).
    pub fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) {
        let file = self.files.entry(path.to_string()).or_default();
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
    }

    /// Delete a file.
    pub fn delete(&mut self, path: &str) -> Result<(), StoreError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound {
                path: path.to_string(),
            })
    }

    /// Paths starting with `prefix`, in lexicographic order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|d| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_read_round_trip() {
        let mut s = FileStore::new();
        s.put("a/b.txt", b"hello world".to_vec());
        assert_eq!(s.read_all("a/b.txt").unwrap(), b"hello world");
        assert_eq!(s.read_at("a/b.txt", 6, 5).unwrap(), b"world");
        assert_eq!(s.len("a/b.txt"), Some(11));
    }

    #[test]
    fn missing_file_errors() {
        let s = FileStore::new();
        assert!(matches!(
            s.read_all("nope").unwrap_err(),
            StoreError::NotFound { .. }
        ));
        assert_eq!(s.len("nope"), None);
    }

    #[test]
    fn out_of_range_read_errors() {
        let mut s = FileStore::new();
        s.put("f", vec![1, 2, 3]);
        assert!(matches!(
            s.read_at("f", 2, 5).unwrap_err(),
            StoreError::OutOfRange { size: 3, .. }
        ));
        // Overflowing offset+len is also caught.
        assert!(s.read_at("f", u64::MAX, 2).is_err());
    }

    #[test]
    fn write_at_extends_and_pads() {
        let mut s = FileStore::new();
        s.write_at("f", 4, b"abc");
        assert_eq!(s.read_all("f").unwrap(), vec![0, 0, 0, 0, b'a', b'b', b'c']);
        s.write_at("f", 0, b"zz");
        assert_eq!(s.read_at("f", 0, 2).unwrap(), b"zz");
        assert_eq!(s.len("f"), Some(7));
    }

    #[test]
    fn list_prefix_is_ordered_and_scoped() {
        let mut s = FileStore::new();
        s.create("db/nr.idx");
        s.create("db/nr.seq");
        s.create("out/result");
        assert_eq!(s.list_prefix("db/"), vec!["db/nr.idx", "db/nr.seq"]);
        assert!(s.list_prefix("zzz").is_empty());
    }

    #[test]
    fn delete_removes() {
        let mut s = FileStore::new();
        s.create("x");
        assert!(s.delete("x").is_ok());
        assert!(!s.exists("x"));
        assert!(s.delete("x").is_err());
    }

    #[test]
    fn total_bytes_sums() {
        let mut s = FileStore::new();
        s.put("a", vec![0; 10]);
        s.put("b", vec![0; 5]);
        assert_eq!(s.total_bytes(), 15);
    }
}
