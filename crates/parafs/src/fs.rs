//! The simulated file system: an object store behind a processor-sharing
//! bandwidth model.
//!
//! Every data transfer (read or write) becomes an *active stream*. At any
//! instant, each of the `n` active streams proceeds at
//! `min(per_client_bw, aggregate_bw / n)`. Whenever the active set changes
//! — a stream starts or finishes — the model retimes every pending
//! stream's completion and reschedules its owner's wake in the discrete-
//! event engine. This is the standard fluid model of shared-storage
//! contention, and it is what makes the XFS and NFS profiles reproduce
//! the paper's Figure 3 vs Figure 4 contrast.

use std::sync::Arc;

use parking_lot::Mutex;
use simcluster::{RankCtx, SimDuration, SimHandle, SimTime, WakeId};

use crate::profile::{ClassTally, FsProfile, IoClass};
use crate::store::{FileStore, StoreError};

/// Byte-level counters for one file system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsCounters {
    /// Bytes moved by reads.
    pub bytes_read: u64,
    /// Bytes moved by writes.
    pub bytes_written: u64,
    /// Data operations issued.
    pub data_ops: u64,
    /// Metadata operations issued.
    pub meta_ops: u64,
}

struct Stream {
    rank: usize,
    remaining: f64,
    rate: f64,
    wake: Option<WakeId>,
    /// Detached in-flight op this stream belongs to; `None` means the
    /// owner rank is blocked in [`SimFs::transfer`] and its wake resumes
    /// it directly.
    async_op: Option<AsyncCell>,
}

/// What an asynchronous operation does to the store when its transfer
/// completes.
#[derive(Clone)]
enum AsyncAction {
    Read {
        path: String,
        offset: u64,
        len: u64,
    },
    Write {
        path: String,
        offset: u64,
        data: Arc<Vec<u8>>,
    },
}

/// The completion state shared between an [`AsyncIo`] token and the
/// stream/callbacks driving it.
struct AsyncState {
    result: Option<Result<Vec<u8>, StoreError>>,
    /// Rank blocked in [`SimFs::io_wait`], woken on completion.
    waiter: Option<usize>,
}

#[derive(Clone)]
struct AsyncCell {
    shared: Arc<Mutex<AsyncState>>,
    action: AsyncAction,
}

/// An in-flight asynchronous file-system operation.
///
/// Obtained from [`SimFs::read_at_begin`] / [`SimFs::write_at_begin`];
/// the transfer proceeds in virtual time while the owner rank keeps
/// computing, and [`SimFs::io_wait`] joins it (consuming the token, so
/// an op cannot be waited twice). Ops are modeled as scheduled engine
/// callbacks: the operation latency and the contended transfer both
/// elapse in flight, and the store mutation (or read snapshot) lands at
/// completion time — a killed owner's write therefore never lands,
/// exactly like a rank killed mid-`transfer` on the synchronous path.
pub struct AsyncIo {
    shared: Arc<Mutex<AsyncState>>,
    issued: SimTime,
    bytes: u64,
}

impl AsyncIo {
    /// Virtual time the operation was issued.
    pub fn issued_at(&self) -> SimTime {
        self.issued
    }

    /// Bytes the operation transfers.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the operation has already completed (its wait would not
    /// block).
    pub fn is_done(&self) -> bool {
        self.shared.lock().result.is_some()
    }
}

struct FsState {
    store: FileStore,
    streams: Vec<Stream>,
    last_update: SimTime,
    counters: FsCounters,
    /// Optional total-bytes capacity; a write that would grow the store
    /// past it fails with [`StoreError::NoSpace`].
    capacity: Option<u64>,
    /// Per-strategy logical traffic, keyed `io.<class>.requests` /
    /// `io.<class>.bytes` — stored in the `tracelog` registry type so
    /// the I/O tallies share one accounting path with phase timing.
    class_counters: tracelog::Counters,
}

impl FsState {
    /// Land a write into the store, honoring the capacity limit.
    fn land_write(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        if let Some(cap) = self.capacity {
            let end = offset + data.len() as u64;
            let growth = end.saturating_sub(self.store.len(path).unwrap_or(0));
            let used = self.store.total_bytes();
            if used + growth > cap {
                return Err(StoreError::NoSpace {
                    path: path.to_string(),
                    needed: growth,
                    free: cap.saturating_sub(used),
                });
            }
        }
        self.counters.bytes_written += data.len() as u64;
        self.counters.data_ops += 1;
        self.store.write_at(path, offset, data);
        Ok(())
    }
}

/// A simulated file system shared by all ranks (or private to one node,
/// depending on how it is used).
#[derive(Clone)]
pub struct SimFs {
    handle: SimHandle,
    profile: FsProfile,
    /// Display name for diagnostics.
    name: Arc<str>,
    state: Arc<Mutex<FsState>>,
}

impl SimFs {
    /// Create a file system on a simulation.
    pub fn new(handle: SimHandle, name: &str, profile: FsProfile) -> SimFs {
        SimFs {
            handle,
            profile,
            name: Arc::from(name),
            state: Arc::new(Mutex::new(FsState {
                store: FileStore::new(),
                streams: Vec::new(),
                last_update: SimTime::ZERO,
                counters: FsCounters::default(),
                capacity: None,
                class_counters: tracelog::Counters::new(),
            })),
        }
    }

    /// The profile in force.
    pub fn profile(&self) -> FsProfile {
        self.profile
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of the byte counters.
    pub fn counters(&self) -> FsCounters {
        self.state.lock().counters
    }

    /// Cap the store at `bytes` total: any write (sync or async) that
    /// would grow past the cap fails with [`StoreError::NoSpace`]
    /// instead of landing. Setup helpers ([`SimFs::preload`]) bypass
    /// the cap, so a test can stage a database and then let the run fill
    /// the remaining space.
    pub fn set_capacity(&self, bytes: u64) {
        self.state.lock().capacity = Some(bytes);
    }

    /// Attribute `requests` logical regions covering `bytes` to an
    /// access-strategy class (called by the I/O plane, once per request
    /// it services). The new cumulative totals are also sampled onto
    /// the calling rank's trace when a tracer is installed.
    pub fn note_class(&self, class: IoClass, requests: u64, bytes: u64) {
        let (req_key, bytes_key) = class.counter_keys();
        let (total_req, total_bytes) = {
            let mut st = self.state.lock();
            st.class_counters.add(req_key, requests);
            st.class_counters.add(bytes_key, bytes);
            (
                st.class_counters.get(req_key),
                st.class_counters.get(bytes_key),
            )
        };
        tracelog::counter(req_key, total_req);
        tracelog::counter(bytes_key, total_bytes);
    }

    /// The logical traffic attributed to one strategy class so far.
    pub fn class_tally(&self, class: IoClass) -> ClassTally {
        let st = self.state.lock();
        let (req_key, bytes_key) = class.counter_keys();
        ClassTally {
            requests: st.class_counters.get(req_key),
            bytes: st.class_counters.get(bytes_key),
        }
    }

    /// Snapshot of the per-class counter registry.
    pub fn class_counters(&self) -> tracelog::Counters {
        self.state.lock().class_counters.clone()
    }

    /// Pre-load a file outside simulated time (for run setup: "the
    /// formatted database is already on shared storage").
    pub fn preload(&self, path: &str, data: Vec<u8>) {
        self.state.lock().store.put(path, data);
    }

    /// Read a file's bytes outside simulated time (for post-run
    /// verification of outputs).
    pub fn peek(&self, path: &str) -> Result<Vec<u8>, StoreError> {
        self.state.lock().store.read_all(path)
    }

    /// List paths with a prefix outside simulated time.
    pub fn peek_list(&self, prefix: &str) -> Vec<String> {
        self.state.lock().store.list_prefix(prefix)
    }

    // ---- simulated operations (charge virtual time) ----

    /// Stat: returns the file size if it exists. Charges one metadata op.
    pub fn stat(&self, ctx: &RankCtx, path: &str) -> Option<u64> {
        self.meta_op(ctx);
        self.state.lock().store.len(path)
    }

    /// Create/truncate a file. Charges one metadata op.
    pub fn create(&self, ctx: &RankCtx, path: &str) {
        self.meta_op(ctx);
        let mut st = self.state.lock();
        st.store.create(path);
    }

    /// Delete a file. Charges one metadata op.
    pub fn delete(&self, ctx: &RankCtx, path: &str) -> Result<(), StoreError> {
        self.meta_op(ctx);
        self.state.lock().store.delete(path)
    }

    /// List files with a prefix. Charges one metadata op.
    pub fn list(&self, ctx: &RankCtx, prefix: &str) -> Vec<String> {
        self.meta_op(ctx);
        self.state.lock().store.list_prefix(prefix)
    }

    /// Read `len` bytes at `offset`, charging latency plus contended
    /// transfer time.
    pub fn read_at(
        &self,
        ctx: &RankCtx,
        path: &str,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        // Validate before charging transfer time, like a real EOF error.
        {
            let mut st = self.state.lock();
            st.counters.meta_ops += 1;
            let size = st.store.len(path).ok_or_else(|| StoreError::NotFound {
                path: path.to_string(),
            })?;
            if offset.checked_add(len).is_none_or(|e| e > size) {
                return Err(StoreError::OutOfRange {
                    path: path.to_string(),
                    offset,
                    len,
                    size,
                });
            }
        }
        let _span = tracelog::span_args(
            tracelog::Lane::Io,
            "fs.read",
            vec![("bytes", len.into()), ("offset", offset.into())],
        );
        ctx.charge(SimDuration::from_secs_f64(self.profile.op_latency));
        self.transfer(ctx, len);
        let mut st = self.state.lock();
        st.counters.bytes_read += len;
        st.counters.data_ops += 1;
        st.store.read_at(path, offset, len)
    }

    /// Read a whole file.
    pub fn read_all(&self, ctx: &RankCtx, path: &str) -> Result<Vec<u8>, StoreError> {
        let size = {
            let st = self.state.lock();
            st.store.len(path).ok_or_else(|| StoreError::NotFound {
                path: path.to_string(),
            })?
        };
        self.read_at(ctx, path, 0, size)
    }

    /// Write `data` at `offset`, charging latency plus contended transfer
    /// time. Creates/extends the file as needed. Fails with
    /// [`StoreError::NoSpace`] — after the transfer, like a real late
    /// `ENOSPC` — when a capacity is set and would be exceeded.
    pub fn write_at(
        &self,
        ctx: &RankCtx,
        path: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let _span = tracelog::span_args(
            tracelog::Lane::Io,
            "fs.write",
            vec![("bytes", data.len().into()), ("offset", offset.into())],
        );
        ctx.charge(SimDuration::from_secs_f64(self.profile.op_latency));
        self.transfer(ctx, data.len() as u64);
        self.state.lock().land_write(path, offset, data)
    }

    /// Replace a file's contents.
    pub fn write_all(&self, ctx: &RankCtx, path: &str, data: &[u8]) -> Result<(), StoreError> {
        self.create(ctx, path);
        self.write_at(ctx, path, 0, data)
    }

    // ---- asynchronous operations (in-flight while the rank computes) ----

    /// Begin an asynchronous read: validate the range (one metadata op),
    /// then return immediately with the transfer in flight. The op's
    /// latency and contended transfer elapse in virtual time via engine
    /// callbacks; join with [`SimFs::io_wait`].
    pub fn read_at_begin(
        &self,
        ctx: &RankCtx,
        path: &str,
        offset: u64,
        len: u64,
    ) -> Result<AsyncIo, StoreError> {
        {
            let mut st = self.state.lock();
            st.counters.meta_ops += 1;
            let size = st.store.len(path).ok_or_else(|| StoreError::NotFound {
                path: path.to_string(),
            })?;
            if offset.checked_add(len).is_none_or(|e| e > size) {
                return Err(StoreError::OutOfRange {
                    path: path.to_string(),
                    offset,
                    len,
                    size,
                });
            }
        }
        tracelog::instant(
            tracelog::Lane::Io,
            "fs.read.begin",
            vec![("bytes", len.into()), ("offset", offset.into())],
        );
        Ok(self.begin_async(
            ctx.rank(),
            len,
            AsyncAction::Read {
                path: path.to_string(),
                offset,
                len,
            },
        ))
    }

    /// Begin an asynchronous write; join with [`SimFs::io_wait`]. The
    /// store mutation lands at completion time, so a killed owner's
    /// write never lands and capacity is checked against the store as it
    /// is then.
    pub fn write_at_begin(&self, ctx: &RankCtx, path: &str, offset: u64, data: Vec<u8>) -> AsyncIo {
        tracelog::instant(
            tracelog::Lane::Io,
            "fs.write.begin",
            vec![("bytes", data.len().into()), ("offset", offset.into())],
        );
        let len = data.len() as u64;
        self.begin_async(
            ctx.rank(),
            len,
            AsyncAction::Write {
                path: path.to_string(),
                offset,
                data: Arc::new(data),
            },
        )
    }

    /// Block the calling rank until the op completes, returning the read
    /// bytes (empty for writes) or the completion error.
    pub fn io_wait(&self, ctx: &RankCtx, op: AsyncIo) -> Result<Vec<u8>, StoreError> {
        loop {
            {
                let mut a = op.shared.lock();
                if let Some(result) = a.result.take() {
                    return result;
                }
                a.waiter = Some(ctx.rank());
            }
            ctx.wait_woken();
        }
    }

    /// Issue the service-side machinery for one async op: a callback at
    /// `now + op_latency` (the request reaching the server) activates
    /// the transfer stream; its completion callback lands the result.
    fn begin_async(&self, rank: usize, bytes: u64, action: AsyncAction) -> AsyncIo {
        let shared = Arc::new(Mutex::new(AsyncState {
            result: None,
            waiter: None,
        }));
        let cell = AsyncCell {
            shared: Arc::clone(&shared),
            action,
        };
        let now = self.handle.now();
        let start = now + SimDuration::from_secs_f64(self.profile.op_latency);
        let fs = self.clone();
        self.handle.schedule_callback(start, move || {
            let mut st = fs.state.lock();
            let at = fs.handle.now();
            fs.settle(&mut st, at);
            st.streams.push(Stream {
                rank,
                remaining: bytes as f64,
                rate: 0.0,
                wake: None,
                async_op: Some(cell),
            });
            fs.retime(&mut st, at);
        });
        AsyncIo {
            shared,
            issued: now,
            bytes,
        }
    }

    /// Completion callback for a detached stream: remove it, land the
    /// action (unless the owner died mid-flight — crash-stop semantics),
    /// retime the survivors, and wake any joined waiter.
    fn finish_async(&self, shared: &Arc<Mutex<AsyncState>>) {
        let waiter = {
            let mut st = self.state.lock();
            let now = self.handle.now();
            self.settle(&mut st, now);
            let Some(idx) = st.streams.iter().position(|s| {
                s.async_op
                    .as_ref()
                    .is_some_and(|c| Arc::ptr_eq(&c.shared, shared))
            }) else {
                return;
            };
            if st.streams[idx].remaining > 0.5 {
                // Stale completion (should have been canceled): retime.
                self.retime(&mut st, now);
                return;
            }
            let stream = st.streams.swap_remove(idx);
            let cell = stream.async_op.expect("finish_async targets async streams");
            let result = if self.handle.is_dead(stream.rank) {
                // The owner was killed with the op in flight: discard the
                // effect, exactly as a rank killed inside `transfer`
                // never reaches its store mutation.
                Ok(Vec::new())
            } else {
                match &cell.action {
                    AsyncAction::Read { path, offset, len } => {
                        let r = st.store.read_at(path, *offset, *len);
                        if r.is_ok() {
                            st.counters.bytes_read += len;
                            st.counters.data_ops += 1;
                        }
                        r
                    }
                    AsyncAction::Write { path, offset, data } => {
                        st.land_write(path, *offset, data).map(|()| Vec::new())
                    }
                }
            };
            self.retime(&mut st, now);
            let mut a = cell.shared.lock();
            a.result = Some(result);
            a.waiter.take()
        };
        if let Some(rank) = waiter {
            let now = self.handle.now();
            self.handle.schedule_wake(rank, now);
        }
    }

    fn meta_op(&self, ctx: &RankCtx) {
        self.state.lock().counters.meta_ops += 1;
        ctx.charge(SimDuration::from_secs_f64(self.profile.op_latency));
    }

    /// Block the calling rank for the contended transfer of `bytes`.
    fn transfer(&self, ctx: &RankCtx, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let rank = ctx.rank();
        {
            let mut st = self.state.lock();
            let now = self.handle.now();
            debug_assert!(
                st.streams
                    .iter()
                    .all(|s| s.rank != rank || s.async_op.is_some()),
                "rank {rank} already blocked on a stream on {}",
                self.name
            );
            self.settle(&mut st, now);
            st.streams.push(Stream {
                rank,
                remaining: bytes as f64,
                rate: 0.0,
                wake: None,
                async_op: None,
            });
            self.retime(&mut st, now);
        }
        loop {
            ctx.wait_woken();
            let mut st = self.state.lock();
            let now = self.handle.now();
            self.settle(&mut st, now);
            let idx = st
                .streams
                .iter()
                .position(|s| s.rank == rank && s.async_op.is_none())
                .expect("stream vanished while owner was blocked");
            if st.streams[idx].remaining <= 0.5 {
                let done = st.streams.swap_remove(idx);
                if let Some(w) = done.wake {
                    self.handle.cancel_wake(w);
                }
                self.retime(&mut st, now);
                return;
            }
            // Spurious wake: make sure our completion is still scheduled.
            self.retime(&mut st, now);
        }
    }

    /// Advance every stream's remaining bytes to `now` at its current rate.
    fn settle(&self, st: &mut FsState, now: SimTime) {
        let dt = (now - st.last_update).as_secs_f64();
        if dt > 0.0 {
            for s in &mut st.streams {
                s.remaining = (s.remaining - s.rate * dt).max(0.0);
            }
        }
        st.last_update = now;
    }

    /// Recompute fair-share rates and reschedule every stream's
    /// completion: a wake for a blocked owner, a completion callback for
    /// a detached async stream.
    fn retime(&self, st: &mut FsState, now: SimTime) {
        let n = st.streams.len();
        if n == 0 {
            return;
        }
        let rate = self.profile.stream_bw(n);
        for s in &mut st.streams {
            s.rate = rate;
            if let Some(w) = s.wake.take() {
                self.handle.cancel_wake(w);
            }
            let finish = now + SimDuration::from_secs_f64(s.remaining / rate);
            s.wake = Some(match &s.async_op {
                None => self.handle.schedule_wake(s.rank, finish),
                Some(cell) => {
                    let fs = self.clone();
                    let shared = Arc::clone(&cell.shared);
                    self.handle
                        .schedule_callback(finish, move || fs.finish_async(&shared))
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::Sim;

    fn test_profile() -> FsProfile {
        FsProfile {
            per_client_bw: 100.0e6, // 100 MB/s per client
            aggregate_bw: 200.0e6,  // 200 MB/s total
            op_latency: 0.001,
        }
    }

    #[test]
    fn solo_read_takes_latency_plus_bandwidth_time() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![7u8; 100_000_000]);
        let out = sim.run(|ctx| {
            let data = fs.read_at(&ctx, "f", 0, 100_000_000).unwrap();
            assert_eq!(data.len(), 100_000_000);
            ctx.now()
        });
        // 1 ms latency + 1 s transfer at 100 MB/s.
        let t = out.outputs[0].as_secs_f64();
        assert!((t - 1.001).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn two_concurrent_readers_share_the_aggregate() {
        // 200 MB/s aggregate, 2 readers -> each gets its full 100 MB/s.
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 200_000_000]);
        let out = sim.run(|ctx| {
            fs.read_at(&ctx, "f", ctx.rank() as u64 * 100_000_000, 100_000_000)
                .unwrap();
            ctx.now().as_secs_f64()
        });
        for t in &out.outputs {
            assert!((t - 1.001).abs() < 1e-6, "t = {t}");
        }
    }

    #[test]
    fn four_concurrent_readers_contend() {
        // 4 readers on 200 MB/s -> 50 MB/s each; 100 MB takes 2 s.
        let sim = Sim::new(4);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 400_000_000]);
        let out = sim.run(|ctx| {
            fs.read_at(&ctx, "f", ctx.rank() as u64 * 100_000_000, 100_000_000)
                .unwrap();
            ctx.now().as_secs_f64()
        });
        for t in &out.outputs {
            assert!((t - 2.001).abs() < 1e-4, "t = {t}");
        }
    }

    #[test]
    fn late_joiner_slows_existing_stream() {
        // Rank 0 starts a 100 MB read alone (100 MB/s). At t=0.5 s it has
        // 50 MB left. Rank 1 then reads too; with 2 streams each still
        // gets 100 MB/s (aggregate 200), so no slowdown. With a tighter
        // aggregate (120 MB/s), rates drop to 60 each.
        let tight = FsProfile {
            per_client_bw: 100.0e6,
            aggregate_bw: 120.0e6,
            op_latency: 0.0,
        };
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "t", tight);
        fs.preload("f", vec![0u8; 200_000_000]);
        let out = sim.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.charge(SimDuration::from_secs_f64(0.5));
            }
            fs.read_at(&ctx, "f", ctx.rank() as u64 * 100_000_000, 100_000_000)
                .unwrap();
            ctx.now().as_secs_f64()
        });
        // Rank 0: 50 MB alone at 100 MB/s (0.5 s), then shares 120 MB/s
        // (60 each) for its remaining 50 MB -> 0.5 + 50/60 = 1.3333 s.
        assert!(
            (out.outputs[0] - (0.5 + 50.0 / 60.0)).abs() < 1e-4,
            "{out:?}"
        );
        // Rank 1: starts at 0.5 with 100 MB. Shares 60 MB/s until rank 0
        // finishes at 1.3333 (having moved 50 MB), then 66.67 MB/s... but
        // per-client capped at 100: remaining 50 MB at 100 MB/s? No: alone
        // it gets min(100, 120) = 100. 0.5 + 0.8333 + 50/100 = 1.8333 s.
        assert!(
            (out.outputs[1] - (0.5 + 50.0 / 60.0 + 0.5)).abs() < 1e-4,
            "{out:?}"
        );
    }

    #[test]
    fn writes_and_reads_round_trip_through_sim() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        let out = sim.run(|ctx| {
            if ctx.rank() == 0 {
                fs.write_at(&ctx, "shared", 0, b"rank0 data").unwrap();
                ctx.post(1, 1, bytes::Bytes::new(), SimDuration::ZERO);
                true
            } else {
                ctx.recv(Some(0), Some(1));
                let data = fs.read_all(&ctx, "shared").unwrap();
                data == b"rank0 data"
            }
        });
        assert!(out.outputs[1]);
        let c = fs.counters();
        assert_eq!(c.bytes_written, 10);
        assert_eq!(c.bytes_read, 10);
    }

    #[test]
    fn read_errors_cost_no_transfer_time() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 10]);
        let out = sim.run(|ctx| {
            assert!(fs.read_at(&ctx, "missing", 0, 5).is_err());
            assert!(fs.read_at(&ctx, "f", 8, 5).is_err());
            ctx.now().as_secs_f64()
        });
        assert!(out.outputs[0] < 1e-6, "errors should be instant-ish");
    }

    #[test]
    fn metadata_ops_charge_latency() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        let out = sim.run(|ctx| {
            fs.create(&ctx, "a");
            assert_eq!(fs.stat(&ctx, "a"), Some(0));
            assert_eq!(fs.stat(&ctx, "b"), None);
            fs.delete(&ctx, "a").unwrap();
            assert_eq!(fs.list(&ctx, "").len(), 0);
            ctx.now().as_secs_f64()
        });
        assert!((out.outputs[0] - 0.005).abs() < 1e-9);
    }

    #[test]
    fn async_read_matches_sync_bytes_and_overlaps_compute() {
        // A 100 MB read takes 1 ms latency + 1 s transfer. Issued async
        // and joined after 2 s of compute, the whole transfer hides:
        // elapsed = max(compute, io) = 2 s, and the bytes are identical.
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload(
            "f",
            (0..1_000_000u32).flat_map(|i| i.to_le_bytes()).collect(),
        );
        let out = sim.run(|ctx| {
            let op = fs.read_at_begin(&ctx, "f", 4_000, 4_000).unwrap();
            ctx.charge(SimDuration::from_secs(2));
            assert!(op.is_done(), "4 KB moves well within 2 s");
            let data = fs.io_wait(&ctx, op).unwrap();
            (data, ctx.now().as_secs_f64())
        });
        let (data, t) = &out.outputs[0];
        let expect: Vec<u8> = (1_000u32..2_000).flat_map(|i| i.to_le_bytes()).collect();
        assert_eq!(data, &expect);
        assert!((t - 2.0).abs() < 1e-9, "fully hidden: t = {t}");
    }

    #[test]
    fn async_wait_exposes_only_the_remainder() {
        // 100 MB at 100 MB/s = 1 s transfer + 1 ms latency. After 0.4 s
        // of compute, the join blocks for the remaining 0.601 s.
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![3u8; 100_000_000]);
        let out = sim.run(|ctx| {
            let op = fs.read_at_begin(&ctx, "f", 0, 100_000_000).unwrap();
            ctx.charge(SimDuration::from_secs_f64(0.4));
            assert!(!op.is_done());
            let data = fs.io_wait(&ctx, op).unwrap();
            assert_eq!(data.len(), 100_000_000);
            ctx.now().as_secs_f64()
        });
        assert!(
            (out.outputs[0] - 1.001).abs() < 1e-6,
            "t = {}",
            out.outputs[0]
        );
    }

    #[test]
    fn async_write_lands_at_completion_not_at_begin() {
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        let fsw = fs.clone();
        let out = sim.run(move |ctx| {
            if ctx.rank() == 0 {
                let op = fsw.write_at_begin(&ctx, "f", 0, vec![9u8; 50_000_000]);
                // Signal rank 1 that the write is in flight.
                ctx.post(1, 1, bytes::Bytes::new(), SimDuration::ZERO);
                fsw.io_wait(&ctx, op).unwrap();
                ctx.now().as_secs_f64()
            } else {
                ctx.recv(Some(0), Some(1));
                // Mid-flight the file does not exist yet.
                let missing = fsw.peek("f").is_err();
                ctx.charge(SimDuration::from_secs(3));
                let after = fsw.peek("f").unwrap();
                assert!(missing, "write landed before completion");
                assert_eq!(after, vec![9u8; 50_000_000]);
                0.0
            }
        });
        // 1 ms latency + 0.5 s transfer (alone at 100 MB/s).
        assert!((out.outputs[0] - 0.501).abs() < 1e-6, "{out:?}");
        let c = fs.counters();
        assert_eq!(c.bytes_written, 50_000_000);
    }

    #[test]
    fn concurrent_async_ops_contend_like_streams() {
        // Two 100 MB async reads from one rank share the 200 MB/s
        // aggregate: each runs at 100 MB/s, both finish at ~1.001 s.
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 200_000_000]);
        let out = sim.run(|ctx| {
            let a = fs.read_at_begin(&ctx, "f", 0, 100_000_000).unwrap();
            let b = fs
                .read_at_begin(&ctx, "f", 100_000_000, 100_000_000)
                .unwrap();
            fs.io_wait(&ctx, a).unwrap();
            let t_a = ctx.now().as_secs_f64();
            fs.io_wait(&ctx, b).unwrap();
            (t_a, ctx.now().as_secs_f64())
        });
        let (t_a, t_b) = out.outputs[0];
        assert!((t_a - 1.001).abs() < 1e-6, "t_a = {t_a}");
        assert!((t_b - 1.001).abs() < 1e-6, "t_b = {t_b}");
    }

    #[test]
    fn async_and_sync_streams_coexist_for_one_rank() {
        // An async write in flight must not trip the one-blocked-stream
        // invariant when the same rank issues a sync read.
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 10_000_000]);
        sim.run(|ctx| {
            let op = fs.write_at_begin(&ctx, "g", 0, vec![1u8; 10_000_000]);
            let data = fs.read_at(&ctx, "f", 0, 10_000_000).unwrap();
            assert_eq!(data.len(), 10_000_000);
            fs.io_wait(&ctx, op).unwrap();
        });
        assert_eq!(fs.counters().bytes_written, 10_000_000);
        assert_eq!(fs.counters().bytes_read, 10_000_000);
    }

    #[test]
    fn killed_owner_write_never_lands() {
        use simcluster::FaultPlan;
        let sim = Sim::new(2);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        // Rank 1 begins a 100 MB write (completes ~1.001 s) but is
        // killed at 0.5 s: crash-stop says the write must vanish.
        let plan = FaultPlan::none().kill_at(1, SimTime(500_000_000));
        let fsw = fs.clone();
        let out = sim.run_faulty(plan, move |ctx| {
            if ctx.rank() == 1 {
                let op = fsw.write_at_begin(&ctx, "doomed", 0, vec![5u8; 100_000_000]);
                ctx.charge(SimDuration::from_secs(10));
                fsw.io_wait(&ctx, op).unwrap();
            } else {
                ctx.charge(SimDuration::from_secs(5));
                assert!(fsw.peek("doomed").is_err(), "dead rank's write landed");
            }
            ctx.rank()
        });
        assert_eq!(out.killed, vec![1]);
        assert!(fs.peek("doomed").is_err());
        assert_eq!(fs.counters().bytes_written, 0);
    }

    #[test]
    fn capacity_limits_writes_with_nospace() {
        let sim = Sim::new(1);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.set_capacity(1_000);
        let out = sim.run(|ctx| {
            fs.write_at(&ctx, "a", 0, &[1u8; 600]).unwrap();
            // Overwriting in place needs no growth.
            fs.write_at(&ctx, "a", 0, &[2u8; 600]).unwrap();
            let err = fs.write_at(&ctx, "b", 0, &[3u8; 600]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::NoSpace {
                        needed: 600,
                        free: 400,
                        ..
                    }
                ),
                "{err}"
            );
            // Async writes hit the same wall at completion time.
            let op = fs.write_at_begin(&ctx, "c", 0, vec![4u8; 500]);
            let err2 = fs.io_wait(&ctx, op).unwrap_err();
            assert!(matches!(err2, StoreError::NoSpace { .. }));
            fs.write_at(&ctx, "d", 0, &[5u8; 400]).unwrap()
        });
        let _ = out;
        assert!(fs.peek("b").is_err());
        assert!(fs.peek("c").is_err());
        assert_eq!(fs.peek("d").unwrap().len(), 400);
    }

    #[test]
    fn byte_conservation_under_contention() {
        // However the streams interleave, exactly the requested bytes move.
        let sim = Sim::new(8);
        let fs = SimFs::new(sim.handle(), "t", test_profile());
        fs.preload("f", vec![0u8; 8_000_000]);
        sim.run(|ctx| {
            for chunk in 0..4 {
                fs.read_at(
                    &ctx,
                    "f",
                    (ctx.rank() * 4 + chunk) as u64 * 250_000,
                    250_000,
                )
                .unwrap();
            }
        });
        assert_eq!(fs.counters().bytes_read, 8_000_000);
        assert_eq!(fs.counters().data_ops, 32);
    }
}
