//! Property-based tests of the communication layer: collectives behave
//! like their specifications for arbitrary sizes, roots, and payloads.

use bytes::Bytes;
use mpisim::{Collectives, Comm, NetProfile};
use proptest::prelude::*;
use simcluster::{Sim, SimDuration};

fn net() -> NetProfile {
    NetProfile {
        latency: 7e-6,
        bandwidth: 5e8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Broadcast delivers the root's exact payload to every rank, for any
    /// communicator size, root, payload, and per-rank start skew.
    #[test]
    fn bcast_is_correct(
        n in 2usize..17,
        root_pick in 0usize..100,
        payload in prop::collection::vec(any::<u8>(), 0..2000),
        skews in prop::collection::vec(0u64..20, 17),
    ) {
        let root = root_pick % n;
        let sim = Sim::new(n);
        let payload2 = payload.clone();
        let out = sim.run(move |ctx| {
            ctx.charge(SimDuration::from_millis(skews[ctx.rank()]));
            let comm = Comm::new(&ctx, net());
            let data = if ctx.rank() == root {
                Bytes::from(payload2.clone())
            } else {
                Bytes::new()
            };
            comm.bcast(root, data).to_vec()
        });
        for (r, got) in out.outputs.iter().enumerate() {
            prop_assert_eq!(got, &payload, "rank {}", r);
        }
    }

    /// Gather collects every rank's distinct payload at the root, in rank
    /// order; scatter distributes distinct pieces back.
    #[test]
    fn gather_scatter_are_correct(
        n in 2usize..13,
        root_pick in 0usize..100,
        lens in prop::collection::vec(0usize..300, 13),
    ) {
        let root = root_pick % n;
        let sim = Sim::new(n);
        let lens2 = lens.clone();
        let out = sim.run(move |ctx| {
            let comm = Comm::new(&ctx, net());
            let me = ctx.rank();
            let mine = Bytes::from(vec![me as u8; lens2[me]]);
            let gathered = comm.gather(root, mine);
            // Root validates and builds scatter pieces; others check their
            // piece.
            let pieces = gathered.map(|g| {
                for (r, b) in g.iter().enumerate() {
                    assert_eq!(b.len(), lens2[r]);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
                (0..ctx.nranks())
                    .map(|r| Bytes::from(vec![(r * 2) as u8; lens2[r]]))
                    .collect::<Vec<_>>()
            });
            let piece = comm.scatterv(root, pieces);
            piece.len() == lens2[me] && piece.iter().all(|&x| x == (me * 2) as u8)
        });
        prop_assert!(out.outputs.iter().all(|&ok| ok));
    }

    /// After a barrier, every rank's clock is at least the latest
    /// arrival time — no one escapes early.
    #[test]
    fn barrier_is_a_barrier(
        n in 2usize..20,
        skews in prop::collection::vec(0u64..40, 20),
    ) {
        let sim = Sim::new(n);
        let skews2 = skews.clone();
        let out = sim.run(move |ctx| {
            ctx.charge(SimDuration::from_millis(skews2[ctx.rank()]));
            let comm = Comm::new(&ctx, net());
            comm.barrier();
            ctx.now().0
        });
        let latest_arrival = skews[..n].iter().max().copied().unwrap() * 1_000_000;
        for (r, &t) in out.outputs.iter().enumerate() {
            prop_assert!(
                t >= latest_arrival,
                "rank {} left at {}ns before {}ns", r, t, latest_arrival
            );
        }
    }
}
