//! Shared scheduling substrate for master/worker protocols.
//!
//! Both the pioBLAST runtime (`crates/core/src/runtime/`) and the
//! mpiBLAST baseline master loop are event pumps over the same three
//! primitives: a liveness table swept against the simulator's ground
//! truth, a fragment grant queue with per-worker ownership, and a
//! message pump that folds failure detection into receive. Keeping them
//! here means fault detection behaves identically — same sweep cadence,
//! same death-reporting order — in every protocol built on top.

use simcluster::{Message, RankCtx, SimDuration};

use crate::comm::Comm;
use crate::fault::RecvError;

/// The sweep cadence every detector in the suite uses: how long a
/// blocking receive waits before re-checking peers for silent death.
pub fn default_sweep() -> SimDuration {
    SimDuration::from_millis(25)
}

/// Deal `items` out to `workers` bins, contiguously and as evenly as
/// possible (worker `w` gets `items[start_w..end_w]`).
pub fn chunk_evenly<T>(mut items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    assert!(workers > 0, "need at least one worker");
    let total = items.len();
    let mut out = Vec::with_capacity(workers);
    let mut taken = 0usize;
    let mut rest = items.drain(..);
    for w in 0..workers {
        let end = total * (w + 1) / workers;
        let count = end - taken;
        taken = end;
        out.push(rest.by_ref().take(count).collect());
    }
    out
}

/// Per-rank liveness, maintained by sweeping the simulator's crash-stop
/// ground truth. Rank 0 (the master) is tracked but never swept — master
/// death is surfaced to workers through receive errors instead.
#[derive(Debug, Clone)]
pub struct Liveness {
    live: Vec<bool>,
}

impl Liveness {
    /// All `nranks` ranks presumed live.
    pub fn all(nranks: usize) -> Liveness {
        Liveness {
            live: vec![true; nranks],
        }
    }

    /// Start from an explicit per-rank table (e.g. built from the
    /// bundle-distribution round, where dead workers already failed).
    pub fn from_flags(live: Vec<bool>) -> Liveness {
        Liveness { live }
    }

    /// Is `rank` still presumed live?
    pub fn is_live(&self, rank: usize) -> bool {
        self.live[rank]
    }

    /// Mark `rank` dead (e.g. after a failed checked send).
    pub fn mark_dead(&mut self, rank: usize) {
        self.live[rank] = false;
    }

    /// The raw per-rank table.
    pub fn flags(&self) -> &[bool] {
        &self.live
    }

    /// Worker ranks (1..) still presumed live, ascending.
    pub fn live_workers(&self) -> impl Iterator<Item = usize> + '_ {
        self.live
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, l)| **l)
            .map(|(r, _)| r)
    }

    /// Does any worker rank survive?
    pub fn any_worker_live(&self) -> bool {
        self.live_workers().next().is_some()
    }

    /// Compare the table against the simulator's ground truth and return
    /// the worker ranks that died since the last sweep (now marked dead),
    /// ascending. Costs no virtual time.
    pub fn sweep(&mut self, ctx: &RankCtx) -> Vec<usize> {
        let mut newly = Vec::new();
        for r in 1..self.live.len() {
            if self.live[r] && ctx.is_dead(r) {
                self.live[r] = false;
                tracelog::instant(
                    tracelog::Lane::Sched,
                    "sweep.dead",
                    vec![("rank", r.into())],
                );
                newly.push(r);
            }
        }
        newly
    }
}

/// What a [`Pump::poll`] produced: a message, or the deaths that were
/// detected while waiting for one.
#[derive(Debug)]
pub enum Polled {
    /// A matching message arrived.
    Msg(Message),
    /// These worker ranks were found dead (already marked in the
    /// [`Liveness`] table). Only produced with detection enabled.
    Dead(Vec<usize>),
}

/// A receive loop that folds failure detection into message arrival.
///
/// With detection off it degenerates to stock blocking MPI receives —
/// a dead peer hangs the job, exactly like the real library. With
/// detection on, every wait is chopped into sweep intervals and peer
/// death surfaces as [`Polled::Dead`] instead of a hang.
pub struct Pump<'a, 'b> {
    comm: &'a Comm<'b>,
    detect: bool,
    sweep: SimDuration,
}

impl<'a, 'b> Pump<'a, 'b> {
    /// Build a pump; `detect` enables sweeping at `sweep` cadence.
    pub fn new(comm: &'a Comm<'b>, detect: bool, sweep: SimDuration) -> Pump<'a, 'b> {
        Pump {
            comm,
            detect,
            sweep,
        }
    }

    /// Master-side poll: wait for a matching message, reporting any
    /// worker deaths found first. Without detection, blocks forever.
    pub fn poll(&self, live: &mut Liveness, src: Option<usize>, tag: Option<u64>) -> Polled {
        if !self.detect {
            return Polled::Msg(self.comm.recv(src, tag));
        }
        loop {
            let dead = live.sweep(self.comm.ctx());
            if !dead.is_empty() {
                return Polled::Dead(dead);
            }
            match self.comm.recv_timeout(src, tag, self.sweep) {
                Ok(m) => return Polled::Msg(m),
                // Timeout: sweep again. DeadPeer (specific-source waits):
                // the next sweep reports the death.
                Err(RecvError::Timeout { .. }) | Err(RecvError::DeadPeer { .. }) => {}
            }
        }
    }

    /// Worker-side receive from a single peer (the master). Without
    /// detection this is a stock blocking receive; with detection the
    /// peer's death surfaces as [`RecvError::DeadPeer`].
    pub fn recv_from(&self, src: usize, tag: Option<u64>) -> Result<Message, RecvError> {
        if !self.detect {
            return Ok(self.comm.recv(Some(src), tag));
        }
        loop {
            match self.comm.recv_timeout(Some(src), tag, self.sweep) {
                Ok(m) => return Ok(m),
                Err(e @ RecvError::DeadPeer { .. }) => return Err(e),
                Err(RecvError::Timeout { .. }) => {}
            }
        }
    }
}

/// A fragment grant queue with per-worker ownership tracking.
///
/// Fragments are identified by index. Grants record ownership so a
/// worker's death can requeue (or orphan) exactly what it held.
#[derive(Debug, Clone)]
pub struct GrantQueue {
    pending: std::collections::VecDeque<usize>,
    owned: Vec<Vec<usize>>,
}

impl GrantQueue {
    /// Queue fragments `0..nfrags` for granting among `nranks` ranks.
    pub fn new(nfrags: usize, nranks: usize) -> GrantQueue {
        GrantQueue {
            pending: (0..nfrags).collect(),
            owned: vec![Vec::new(); nranks],
        }
    }

    /// Is the pending queue empty?
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Fragments still pending, in grant order.
    pub fn pending(&self) -> impl Iterator<Item = usize> + '_ {
        self.pending.iter().copied()
    }

    /// Grant the front fragment to `rank`, recording ownership.
    pub fn grant_to(&mut self, rank: usize) -> Option<usize> {
        let f = self.pending.pop_front()?;
        self.owned[rank].push(f);
        Some(f)
    }

    /// Affinity-aware grant: prefer the frontmost pending fragment that
    /// `rank` already holds resident, falling back to the plain
    /// front-of-queue grant (work stealing) when none of its resident
    /// fragments are pending. Load balance is preserved — a rank never
    /// idles waiting for "its" fragment — and requeued (recovered)
    /// fragments at the queue front still win over affinity whenever the
    /// rank holds nothing pending.
    pub fn grant_to_preferring(&mut self, rank: usize, resident: &[usize]) -> Option<usize> {
        match self.pending.iter().position(|f| resident.contains(f)) {
            Some(pos) => {
                let f = self.pending.remove(pos).expect("position just found");
                self.owned[rank].push(f);
                Some(f)
            }
            None => self.grant_to(rank),
        }
    }

    /// Grant the front `n` fragments to `rank` as one chunk.
    pub fn grant_chunk(&mut self, rank: usize, n: usize) -> Vec<usize> {
        let mut chunk = Vec::with_capacity(n);
        for _ in 0..n {
            match self.grant_to(rank) {
                Some(f) => chunk.push(f),
                None => break,
            }
        }
        chunk
    }

    /// Fragments currently owned by `rank`, in grant order.
    pub fn owned(&self, rank: usize) -> &[usize] {
        &self.owned[rank]
    }

    /// Strip `rank` of its fragments, pushing those matching `requeue`
    /// back onto the queue (in grant order) and dropping the rest.
    /// Returns `(requeued, dropped)` fragment lists.
    pub fn release(
        &mut self,
        rank: usize,
        mut requeue: impl FnMut(usize) -> bool,
    ) -> (Vec<usize>, Vec<usize>) {
        let held = std::mem::take(&mut self.owned[rank]);
        let mut requeued = Vec::new();
        let mut dropped = Vec::new();
        for f in held {
            if requeue(f) {
                self.pending.push_back(f);
                requeued.push(f);
            } else {
                dropped.push(f);
            }
        }
        (requeued, dropped)
    }

    /// [`GrantQueue::release`], but requeue at the queue *front* (still
    /// in grant order). Under a long stream backlog, tail requeueing
    /// starves a dead worker's recovered fragments behind every pending
    /// batch; service mode uses this variant so recovery work is granted
    /// next.
    pub fn release_front(
        &mut self,
        rank: usize,
        mut requeue: impl FnMut(usize) -> bool,
    ) -> (Vec<usize>, Vec<usize>) {
        let held = std::mem::take(&mut self.owned[rank]);
        let mut requeued = Vec::new();
        let mut dropped = Vec::new();
        for f in held {
            if requeue(f) {
                requeued.push(f);
            } else {
                dropped.push(f);
            }
        }
        // Reverse push_front keeps the requeued block in grant order at
        // the head of the queue.
        for &f in requeued.iter().rev() {
            self.pending.push_front(f);
        }
        (requeued, dropped)
    }

    /// Push a fragment back onto the queue tail (e.g. a previously
    /// orphaned fragment re-entering circulation at a batch boundary).
    pub fn push(&mut self, frag: usize) {
        self.pending.push_back(frag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_contiguous_and_even() {
        let chunks = chunk_evenly((0..10).collect(), 3);
        assert_eq!(chunks, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8, 9]]);
        let sparse = chunk_evenly(vec![9], 3);
        assert_eq!(sparse.iter().flatten().count(), 1);
        assert_eq!(chunk_evenly(Vec::<u8>::new(), 2), vec![vec![], vec![]]);
    }

    #[test]
    fn grants_track_ownership_and_release_requeues() {
        let mut q = GrantQueue::new(4, 3);
        assert_eq!(q.grant_to(1), Some(0));
        assert_eq!(q.grant_chunk(2, 2), vec![1, 2]);
        assert_eq!(q.owned(2), &[1, 2]);
        let (requeued, dropped) = q.release(2, |f| f != 1);
        assert_eq!(requeued, vec![2]);
        assert_eq!(dropped, vec![1]);
        assert_eq!(q.owned(2), &[] as &[usize]);
        // Pending order: untouched tail first, then the requeue.
        assert_eq!(q.pending().collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn preferring_grants_pick_resident_fragments_first() {
        let mut q = GrantQueue::new(5, 3);
        // Rank 1 holds 3 and 1 resident: affinity pulls 1 (frontmost
        // resident match), then 3, skipping over 0 and 2.
        assert_eq!(q.grant_to_preferring(1, &[3, 1]), Some(1));
        assert_eq!(q.grant_to_preferring(1, &[3, 1]), Some(3));
        // Nothing resident pending: falls back to front-of-queue.
        assert_eq!(q.grant_to_preferring(1, &[7, 9]), Some(0));
        assert_eq!(q.grant_to_preferring(2, &[]), Some(2));
        assert_eq!(q.owned(1), &[1, 3, 0]);
        assert_eq!(q.pending().collect::<Vec<_>>(), vec![4]);
        assert_eq!(q.grant_to_preferring(2, &[4]), Some(4));
        assert_eq!(q.grant_to_preferring(2, &[4]), None);
    }

    #[test]
    fn release_front_requeues_ahead_of_the_backlog() {
        let mut q = GrantQueue::new(6, 3);
        assert_eq!(q.grant_chunk(1, 3), vec![0, 1, 2]);
        // Backlog 3,4,5 is pending when rank 1 dies holding 0,1,2 with
        // fragment 1 checkpointed (dropped). The recovered fragments must
        // come out *before* the backlog, in grant order.
        let (requeued, dropped) = q.release_front(1, |f| f != 1);
        assert_eq!(requeued, vec![0, 2]);
        assert_eq!(dropped, vec![1]);
        assert_eq!(q.pending().collect::<Vec<_>>(), vec![0, 2, 3, 4, 5]);
        // Tail release, by contrast, starves them behind the backlog.
        let mut tail = GrantQueue::new(6, 3);
        assert_eq!(tail.grant_chunk(1, 3), vec![0, 1, 2]);
        let _ = tail.release(1, |f| f != 1);
        assert_eq!(tail.pending().collect::<Vec<_>>(), vec![3, 4, 5, 0, 2]);
    }

    #[test]
    fn liveness_sweep_reports_each_death_once() {
        use simcluster::{FaultPlan, Sim, SimTime};
        let sim = Sim::new(3);
        let plan = FaultPlan::none().kill_at(2, SimTime(1_000));
        let out = sim.run_faulty(plan, |ctx| {
            if ctx.rank() == 0 {
                let mut live = Liveness::all(3);
                ctx.charge(SimDuration::from_micros(10));
                let first = live.sweep(&ctx);
                let second = live.sweep(&ctx);
                assert!(live.is_live(1));
                assert!(!live.is_live(2));
                (first, second)
            } else {
                // Rank 2 blocks forever and is killed; rank 1 idles.
                if ctx.rank() == 2 {
                    let _ = ctx.recv(Some(0), None);
                }
                (Vec::new(), Vec::new())
            }
        });
        let (first, second) = out.outputs[0].clone().unwrap();
        assert_eq!(first, vec![2]);
        assert_eq!(second, Vec::<usize>::new());
    }
}
