//! Collective operations: barrier, broadcast, gather, scatter.
//!
//! Broadcast and barrier use binomial trees (O(log p) rounds); gather and
//! scatter are flat (root-centric), matching how mpiBLAST actually moves
//! data between master and workers. Every hop pays the point-to-point
//! cost model, so collective costs emerge rather than being assumed.

use bytes::Bytes;

use crate::comm::{Comm, RESERVED_TAG_BASE};

/// Tag-space layout for collectives: `RESERVED | op << 40 | seq`.
fn coll_tag(op: u64, seq: u64) -> u64 {
    RESERVED_TAG_BASE | (op << 40) | (seq & 0xFF_FFFF_FFFF)
}

const OP_BARRIER_GATHER: u64 = 1;
const OP_BARRIER_RELEASE: u64 = 2;
const OP_BCAST: u64 = 3;
const OP_GATHER: u64 = 4;
const OP_SCATTER: u64 = 5;

/// Collective operations over a [`Comm`]. All ranks of the communicator
/// must call the same collective in the same order (the usual MPI rule).
pub trait Collectives {
    /// Block until every rank has entered the barrier.
    fn barrier(&self);
    /// Broadcast `data` from `root`; every rank returns the payload.
    fn bcast(&self, root: usize, data: Bytes) -> Bytes;
    /// Gather each rank's `data` at `root`. Returns `Some(per-rank data)`
    /// on the root, `None` elsewhere.
    fn gather(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>>;
    /// Scatter `pieces[i]` from `root` to rank `i`; each rank returns its
    /// piece. Only the root's `pieces` argument is read.
    fn scatterv(&self, root: usize, pieces: Option<Vec<Bytes>>) -> Bytes;
}

impl Collectives for Comm<'_> {
    fn barrier(&self) {
        let seq = self.next_coll_seq();
        let _span = tracelog::span_args(tracelog::Lane::Net, "barrier", vec![("seq", seq.into())]);
        let me = self.rank();
        let n = self.size();
        if n == 1 {
            return;
        }
        // Gather-to-0 up a binomial tree, then release down it.
        let up = coll_tag(OP_BARRIER_GATHER, seq);
        let down = coll_tag(OP_BARRIER_RELEASE, seq);
        let mut mask = 1usize;
        while mask < n {
            if me & mask != 0 {
                let parent = me & !mask;
                self.send_internal(parent, up, Bytes::new());
                break;
            }
            let child = me | mask;
            if child < n {
                self.recv(Some(child), Some(up));
            }
            mask <<= 1;
        }
        // Release phase: parent wakes children in reverse order.
        let joined_mask = mask; // the mask at which we sent (or n for rank 0)
        if me != 0 {
            self.recv(None, Some(down));
        }
        let mut mask = joined_mask >> 1;
        while mask > 0 {
            let child = me | mask;
            if child < n && child != me {
                self.send_internal(child, down, Bytes::new());
            }
            mask >>= 1;
        }
    }

    fn bcast(&self, root: usize, data: Bytes) -> Bytes {
        let seq = self.next_coll_seq();
        let _span = tracelog::span_args(
            tracelog::Lane::Net,
            "bcast",
            vec![
                ("seq", seq.into()),
                ("root", root.into()),
                ("bytes", data.len().into()),
            ],
        );
        let tag = coll_tag(OP_BCAST, seq);
        let n = self.size();
        if n == 1 {
            return data;
        }
        let me = self.rank();
        let vrank = (me + n - root) % n;
        // MPICH binomial tree. Receive phase: scan masks upward; a rank's
        // parent clears its lowest set bit.
        let mut mask = 1usize;
        let mut data = data;
        while mask < n {
            if vrank & mask != 0 {
                let parent = ((vrank ^ mask) + root) % n;
                data = self.recv(Some(parent), Some(tag)).payload;
                break;
            }
            mask <<= 1;
        }
        // Send phase: children sit at vrank + m for every m below our
        // lowest set bit (or below n for the root), largest first.
        mask >>= 1;
        while mask > 0 {
            let child_v = vrank + mask;
            if child_v < n {
                self.send_internal((child_v + root) % n, tag, data.clone());
            }
            mask >>= 1;
        }
        data
    }

    fn gather(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        let seq = self.next_coll_seq();
        let _span = tracelog::span_args(
            tracelog::Lane::Net,
            "gather",
            vec![
                ("seq", seq.into()),
                ("root", root.into()),
                ("bytes", data.len().into()),
            ],
        );
        let tag = coll_tag(OP_GATHER, seq);
        let me = self.rank();
        let n = self.size();
        if me == root {
            let mut out: Vec<Option<Bytes>> = vec![None; n];
            out[root] = Some(data);
            for _ in 0..n - 1 {
                let m = self.recv(None, Some(tag));
                out[m.src] = Some(m.payload);
            }
            Some(
                out.into_iter()
                    .map(|o| o.expect("all ranks sent"))
                    .collect(),
            )
        } else {
            self.send_internal(root, tag, data);
            None
        }
    }

    fn scatterv(&self, root: usize, pieces: Option<Vec<Bytes>>) -> Bytes {
        let seq = self.next_coll_seq();
        let _span = tracelog::span_args(
            tracelog::Lane::Net,
            "scatterv",
            vec![("seq", seq.into()), ("root", root.into())],
        );
        let tag = coll_tag(OP_SCATTER, seq);
        let me = self.rank();
        let n = self.size();
        if me == root {
            let pieces = pieces.expect("root must supply pieces");
            assert_eq!(pieces.len(), n, "need one piece per rank");
            let mut mine = Bytes::new();
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == me {
                    mine = piece;
                } else {
                    self.send_internal(dst, tag, piece);
                }
            }
            mine
        } else {
            self.recv(Some(root), Some(tag)).payload
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetProfile;
    use simcluster::{Sim, SimDuration};

    fn net() -> NetProfile {
        NetProfile {
            latency: 10e-6,
            bandwidth: 1e9,
        }
    }

    fn with_ranks<R: Send + 'static>(n: usize, f: impl Fn(&Comm) -> R + Sync) -> Vec<R> {
        let sim = Sim::new(n);
        sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            f(&comm)
        })
        .outputs
    }

    #[test]
    fn barrier_synchronizes_all_sizes() {
        for n in [1, 2, 3, 5, 8, 13, 32] {
            let sim = Sim::new(n);
            let out = sim.run(|ctx| {
                let comm = Comm::new(&ctx, net());
                // Stagger arrivals; everyone leaves after the latest.
                ctx.charge(SimDuration::from_millis(ctx.rank() as u64));
                comm.barrier();
                ctx.now().as_secs_f64()
            });
            let latest = (n - 1) as f64 * 1e-3;
            for (r, t) in out.outputs.iter().enumerate() {
                assert!(
                    *t >= latest,
                    "n={n} rank {r} left the barrier at {t} before the last arrival {latest}"
                );
            }
        }
    }

    #[test]
    fn bcast_delivers_to_everyone_from_any_root() {
        for n in [1, 2, 3, 4, 7, 16] {
            for root in [0, n - 1, n / 2] {
                let got = with_ranks(n, move |comm| {
                    let data = if comm.rank() == root {
                        Bytes::from(format!("payload-from-{root}"))
                    } else {
                        Bytes::new()
                    };
                    let out = comm.bcast(root, data);
                    String::from_utf8_lossy(&out).into_owned()
                });
                for (r, s) in got.iter().enumerate() {
                    assert_eq!(
                        s,
                        &format!("payload-from-{root}"),
                        "n={n} root={root} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = with_ranks(6, |comm| {
            let data = Bytes::from(vec![comm.rank() as u8 * 3]);
            comm.gather(2, data)
                .map(|v| v.into_iter().map(|b| b[0]).collect::<Vec<u8>>())
        });
        for (r, o) in got.iter().enumerate() {
            if r == 2 {
                assert_eq!(o.as_ref().unwrap(), &vec![0, 3, 6, 9, 12, 15]);
            } else {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn scatterv_distributes_pieces() {
        let got = with_ranks(5, |comm| {
            let pieces = (comm.rank() == 1).then(|| {
                (0..5u8)
                    .map(|i| Bytes::from(vec![i, i + 10]))
                    .collect::<Vec<_>>()
            });
            let mine = comm.scatterv(1, pieces);
            (mine[0], mine[1])
        });
        for (r, &(a, b)) in got.iter().enumerate() {
            assert_eq!(a as usize, r);
            assert_eq!(b as usize, r + 10);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let got = with_ranks(4, |comm| {
            let a = comm.bcast(
                0,
                if comm.rank() == 0 {
                    Bytes::from_static(b"first")
                } else {
                    Bytes::new()
                },
            );
            comm.barrier();
            let b = comm.bcast(
                0,
                if comm.rank() == 0 {
                    Bytes::from_static(b"second")
                } else {
                    Bytes::new()
                },
            );
            (a.to_vec(), b.to_vec())
        });
        for (a, b) in got {
            assert_eq!(a, b"first");
            assert_eq!(b, b"second");
        }
    }

    #[test]
    fn bcast_of_large_payload_is_log_depth() {
        // 8 ranks, 1 MB: a flat bcast would occupy the root 7 ms
        // (7 sends × 1 ms); binomial occupies it 3 ms.
        let slow = NetProfile {
            latency: 0.0,
            bandwidth: 1e9,
        };
        let sim = Sim::new(8);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, slow);
            let data = if ctx.rank() == 0 {
                Bytes::from(vec![0u8; 1_000_000])
            } else {
                Bytes::new()
            };
            comm.bcast(0, data);
            ctx.now().as_secs_f64()
        });
        // Root sends exactly 3 copies at 1 ms each.
        assert!((out.outputs[0] - 0.003).abs() < 1e-9, "{out:?}");
        // The deepest leaf waits 3 hops.
        let max = out.outputs.iter().cloned().fold(0.0, f64::max);
        assert!((max - 0.003).abs() < 2e-3, "max {max}");
    }
}
