//! # mpisim
//!
//! An MPI-like communication layer over the `simcluster` discrete-event
//! engine: point-to-point send/receive with a latency + bandwidth cost
//! model ([`net::NetProfile`], the Hockney model), and collectives
//! (binomial-tree barrier and broadcast, flat gather/scatter) whose costs
//! emerge from real per-hop messages.
//!
//! This is the stand-in for the MPI library mpiBLAST and pioBLAST run on;
//! the presets mirror the paper's machines (Altix NUMAlink, blade-cluster
//! gigabit Ethernet).

#![warn(missing_docs)]

pub mod coll;
pub mod comm;
pub mod fault;
pub mod net;
pub mod sched;

pub use coll::Collectives;
pub use comm::Comm;
pub use fault::{RecvError, SendError};
pub use net::NetProfile;
pub use sched::{GrantQueue, Liveness, Polled, Pump};
