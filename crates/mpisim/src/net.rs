//! Interconnect cost models.

/// Latency/bandwidth parameters of a cluster interconnect.
///
/// A message of `b` bytes occupies the sender for `b / bandwidth` seconds
/// and arrives `latency + b / bandwidth` after the send begins — the
/// classic Hockney model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// One-way small-message latency, seconds.
    pub latency: f64,
    /// Point-to-point stream bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl NetProfile {
    /// SGI Altix NUMAlink: shared-memory-class messaging.
    pub fn altix_numalink() -> NetProfile {
        NetProfile {
            latency: 3.0e-6,
            bandwidth: 1.6e9,
        }
    }

    /// Gigabit Ethernet on the NCSU blade cluster.
    pub fn blade_gigabit() -> NetProfile {
        NetProfile {
            latency: 60.0e-6,
            bandwidth: 110.0e6,
        }
    }

    /// 10-gigabit datacenter Ethernet — the object-store cluster's
    /// fabric: lower latency than the blades' gigabit, an order more
    /// bandwidth.
    pub fn datacenter_10g() -> NetProfile {
        NetProfile {
            latency: 20.0e-6,
            bandwidth: 1.2e9,
        }
    }

    /// A cross-site WAN path: tens of milliseconds one way over a
    /// shared gigabit-class link.
    pub fn wan_crosssite() -> NetProfile {
        NetProfile {
            latency: 35.0e-3,
            bandwidth: 120.0e6,
        }
    }

    /// Seconds the sender is occupied by a `bytes`-byte message.
    pub fn occupancy(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// Seconds until a `bytes`-byte message arrives at the receiver.
    pub fn delivery(&self, bytes: u64) -> f64 {
        self.latency + self.occupancy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_model_costs() {
        let n = NetProfile {
            latency: 1e-3,
            bandwidth: 1e6,
        };
        assert!((n.occupancy(500_000) - 0.5).abs() < 1e-12);
        assert!((n.delivery(500_000) - 0.501).abs() < 1e-12);
        assert!((n.delivery(0) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let altix = NetProfile::altix_numalink();
        let blade = NetProfile::blade_gigabit();
        assert!(altix.latency < blade.latency);
        assert!(altix.bandwidth > blade.bandwidth);
    }
}
