//! Fault-aware communication: typed errors, timed receives, and a
//! retry/backoff helper.
//!
//! The plain [`Comm`] operations assume every peer is alive
//! and block forever otherwise — matching stock MPI, where a lost rank
//! hangs the job. The operations here surface rank death (injected via
//! [`simcluster::FaultPlan`]) as typed errors instead, which is what the
//! fault-tolerant pioBLAST scheduler and the fail-fast mpiBLAST baseline
//! build on.

use std::fmt;

use bytes::Bytes;
use simcluster::{Message, SimDuration, SimTime};

use crate::comm::{Comm, RESERVED_TAG_BASE};

/// Why a checked send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination rank is dead; the message would vanish.
    DeadPeer {
        /// The dead destination.
        rank: usize,
    },
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::DeadPeer { rank } => write!(f, "send failed: rank {rank} is dead"),
        }
    }
}

impl std::error::Error for SendError {}

/// Why a timed receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived by the deadline.
    Timeout {
        /// The deadline that passed.
        deadline: SimTime,
    },
    /// The awaited source rank is dead with no matching message queued
    /// or in flight, so none can ever arrive.
    DeadPeer {
        /// The dead source.
        rank: usize,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout { deadline } => {
                write!(f, "receive timed out at {deadline}")
            }
            RecvError::DeadPeer { rank } => {
                write!(f, "receive failed: rank {rank} is dead")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl Comm<'_> {
    /// Like [`Comm::send`], but fails with a typed error instead of
    /// silently losing the message when `dst` is dead.
    pub fn send_checked(&self, dst: usize, tag: u64, payload: Bytes) -> Result<(), SendError> {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        if self.ctx().is_dead(dst) {
            tracelog::instant(
                tracelog::Lane::Sched,
                "send.dead",
                vec![("rank", dst.into())],
            );
            return Err(SendError::DeadPeer { rank: dst });
        }
        self.send(dst, tag, payload);
        Ok(())
    }

    /// Receive with an absolute deadline. Fails with
    /// [`RecvError::DeadPeer`] as soon as a specifically-awaited source
    /// dies (without waiting out the deadline), or with
    /// [`RecvError::Timeout`] when the deadline passes.
    pub fn recv_deadline(
        &self,
        src: Option<usize>,
        tag: Option<u64>,
        deadline: SimTime,
    ) -> Result<Message, RecvError> {
        match self.ctx().recv_until(src, tag, deadline) {
            Some(m) => Ok(m),
            None => match src {
                Some(s) if self.ctx().is_dead(s) => {
                    tracelog::instant(tracelog::Lane::Sched, "peer.dead", vec![("rank", s.into())]);
                    Err(RecvError::DeadPeer { rank: s })
                }
                _ => {
                    tracelog::instant(tracelog::Lane::Sched, "recv.timeout", Vec::new());
                    Err(RecvError::Timeout { deadline })
                }
            },
        }
    }

    /// [`Comm::recv_deadline`] with a deadline relative to now.
    pub fn recv_timeout(
        &self,
        src: Option<usize>,
        tag: Option<u64>,
        timeout: SimDuration,
    ) -> Result<Message, RecvError> {
        self.recv_deadline(src, tag, self.ctx().now() + timeout)
    }

    /// Run `op` up to `attempts` times, charging exponentially growing
    /// virtual-time backoff (`base`, `2*base`, `4*base`, ...) between
    /// failures. Returns the first success or the last error.
    pub fn retry_with_backoff<T, E>(
        &self,
        attempts: u32,
        base: SimDuration,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        assert!(attempts > 0, "need at least one attempt");
        let mut backoff = base;
        let mut last = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        tracelog::instant(
                            tracelog::Lane::Sched,
                            "backoff",
                            vec![
                                ("attempt", (attempt as u64).into()),
                                ("ns", backoff.0.into()),
                            ],
                        );
                        self.ctx().charge(backoff);
                        backoff = backoff + backoff;
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetProfile;
    use simcluster::{FaultPlan, Sim};

    fn net() -> NetProfile {
        NetProfile {
            latency: 1e-6,
            bandwidth: 1e9,
        }
    }

    #[test]
    fn recv_timeout_expires_with_typed_error() {
        let sim = Sim::new(2);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                let err = comm
                    .recv_timeout(Some(1), Some(4), SimDuration::from_millis(3))
                    .unwrap_err();
                assert_eq!(
                    err,
                    RecvError::Timeout {
                        deadline: SimTime(3_000_000)
                    }
                );
                ctx.now()
            } else {
                // Sends far too late for the deadline.
                ctx.charge(SimDuration::from_secs(1));
                comm.send(0, 4, Bytes::from_static(b"late"));
                ctx.now()
            }
        });
        // The receiver resumed exactly at its deadline.
        assert_eq!(out.outputs[0], SimTime(3_000_000));
    }

    #[test]
    fn send_to_dead_peer_is_a_typed_error() {
        let sim = Sim::new(2);
        let plan = FaultPlan::none().kill_at(1, SimTime(1_000));
        let out = sim.run_faulty(plan, |ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                ctx.charge(SimDuration::from_micros(10));
                let err = comm
                    .send_checked(1, 2, Bytes::from_static(b"x"))
                    .unwrap_err();
                assert_eq!(err, SendError::DeadPeer { rank: 1 });
                true
            } else {
                let _ = ctx.recv(Some(0), None); // killed while blocked
                false
            }
        });
        assert_eq!(out.outputs[0], Some(true));
        assert_eq!(out.outputs[1], None);
    }

    #[test]
    fn recv_from_dead_peer_fails_fast() {
        let sim = Sim::new(2);
        let plan = FaultPlan::none().kill_at(1, SimTime(5_000));
        let out = sim.run_faulty(plan, |ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                // One-hour deadline, but the death at 5 us cuts it short.
                let err = comm
                    .recv_timeout(Some(1), None, SimDuration::from_secs(3600))
                    .unwrap_err();
                assert_eq!(err, RecvError::DeadPeer { rank: 1 });
                ctx.now()
            } else {
                let _ = ctx.recv(Some(0), None);
                SimTime::ZERO
            }
        });
        assert_eq!(out.outputs[0], Some(SimTime(5_000)));
    }

    #[test]
    fn in_flight_message_from_dead_sender_still_delivers() {
        let sim = Sim::new(2);
        // Killed after its first (and only) send: the message is on the
        // wire and must still arrive.
        let plan = FaultPlan::none().kill_after_sends(1, 1);
        let out = sim.run_faulty(plan, |ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                let m = comm
                    .recv_timeout(Some(1), Some(3), SimDuration::from_secs(1))
                    .expect("wire message survives the sender");
                m.payload.to_vec()
            } else {
                comm.send(0, 3, Bytes::from_static(b"will"));
                ctx.charge(SimDuration::from_secs(10)); // never completes
                Vec::new()
            }
        });
        assert_eq!(out.outputs[0].as_deref(), Some(&b"will"[..]));
        assert_eq!(out.killed, vec![1]);
    }

    #[test]
    fn retry_backoff_charges_virtual_time() {
        let sim = Sim::new(1);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            let mut calls = 0u32;
            let res: Result<u32, &str> =
                comm.retry_with_backoff(4, SimDuration::from_millis(1), |attempt| {
                    calls += 1;
                    if attempt < 2 {
                        Err("not yet")
                    } else {
                        Ok(attempt)
                    }
                });
            assert_eq!(res, Ok(2));
            assert_eq!(calls, 3);
            // Backoffs: 1 ms + 2 ms.
            ctx.now()
        });
        assert_eq!(out.outputs[0], SimTime(3_000_000));
    }

    #[test]
    fn retry_exhaustion_returns_last_error() {
        let sim = Sim::new(1);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            let res: Result<(), u32> =
                comm.retry_with_backoff(3, SimDuration::from_micros(10), Err);
            res.unwrap_err()
        });
        assert_eq!(out.outputs[0], 2);
    }
}
