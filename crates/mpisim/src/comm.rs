//! Point-to-point communication with the Hockney cost model.

use bytes::Bytes;
use simcluster::{Message, RankCtx, SimDuration};

use crate::net::NetProfile;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u64 = 1 << 48;

/// An MPI-communicator-like wrapper binding a rank context to an
/// interconnect profile.
pub struct Comm<'a> {
    ctx: &'a RankCtx,
    net: NetProfile,
    coll_seq: std::cell::Cell<u64>,
}

impl<'a> Comm<'a> {
    /// Bind a communicator to this rank.
    pub fn new(ctx: &'a RankCtx, net: NetProfile) -> Comm<'a> {
        Comm {
            ctx,
            net,
            coll_seq: std::cell::Cell::new(0),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.ctx.nranks()
    }

    /// The underlying rank context.
    pub fn ctx(&self) -> &RankCtx {
        self.ctx
    }

    /// The interconnect profile.
    pub fn net(&self) -> NetProfile {
        self.net
    }

    /// Send `payload` to `dst` with `tag`. Blocks the sender for the
    /// occupancy time; the message lands at `dst` after the delivery time.
    ///
    /// # Panics
    /// Panics on reserved tags (collectives' namespace) or self-sends.
    pub fn send(&self, dst: usize, tag: u64, payload: Bytes) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, payload: Bytes) {
        assert!(dst != self.rank(), "self-sends are not modeled");
        assert!(dst < self.size(), "rank {dst} out of range");
        let bytes = payload.len() as u64;
        let _span = tracelog::span_args(
            tracelog::Lane::Net,
            "send",
            vec![
                ("dst", dst.into()),
                ("tag", tag.into()),
                ("bytes", bytes.into()),
            ],
        );
        // Post first (delivery measured from send start), then charge the
        // sender's occupancy.
        self.ctx.post(
            dst,
            tag,
            payload,
            SimDuration::from_secs_f64(self.net.delivery(bytes)),
        );
        self.ctx
            .charge(SimDuration::from_secs_f64(self.net.occupancy(bytes)));
    }

    /// Blocking receive with optional source/tag filters.
    pub fn recv(&self, src: Option<usize>, tag: Option<u64>) -> Message {
        let _span = tracelog::span(tracelog::Lane::Net, "recv");
        let m = self.ctx.recv(src, tag);
        tracelog::instant(
            tracelog::Lane::Net,
            "recv.done",
            vec![
                ("src", m.src.into()),
                ("tag", m.tag.into()),
                ("bytes", m.payload.len().into()),
            ],
        );
        m
    }

    /// Next collective sequence number (tags collectives uniquely).
    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::Sim;

    fn net() -> NetProfile {
        NetProfile {
            latency: 1e-3,
            bandwidth: 1e6,
        }
    }

    #[test]
    fn send_costs_follow_the_model() {
        let sim = Sim::new(2);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                comm.send(1, 5, Bytes::from(vec![0u8; 500_000]));
                // Sender was occupied 0.5 s.
                ctx.now().as_secs_f64()
            } else {
                let m = comm.recv(Some(0), Some(5));
                assert_eq!(m.payload.len(), 500_000);
                // Arrived at latency + transfer = 0.501 s.
                m.arrival.as_secs_f64()
            }
        });
        assert!((out.outputs[0] - 0.5).abs() < 1e-9);
        assert!((out.outputs[1] - 0.501).abs() < 1e-9);
    }

    #[test]
    fn messages_between_pairs_are_ordered() {
        let sim = Sim::new(2);
        let out = sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                for i in 0..5u8 {
                    comm.send(1, 9, Bytes::from(vec![i]));
                }
                Vec::new()
            } else {
                (0..5)
                    .map(|_| comm.recv(Some(0), Some(9)).payload[0])
                    .collect()
            }
        });
        assert_eq!(out.outputs[1], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_are_rejected() {
        let sim = Sim::new(2);
        sim.run(|ctx| {
            let comm = Comm::new(&ctx, net());
            if ctx.rank() == 0 {
                comm.send(1, RESERVED_TAG_BASE, Bytes::new());
            } else {
                comm.recv(None, None);
            }
        });
    }
}
