//! Sequence records: identifiers, deflines, and encoded residue data.

use crate::alphabet::{decode, encode, EncodeError, Molecule};

/// A sequence record with its defline and encoded residues.
///
/// Residues are stored encoded (see [`crate::alphabet`]); use
/// [`SeqRecord::residues_ascii`] to recover letters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRecord {
    /// The full defline, without the leading `>` and without a trailing
    /// newline, e.g. `gi|129295|sp|P01013| ovalbumin [Gallus gallus]`.
    pub defline: String,
    /// Encoded residues.
    pub residues: Vec<u8>,
    /// Molecule type the residues are encoded for.
    pub molecule: Molecule,
}

impl SeqRecord {
    /// Build a record from raw ASCII residues, encoding them for `molecule`.
    pub fn from_ascii(
        molecule: Molecule,
        defline: impl Into<String>,
        raw: &[u8],
    ) -> Result<SeqRecord, EncodeError> {
        Ok(SeqRecord {
            defline: defline.into(),
            residues: encode(molecule, raw)?,
            molecule,
        })
    }

    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residues decoded back to ASCII letters.
    pub fn residues_ascii(&self) -> Vec<u8> {
        decode(self.molecule, &self.residues)
    }

    /// The sequence identifier: the first whitespace-delimited token of the
    /// defline (`gi|129295|sp|P01013|` in the example above).
    pub fn id(&self) -> &str {
        self.defline
            .split_ascii_whitespace()
            .next()
            .unwrap_or(&self.defline)
    }

    /// The title: everything after the identifier token.
    pub fn title(&self) -> &str {
        match self.defline.split_once(char::is_whitespace) {
            Some((_, rest)) => rest.trim_start(),
            None => "",
        }
    }
}

/// A borrowed view of one subject sequence inside a database partition.
///
/// `oid` is the ordinal id of the sequence within the *global* database, so
/// results from different partitions can be merged unambiguously.
#[derive(Debug, Clone, Copy)]
pub struct SubjectView<'a> {
    /// Global ordinal id of this sequence in the database.
    pub oid: u32,
    /// Encoded residues.
    pub residues: &'a [u8],
    /// Raw defline bytes (no leading `>`).
    pub defline: &'a [u8],
}

impl SubjectView<'_> {
    /// Sequence length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the subject holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Identifier token of the defline, lossily decoded.
    pub fn id(&self) -> String {
        let defline = String::from_utf8_lossy(self.defline);
        defline
            .split_ascii_whitespace()
            .next()
            .unwrap_or("")
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_from_ascii_round_trips() {
        let rec =
            SeqRecord::from_ascii(Molecule::Protein, "sp|P01013| ovalbumin", b"MKVLAA").unwrap();
        assert_eq!(rec.len(), 6);
        assert_eq!(rec.residues_ascii(), b"MKVLAA");
    }

    #[test]
    fn id_and_title_split() {
        let rec = SeqRecord::from_ascii(
            Molecule::Protein,
            "gi|123|ref|NP_1.1| hypothetical protein [Synthetica]",
            b"ACDEF",
        )
        .unwrap();
        assert_eq!(rec.id(), "gi|123|ref|NP_1.1|");
        assert_eq!(rec.title(), "hypothetical protein [Synthetica]");
    }

    #[test]
    fn id_of_title_less_defline() {
        let rec = SeqRecord::from_ascii(Molecule::Protein, "seq1", b"ACDEF").unwrap();
        assert_eq!(rec.id(), "seq1");
        assert_eq!(rec.title(), "");
    }

    #[test]
    fn empty_sequence_is_representable() {
        let rec = SeqRecord::from_ascii(Molecule::Protein, "empty", b"").unwrap();
        assert!(rec.is_empty());
    }

    #[test]
    fn subject_view_id() {
        let view = SubjectView {
            oid: 7,
            residues: &[0, 1, 2],
            defline: b"gi|9| protein",
        };
        assert_eq!(view.id(), "gi|9|");
        assert_eq!(view.len(), 3);
    }
}
