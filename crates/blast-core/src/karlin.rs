//! Karlin–Altschul statistical parameters.
//!
//! Given a scoring matrix and residue background frequencies, the local
//! alignment score of random sequences follows an extreme-value
//! distribution characterized by `lambda`, `K` and the relative entropy
//! `H`. This module computes those parameters from first principles
//! (Karlin & Altschul, PNAS 1990), the way NCBI's `karlin.c` does:
//!
//! * `lambda` is the unique positive root of `Σ pᵢpⱼ·exp(λ·sᵢⱼ) = 1`;
//! * `H = λ · Σ pᵢpⱼ·sᵢⱼ·exp(λ·sᵢⱼ)`;
//! * `K = gcd·λ·exp(−2σ) / (H·(1 − exp(−λ·gcd)))` where
//!   `σ = Σ_{j≥1} j⁻¹·[P(Sⱼ ≥ 0) + E(exp(λSⱼ); Sⱼ < 0)]` and `Sⱼ` is the
//!   j-fold sum of the per-pair score distribution.
//!
//! Gapped search cannot be solved analytically; like NCBI BLAST we carry a
//! small table of empirically fitted gapped parameters for the supported
//! matrices (the paper's runs use the blastp default BLOSUM62 with gap
//! open 11 / extend 1).

use crate::alphabet::Molecule;
use crate::matrix::ScoreMatrix;

/// The statistical parameter triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale parameter of the extreme-value distribution (nats per score unit).
    pub lambda: f64,
    /// Search-space scale constant.
    pub k: f64,
    /// Relative entropy of the target vs background distribution (nats/pair).
    pub h: f64,
}

impl KarlinParams {
    /// `ln K`, used in bit-score conversion.
    #[inline]
    pub fn log_k(&self) -> f64 {
        self.k.ln()
    }

    /// Convert a raw score to a normalized bit score.
    #[inline]
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.log_k()) / std::f64::consts::LN_2
    }

    /// Raw score needed to reach a target bit score (rounded up).
    #[inline]
    pub fn raw_for_bits(&self, bits: f64) -> i32 {
        ((bits * std::f64::consts::LN_2 + self.log_k()) / self.lambda).ceil() as i32
    }
}

/// Errors from the parameter solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KarlinError {
    /// Expected pair score is non-negative: no local-alignment statistics
    /// exist (lambda has no positive root).
    NonNegativeExpectedScore,
    /// The matrix has no positive score: every alignment is rejected.
    NoPositiveScore,
    /// Root finding failed to converge.
    NoConvergence,
}

impl std::fmt::Display for KarlinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KarlinError::NonNegativeExpectedScore => {
                write!(f, "expected pair score is non-negative; lambda undefined")
            }
            KarlinError::NoPositiveScore => write!(f, "matrix has no positive score"),
            KarlinError::NoConvergence => write!(f, "lambda root finding did not converge"),
        }
    }
}

impl std::error::Error for KarlinError {}

/// Robinson & Robinson (1991) amino-acid background frequencies, indexed by
/// the first 20 protein codes (A R N D C Q E G H I L K M F P S T W Y V).
pub const ROBINSON_FREQS: [f64; 20] = [
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
    0.09019, 0.05744, 0.02243, 0.03856, 0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
];

/// Background residue frequencies over a molecule's alphabet.
///
/// Ambiguity codes carry zero probability; the 20 standard amino acids (or
/// 4 bases) carry the full mass, renormalized to sum to one.
#[derive(Debug, Clone)]
pub struct Background {
    freqs: Vec<f64>,
}

impl Background {
    /// Standard protein background (Robinson–Robinson), zero elsewhere.
    pub fn protein() -> Background {
        let mut freqs = vec![0.0; Molecule::Protein.alphabet_size()];
        let total: f64 = ROBINSON_FREQS.iter().sum();
        for (i, &f) in ROBINSON_FREQS.iter().enumerate() {
            freqs[i] = f / total;
        }
        Background { freqs }
    }

    /// Uniform DNA background (¼ per base), zero for `N`.
    pub fn dna() -> Background {
        let mut freqs = vec![0.0; Molecule::Dna.alphabet_size()];
        for f in freqs.iter_mut().take(4) {
            *f = 0.25;
        }
        Background { freqs }
    }

    /// Default background for a molecule.
    pub fn for_molecule(molecule: Molecule) -> Background {
        match molecule {
            Molecule::Protein => Background::protein(),
            Molecule::Dna => Background::dna(),
        }
    }

    /// Build from explicit frequencies (renormalized; negatives rejected).
    pub fn from_freqs(freqs: Vec<f64>) -> Option<Background> {
        let total: f64 = freqs.iter().sum();
        if total <= 0.0 || freqs.iter().any(|&f| f < 0.0 || !f.is_finite()) {
            return None;
        }
        Some(Background {
            freqs: freqs.into_iter().map(|f| f / total).collect(),
        })
    }

    /// Frequency of encoded residue `code` (zero outside the table).
    #[inline]
    pub fn freq(&self, code: u8) -> f64 {
        self.freqs.get(code as usize).copied().unwrap_or(0.0)
    }

    /// Number of codes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

/// The distribution of the per-pair score under the background model:
/// `prob[i]` is the probability of score `low + i as i32`.
#[derive(Debug, Clone)]
pub struct ScoreDistribution {
    /// Lowest score with non-zero probability.
    pub low: i32,
    /// Highest score with non-zero probability.
    pub high: i32,
    /// Probabilities for scores `low..=high`.
    pub prob: Vec<f64>,
}

impl ScoreDistribution {
    /// Tabulate the pair-score distribution of `matrix` under `background`.
    pub fn from_matrix(matrix: &ScoreMatrix, background: &Background) -> ScoreDistribution {
        let n = matrix.size().min(background.len());
        let mut low = i32::MAX;
        let mut high = i32::MIN;
        for a in 0..n as u8 {
            if background.freq(a) == 0.0 {
                continue;
            }
            for b in 0..n as u8 {
                if background.freq(b) == 0.0 {
                    continue;
                }
                let s = matrix.score(a, b);
                low = low.min(s);
                high = high.max(s);
            }
        }
        if low > high {
            // Degenerate background; produce the zero distribution.
            return ScoreDistribution {
                low: 0,
                high: 0,
                prob: vec![1.0],
            };
        }
        let mut prob = vec![0.0; (high - low + 1) as usize];
        for a in 0..n as u8 {
            let fa = background.freq(a);
            if fa == 0.0 {
                continue;
            }
            for b in 0..n as u8 {
                let fb = background.freq(b);
                if fb == 0.0 {
                    continue;
                }
                prob[(matrix.score(a, b) - low) as usize] += fa * fb;
            }
        }
        ScoreDistribution { low, high, prob }
    }

    /// Expected score `Σ p(s)·s`.
    pub fn mean(&self) -> f64 {
        self.prob
            .iter()
            .enumerate()
            .map(|(i, &p)| p * (self.low + i as i32) as f64)
            .sum()
    }

    /// Greatest common divisor of all scores with non-zero probability.
    pub fn score_gcd(&self) -> i32 {
        let mut g = 0i32;
        for (i, &p) in self.prob.iter().enumerate() {
            if p > 0.0 {
                let s = self.low + i as i32;
                if s != 0 {
                    g = gcd(g, s.abs());
                }
            }
        }
        g.max(1)
    }
}

fn gcd(a: i32, b: i32) -> i32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Solve for the ungapped Karlin–Altschul parameters of a matrix under a
/// background distribution.
pub fn solve_ungapped(
    matrix: &ScoreMatrix,
    background: &Background,
) -> Result<KarlinParams, KarlinError> {
    let dist = ScoreDistribution::from_matrix(matrix, background);
    solve_from_distribution(&dist)
}

/// Solve parameters directly from a score distribution.
pub fn solve_from_distribution(dist: &ScoreDistribution) -> Result<KarlinParams, KarlinError> {
    if dist.high <= 0 {
        return Err(KarlinError::NoPositiveScore);
    }
    if dist.mean() >= 0.0 {
        return Err(KarlinError::NonNegativeExpectedScore);
    }
    let lambda = solve_lambda(dist)?;
    let h = entropy(dist, lambda);
    let k = solve_k(dist, lambda, h);
    Ok(KarlinParams { lambda, k, h })
}

/// `phi(λ) = Σ p(s)·exp(λ·s) − 1`; strictly convex with `phi(0) = 0`, a
/// negative derivative at 0 (mean < 0) and `phi → ∞`, so it has exactly one
/// positive root.
fn phi(dist: &ScoreDistribution, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for (i, &p) in dist.prob.iter().enumerate() {
        if p > 0.0 {
            sum += p * (lambda * (dist.low + i as i32) as f64).exp();
        }
    }
    sum - 1.0
}

fn solve_lambda(dist: &ScoreDistribution) -> Result<f64, KarlinError> {
    // Bracket the root: phi(0)=0 and phi'(0)<0, so walk right until positive.
    let mut hi = 0.5;
    let mut iters = 0;
    while phi(dist, hi) <= 0.0 {
        hi *= 2.0;
        iters += 1;
        if iters > 64 {
            return Err(KarlinError::NoConvergence);
        }
    }
    let mut lo = 0.0;
    // Bisection to ~1e-12 relative precision; phi is cheap to evaluate.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(dist, mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-14 + 1e-12 * hi {
            break;
        }
    }
    let lambda = 0.5 * (lo + hi);
    if lambda <= 0.0 || !lambda.is_finite() {
        return Err(KarlinError::NoConvergence);
    }
    Ok(lambda)
}

/// Relative entropy `H = λ · Σ p(s)·s·exp(λ·s)` (nats per aligned pair).
fn entropy(dist: &ScoreDistribution, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for (i, &p) in dist.prob.iter().enumerate() {
        if p > 0.0 {
            let s = (dist.low + i as i32) as f64;
            sum += p * s * (lambda * s).exp();
        }
    }
    lambda * sum
}

/// Number of convolution rounds in the `sigma` series. Each round j
/// contributes O(1/j)·(geometrically shrinking mass), so ~30 rounds give
/// several digits — the same order NCBI uses.
const K_ITERATIONS: usize = 40;

/// Compute `K` from the sigma series (see module docs).
fn solve_k(dist: &ScoreDistribution, lambda: f64, h: f64) -> f64 {
    let gcd = dist.score_gcd() as f64;
    // Convolve the score distribution with itself j times, accumulating
    // sigma = Σ_j (1/j)·[P(Sⱼ ≥ 0) + E(e^{λSⱼ}; Sⱼ < 0)]. Both terms decay
    // exponentially in j (the first by the negative drift, the second
    // because it equals the λ-tilted walk's probability of being negative),
    // so the truncated series converges quickly.
    let mut sigma = 0.0;
    let base_len = dist.prob.len();
    let mut conv = dist.prob.clone();
    let mut conv_low = dist.low;
    for j in 1..=K_ITERATIONS {
        let mut term = 0.0;
        for (i, &p) in conv.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let s = conv_low + i as i32;
            if s >= 0 {
                term += p;
            } else {
                term += p * (lambda * s as f64).exp();
            }
        }
        sigma += term / j as f64;
        if j < K_ITERATIONS {
            // One more convolution with the base distribution.
            let mut next = vec![0.0; conv.len() + base_len - 1];
            for (i, &p) in conv.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                for (k, &q) in dist.prob.iter().enumerate() {
                    if q > 0.0 {
                        next[i + k] += p * q;
                    }
                }
            }
            conv = next;
            conv_low += dist.low;
        }
    }
    gcd * lambda * (-2.0 * sigma).exp() / (h * (1.0 - (-lambda * gcd).exp()))
}

/// Affine gap penalties: opening a gap of length g costs `open + g·extend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GapPenalties {
    /// Gap existence cost.
    pub open: i32,
    /// Per-residue gap extension cost.
    pub extend: i32,
}

impl GapPenalties {
    /// The blastp default for BLOSUM62: open 11, extend 1.
    pub const BLOSUM62_DEFAULT: GapPenalties = GapPenalties {
        open: 11,
        extend: 1,
    };

    /// Total cost of a gap of `len` residues.
    #[inline]
    pub fn cost(&self, len: i32) -> i32 {
        self.open + self.extend * len
    }
}

/// Empirically fitted gapped parameters (the NCBI approach: gapped
/// statistics are not analytically solvable, so published fits are used).
///
/// Returns `None` for unsupported (matrix, penalties) combinations; callers
/// then fall back to ungapped parameters, which is conservative (it
/// overestimates E-values slightly).
pub fn gapped_params(matrix_name: &str, gaps: GapPenalties) -> Option<KarlinParams> {
    match (matrix_name, gaps.open, gaps.extend) {
        // From the NCBI blastp parameter tables.
        ("BLOSUM62", 11, 1) => Some(KarlinParams {
            lambda: 0.267,
            k: 0.041,
            h: 0.14,
        }),
        ("BLOSUM62", 10, 1) => Some(KarlinParams {
            lambda: 0.243,
            k: 0.024,
            h: 0.10,
        }),
        ("BLOSUM62", 9, 2) => Some(KarlinParams {
            lambda: 0.279,
            k: 0.058,
            h: 0.19,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blosum62_params() -> KarlinParams {
        solve_ungapped(&ScoreMatrix::blosum62(), &Background::protein()).unwrap()
    }

    #[test]
    fn blosum62_lambda_matches_published_value() {
        // NCBI reports ungapped BLOSUM62 lambda = 0.3176.
        let p = blosum62_params();
        assert!((p.lambda - 0.3176).abs() < 0.002, "lambda = {}", p.lambda);
    }

    #[test]
    fn blosum62_h_matches_published_value() {
        // NCBI reports H = 0.4012 nats for ungapped BLOSUM62.
        let p = blosum62_params();
        assert!((p.h - 0.4012).abs() < 0.01, "H = {}", p.h);
    }

    #[test]
    fn blosum62_k_matches_published_value() {
        // NCBI reports K = 0.134 for ungapped BLOSUM62.
        let p = blosum62_params();
        assert!((p.k - 0.134).abs() < 0.02, "K = {}", p.k);
    }

    #[test]
    fn dna_params_are_sane() {
        let p = solve_ungapped(&ScoreMatrix::dna(1, -3), &Background::dna()).unwrap();
        // Published blastn +1/−3: lambda = 1.374, K = 0.711.
        assert!((p.lambda - 1.374).abs() < 0.01, "lambda = {}", p.lambda);
        assert!((p.k - 0.711).abs() < 0.05, "K = {}", p.k);
    }

    #[test]
    fn bit_score_round_trip() {
        let p = blosum62_params();
        let raw = 100;
        let bits = p.bit_score(raw);
        let back = p.raw_for_bits(bits);
        assert!((back - raw).abs() <= 1);
    }

    #[test]
    fn positive_mean_matrix_is_rejected() {
        // An all-positive matrix has no negative drift.
        let m = ScoreMatrix::dna(1, -3);
        let mut scores = Vec::new();
        for a in 0..m.size() as u8 {
            for b in 0..m.size() as u8 {
                let _ = (a, b);
                scores.push(2);
            }
        }
        let m = ScoreMatrix::from_table("pos", Molecule::Dna, scores);
        assert_eq!(
            solve_ungapped(&m, &Background::dna()).unwrap_err(),
            KarlinError::NonNegativeExpectedScore
        );
    }

    #[test]
    fn all_negative_matrix_is_rejected() {
        let size = Molecule::Dna.alphabet_size();
        let m = ScoreMatrix::from_table("neg", Molecule::Dna, vec![-1; size * size]);
        assert_eq!(
            solve_ungapped(&m, &Background::dna()).unwrap_err(),
            KarlinError::NoPositiveScore
        );
    }

    #[test]
    fn score_distribution_sums_to_one() {
        let dist = ScoreDistribution::from_matrix(&ScoreMatrix::blosum62(), &Background::protein());
        let total: f64 = dist.prob.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.mean() < 0.0);
    }

    #[test]
    fn gcd_of_blosum62_scores_is_one() {
        let dist = ScoreDistribution::from_matrix(&ScoreMatrix::blosum62(), &Background::protein());
        assert_eq!(dist.score_gcd(), 1);
    }

    #[test]
    fn gapped_table_has_default() {
        let p = gapped_params("BLOSUM62", GapPenalties::BLOSUM62_DEFAULT).unwrap();
        assert!((p.lambda - 0.267).abs() < 1e-9);
        assert!(gapped_params("BLOSUM62", GapPenalties { open: 7, extend: 7 }).is_none());
    }

    #[test]
    fn background_normalizes() {
        let bg = Background::protein();
        let total: f64 = (0..bg.len() as u8).map(|c| bg.freq(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(bg.freq(crate::alphabet::PROTEIN_X), 0.0);
    }

    #[test]
    fn background_from_freqs_validates() {
        assert!(Background::from_freqs(vec![0.0, 0.0]).is_none());
        assert!(Background::from_freqs(vec![1.0, -0.5]).is_none());
        let bg = Background::from_freqs(vec![1.0, 3.0]).unwrap();
        assert!((bg.freq(1) - 0.75).abs() < 1e-12);
    }
}
