//! The end-to-end BLAST search kernel.
//!
//! [`BlastSearcher`] runs the classic pipeline over one database partition:
//! scan each subject against a query-set lookup table, trigger two-hit
//! ungapped X-drop extensions, escalate good segments to gapped X-drop
//! extensions, cull redundant HSPs, score against the *global* search
//! space, and keep the best `hitlist_size` subjects per query.
//!
//! The kernel is partition-agnostic: it searches whatever
//! [`SubjectSource`] it is handed — a whole database, a physical fragment
//! file (mpiBLAST) or an in-memory virtual fragment (pioBLAST) — and its
//! statistics stay identical because [`crate::stats::SearchSpace`] is
//! always derived from whole-database statistics.

use crate::alphabet::Molecule;
use crate::extend::{gapped_xdrop, ungapped_xdrop, ExtendScratch, GappedHit, UngappedHit};
use crate::filter::{mask_in_place, FilterParams};
use crate::hsp::{cull_contained_sorted, Hsp, RankKey};
use crate::karlin::{gapped_params, solve_ungapped, Background, GapPenalties, KarlinParams};
use crate::lookup::{LookupTable, QuerySet};
use crate::matrix::ScoreMatrix;
use crate::seq::{SeqRecord, SubjectView};
use crate::stats::{DbStats, SearchSpace};

/// A source of database subjects for one search pass.
pub trait SubjectSource {
    /// Number of subjects in this partition.
    fn num_subjects(&self) -> usize;
    /// The `i`-th subject of this partition.
    fn subject(&self, i: usize) -> SubjectView<'_>;
}

/// Search configuration (the blastp defaults mirror NCBI's).
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// Molecule searched.
    pub molecule: Molecule,
    /// Scoring matrix.
    pub matrix: ScoreMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Seed word length (3 for blastp, 11 for blastn).
    pub word_len: usize,
    /// Word alphabet size (20 for protein, 4 for DNA).
    pub word_alphabet: usize,
    /// Neighborhood threshold `T` (word pairs scoring >= T seed).
    pub threshold: i32,
    /// Two-hit window `A` in residues; `0` selects single-hit seeding.
    pub two_hit_window: u32,
    /// Ungapped X-drop, in bits.
    pub xdrop_ungapped_bits: f64,
    /// Gapped X-drop, in bits.
    pub xdrop_gapped_bits: f64,
    /// Ungapped score (bits) that triggers a gapped extension.
    pub gap_trigger_bits: f64,
    /// E-value cutoff for reporting.
    pub expect: f64,
    /// Best subjects kept per query per partition.
    pub hitlist_size: usize,
    /// HSPs kept per (query, subject) pair.
    pub max_hsps_per_subject: usize,
    /// Whether to mask low-complexity query regions (`-F T`).
    pub filter_query: bool,
    /// Ungapped Karlin–Altschul parameters.
    pub ungapped: KarlinParams,
    /// Gapped Karlin–Altschul parameters.
    pub gapped: KarlinParams,
}

impl SearchParams {
    /// blastp defaults: BLOSUM62, gaps 11/1, word 3, T=11, two-hit A=40,
    /// X-drops 7/15 bits, gap trigger 22 bits, E=10, hitlist 500.
    pub fn blastp() -> SearchParams {
        let matrix = ScoreMatrix::blosum62();
        let ungapped = solve_ungapped(&matrix, &Background::protein())
            .expect("BLOSUM62 has valid ungapped statistics");
        let gaps = GapPenalties::BLOSUM62_DEFAULT;
        let gapped = gapped_params("BLOSUM62", gaps).expect("default gapped table entry");
        SearchParams {
            molecule: Molecule::Protein,
            matrix,
            gaps,
            word_len: 3,
            word_alphabet: 20,
            threshold: 11,
            two_hit_window: 40,
            xdrop_ungapped_bits: 7.0,
            xdrop_gapped_bits: 15.0,
            gap_trigger_bits: 22.0,
            expect: 10.0,
            hitlist_size: 500,
            max_hsps_per_subject: 25,
            filter_query: true,
            ungapped,
            gapped,
        }
    }

    /// blastn-like defaults: +1/−3, word 11 exact, single-hit seeding.
    pub fn blastn() -> SearchParams {
        let matrix = ScoreMatrix::dna(1, -3);
        let ungapped = solve_ungapped(&matrix, &Background::dna()).expect("DNA matrix statistics");
        // blastn gapped statistics are well approximated by ungapped ones
        // for these small penalties (documented NCBI practice).
        let gapped = ungapped;
        let gaps = GapPenalties { open: 5, extend: 2 };
        SearchParams {
            molecule: Molecule::Dna,
            matrix,
            gaps,
            word_len: 11,
            word_alphabet: 4,
            threshold: 11, // exact match: full self-score of a +1 word
            two_hit_window: 0,
            xdrop_ungapped_bits: 20.0,
            xdrop_gapped_bits: 30.0,
            gap_trigger_bits: 22.0,
            expect: 10.0,
            hitlist_size: 500,
            max_hsps_per_subject: 25,
            filter_query: true,
            ungapped,
            gapped,
        }
    }

    /// Convert a bit quantity to raw score units via the ungapped lambda
    /// (how NCBI converts X-drop and trigger settings).
    fn bits_to_raw(&self, bits: f64) -> i32 {
        (bits * std::f64::consts::LN_2 / self.ungapped.lambda).round() as i32
    }
}

/// Queries prepared for searching: masked, concatenated, with the lookup
/// table and per-query global search spaces. Build once, search any number
/// of partitions.
pub struct PreparedQueries {
    /// Original (unmasked) query records, for output.
    pub records: Vec<SeqRecord>,
    set: QuerySet,
    lookup: LookupTable,
    /// Gapped search space per query (global statistics).
    pub spaces: Vec<SearchSpace>,
    /// Raw-score cutoff per query for the final E-value threshold.
    cutoffs: Vec<i32>,
}

impl PreparedQueries {
    /// Prepare `records` for search against a database with global
    /// statistics `db`.
    pub fn prepare(params: &SearchParams, records: Vec<SeqRecord>, db: DbStats) -> PreparedQueries {
        let masked: Vec<Vec<u8>> = records
            .iter()
            .map(|r| {
                let mut q = r.residues.clone();
                if params.filter_query {
                    mask_in_place(
                        &mut q,
                        params.molecule,
                        FilterParams::for_molecule(params.molecule),
                    );
                }
                q
            })
            .collect();
        let sentinel = (params.molecule.alphabet_size() - 1) as u8;
        let set = QuerySet::new(&masked, sentinel);
        let lookup = LookupTable::build(
            &set,
            &params.matrix,
            params.word_len,
            params.word_alphabet,
            params.threshold,
        );
        let spaces: Vec<SearchSpace> = records
            .iter()
            .map(|r| SearchSpace::new(params.gapped, r.len() as u64, db))
            .collect();
        let cutoffs = spaces
            .iter()
            .map(|sp| sp.cutoff_score(params.expect))
            .collect();
        PreparedQueries {
            records,
            set,
            lookup,
            spaces,
            cutoffs,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total query residues.
    pub fn total_residues(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64).sum()
    }

    /// Size of the serialized form (for communication cost accounting):
    /// residues plus deflines.
    pub fn wire_size(&self) -> u64 {
        self.records
            .iter()
            .map(|r| (r.len() + r.defline.len() + 16) as u64)
            .sum()
    }

    /// The concatenated, masked query set.
    pub fn set(&self) -> &QuerySet {
        &self.set
    }

    /// The neighborhood-word lookup table over the query set.
    pub fn lookup(&self) -> &LookupTable {
        &self.lookup
    }

    /// Raw-score reporting cutoff of query `idx`.
    pub fn cutoff(&self, idx: usize) -> i32 {
        self.cutoffs[idx]
    }
}

/// All hits of one query against one subject.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectHit {
    /// Global ordinal id of the subject.
    pub oid: u32,
    /// Subject length in residues (needed for output).
    pub subject_len: u32,
    /// HSPs in canonical order (best first).
    pub hsps: Vec<Hsp>,
}

impl SubjectHit {
    /// Best (first) HSP's score.
    pub fn best_score(&self) -> i32 {
        self.hsps.first().map_or(0, |h| h.score)
    }

    /// Best (first) HSP's E-value.
    pub fn best_evalue(&self) -> f64 {
        self.hsps.first().map_or(f64::INFINITY, |h| h.evalue)
    }
}

/// Results of searching one partition: per query, the retained subjects.
#[derive(Debug, Clone, Default)]
pub struct FragmentResult {
    /// `per_query[q]` lists hits of query `q`, best subject first.
    pub per_query: Vec<Vec<SubjectHit>>,
    /// Search-effort counters.
    pub stats: SearchStats,
}

/// Instrumentation counters for one search pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Subjects scanned.
    pub subjects: u64,
    /// Residues scanned.
    pub residues: u64,
    /// Raw lookup hits.
    pub seed_hits: u64,
    /// Ungapped extensions triggered (two-hit pairs).
    pub ungapped_extensions: u64,
    /// Gapped extensions performed.
    pub gapped_extensions: u64,
    /// HSPs surviving all filters.
    pub hsps_kept: u64,
}

impl SearchStats {
    /// Accumulate another pass's counters.
    pub fn merge(&mut self, other: &SearchStats) {
        self.subjects += other.subjects;
        self.residues += other.residues;
        self.seed_hits += other.seed_hits;
        self.ungapped_extensions += other.ungapped_extensions;
        self.gapped_extensions += other.gapped_extensions;
        self.hsps_kept += other.hsps_kept;
    }
}

/// The search kernel. Create once per (params, queries) pair; call
/// [`BlastSearcher::search`] once per partition, threading one
/// [`SearchScratch`] through every call.
pub struct BlastSearcher<'a> {
    params: &'a SearchParams,
    queries: &'a PreparedQueries,
    x_ungapped: i32,
    x_gapped: i32,
    gap_trigger: i32,
}

/// Reusable working memory for the search kernel's per-subject path.
///
/// The kernel's steady state — scan a subject, extend its seeds, collect
/// its HSPs — performs **zero heap allocations** when driven through one
/// `SearchScratch`: diagonal state is stamped rather than cleared,
/// candidate and HSP vectors are recycled at their high-water marks, and
/// the gapped-extension DP rows live in the embedded
/// [`ExtendScratch`]. A worker owns exactly one scratch and reuses it
/// across all subjects of all fragments of a run; reuse never changes
/// results (see the `scratch_reuse_is_invisible` property test).
#[derive(Default)]
pub struct SearchScratch {
    diag: DiagState,
    /// Gapped alignment envelopes found on the current subject.
    gapped_hits: Vec<(u32, GappedHit)>,
    /// Ungapped-only HSP candidates on the current subject.
    ungapped_keep: Vec<(u32, UngappedHit)>,
    /// Flat per-subject HSP accumulator, decorated with the (query,
    /// ranking) sort key so the sort never recomputes keys.
    keyed: Vec<((u32, RankKey), Hsp)>,
    /// One query's culled HSP run, reused across queries and subjects.
    run: Vec<Hsp>,
    /// Final ranking decoration: (best-HSP key, subject hit).
    ranked: Vec<(RankKey, SubjectHit)>,
    /// DP buffers for gapped X-drop extension.
    ext: ExtendScratch,
}

impl SearchScratch {
    /// Fresh scratch; buffers grow to their high-water marks on use.
    pub fn new() -> SearchScratch {
        SearchScratch::default()
    }
}

/// One diagonal's scan state. Kept as a single 16-byte cell so each seed
/// hit touches one cache line; the seed kernel's four parallel arrays
/// cost up to four lines per hit, and the seed-hit loop is the kernel's
/// hottest path.
#[derive(Clone, Copy, Default)]
struct DiagCell {
    stamp: u32,
    last_hit: u32,
    ext_stamp: u32,
    last_ext_end: u32,
}

/// Per-diagonal scan state, stamped to avoid clearing between subjects.
#[derive(Default)]
struct DiagState {
    cells: Vec<DiagCell>,
    current: u32,
}

impl DiagState {
    fn begin_subject(&mut self, diagonals: usize) {
        if self.cells.len() < diagonals {
            self.cells.resize(diagonals, DiagCell::default());
        }
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Stamp wrapped: hard reset.
            for cell in &mut self.cells {
                cell.stamp = 0;
                cell.ext_stamp = 0;
            }
            self.current = 1;
        }
    }

    /// Combined per-seed-hit update: a single cell load decides whether the
    /// hit is masked by an earlier ungapped extension on this diagonal,
    /// completes a two-hit pair (return `true` = extend), or merely arms
    /// the diagonal. Folding the extension-mask check and the two-hit
    /// bookkeeping into one call costs one bounds check and one cell load
    /// per seed hit instead of two, and seed hits outnumber every other
    /// kernel event by two orders of magnitude.
    ///
    /// NCBI's two-hit rule: a new hit pairs with the stored one when they
    /// do not overlap (`dist >= word_len`) and fall within the window `A`
    /// (`dist <= window`). An overlapping hit *keeps* the stored position
    /// (so a later hit can still pair with the original); a hit beyond the
    /// window replaces it. A hit masked by a previous extension leaves the
    /// stored pair state untouched.
    /// The body is written branch-free (selects over the loaded cell):
    /// the masked/fresh/overlap outcomes depend on just-loaded data and
    /// mispredict heavily in a branchy formulation, serialising the scan
    /// on the cell load latency. Only the loop-invariant `window == 0`
    /// test remains a branch. Stale cells (stamp from an older subject)
    /// make `dist` garbage, so it uses wrapping arithmetic; `fresh` then
    /// forces the update and vetoes the pair, exactly as the stamped
    /// branchy logic did.
    #[inline]
    fn admit_hit(&mut self, d: usize, new_pos: u32, word_len: u32, window: u32) -> bool {
        let current = self.current;
        let cell = &mut self.cells[d];
        let masked = cell.ext_stamp == current && new_pos + word_len <= cell.last_ext_end;
        if window == 0 {
            // Single-hit seeding: every unmasked hit extends.
            cell.stamp = if masked { cell.stamp } else { current };
            cell.last_hit = if masked { cell.last_hit } else { new_pos };
            return !masked;
        }
        let fresh = cell.stamp != current;
        let dist = new_pos.wrapping_sub(cell.last_hit);
        let overlap = dist < word_len;
        // Two-hit pair: stored hit present, non-overlapping, within the
        // window. Overlapping hits keep the stored position (so a later
        // hit can still pair with the original); beyond-window hits
        // restart the pair, completed pairs reset it.
        let pair = !fresh & !overlap & (dist <= window);
        let update = !masked & (fresh | !overlap);
        cell.stamp = if masked { cell.stamp } else { current };
        cell.last_hit = if update { new_pos } else { cell.last_hit };
        !masked & pair
    }

    #[inline]
    fn set_extension_end(&mut self, d: usize, end: u32) {
        let cell = &mut self.cells[d];
        cell.ext_stamp = self.current;
        cell.last_ext_end = end;
    }
}

impl<'a> BlastSearcher<'a> {
    /// Bind the kernel to a parameter set and prepared queries.
    pub fn new(params: &'a SearchParams, queries: &'a PreparedQueries) -> BlastSearcher<'a> {
        BlastSearcher {
            params,
            queries,
            x_ungapped: params.bits_to_raw(params.xdrop_ungapped_bits),
            x_gapped: params.bits_to_raw(params.xdrop_gapped_bits),
            gap_trigger: params.bits_to_raw(params.gap_trigger_bits),
        }
    }

    /// Search one partition, returning per-query subject hits.
    ///
    /// `scratch` is caller-owned working memory: pass the same scratch to
    /// every call (across subjects, fragments, and runs) and the
    /// per-subject path stays allocation-free. Results are identical for
    /// a fresh and a reused scratch.
    pub fn search<S: SubjectSource + ?Sized>(
        &self,
        source: &S,
        scratch: &mut SearchScratch,
    ) -> FragmentResult {
        let mut result = self.search_subject_range(source, 0..source.num_subjects(), scratch);
        self.finalize(&mut result, scratch);
        result
    }

    /// Scan a contiguous subject range of one partition, returning
    /// *unranked* per-query hits (subject-scan order, no hitlist cut).
    ///
    /// This is the shardable half of [`BlastSearcher::search`]: disjoint
    /// ranges covering `0..num_subjects` can be scanned with independent
    /// scratches (one per compute slot) and recombined with
    /// [`BlastSearcher::merge_sharded`] — the merged result is
    /// byte-identical to the serial search for every shard count, because
    /// ranking keys are computed per subject and each subject appears in
    /// exactly one shard.
    pub fn search_subject_range<S: SubjectSource + ?Sized>(
        &self,
        source: &S,
        range: std::ops::Range<usize>,
        scratch: &mut SearchScratch,
    ) -> FragmentResult {
        let mut result = FragmentResult {
            per_query: vec![Vec::new(); self.queries.len()],
            stats: SearchStats::default(),
        };
        let concat_len = self.queries.set.concat().len();
        for si in range {
            let subject = source.subject(si);
            self.search_subject(&subject, concat_len, scratch, &mut result);
        }
        result
    }

    /// Rank a scanned partition: keep only the best `hitlist_size`
    /// subjects per query, sorting on ranking keys computed once per
    /// subject instead of twice per comparison. Keys are distinct (each
    /// subject appears once per partition), so the unstable sort is
    /// deterministic.
    pub fn finalize(&self, result: &mut FragmentResult, scratch: &mut SearchScratch) {
        let ranked = &mut scratch.ranked;
        for hits in &mut result.per_query {
            ranked.clear();
            ranked.extend(hits.drain(..).map(|h| (h.hsps[0].rank_key(), h)));
            ranked.sort_unstable_by_key(|a| a.0);
            ranked.truncate(self.params.hitlist_size);
            hits.extend(ranked.drain(..).map(|(_, h)| h));
        }
    }

    /// Deterministically merge per-shard scan results (from
    /// [`BlastSearcher::search_subject_range`] over disjoint ranges of one
    /// partition) into the finalized whole-partition result.
    ///
    /// Per-query hit lists are concatenated in shard order, then ranked by
    /// [`BlastSearcher::finalize`]. Each subject belongs to exactly one
    /// shard, so every rank key appears once and the sort's output is
    /// independent of both shard count and shard boundaries — byte-
    /// identical to the serial kernel.
    pub fn merge_sharded(
        &self,
        shards: impl IntoIterator<Item = FragmentResult>,
        scratch: &mut SearchScratch,
    ) -> FragmentResult {
        let mut merged = FragmentResult {
            per_query: vec![Vec::new(); self.queries.len()],
            stats: SearchStats::default(),
        };
        for shard in shards {
            merged.stats.merge(&shard.stats);
            for (q, hits) in shard.per_query.into_iter().enumerate() {
                merged.per_query[q].extend(hits);
            }
        }
        self.finalize(&mut merged, scratch);
        merged
    }

    fn search_subject(
        &self,
        subject: &SubjectView<'_>,
        concat_len: usize,
        scratch: &mut SearchScratch,
        result: &mut FragmentResult,
    ) {
        let params = self.params;
        let w = params.word_len;
        result.stats.subjects += 1;
        result.stats.residues += subject.residues.len() as u64;
        if subject.residues.len() < w {
            return;
        }
        scratch
            .diag
            .begin_subject(concat_len + subject.residues.len() + 1);
        scratch.gapped_hits.clear();
        scratch.ungapped_keep.clear();

        let concat = self.queries.set.concat();
        let s = subject.residues;
        let s_len = s.len();
        let alpha = params.word_alphabet as u32;
        let word_span = alpha.pow(w as u32 - 1);

        // Rolling word index over the subject.
        let mut idx = 0u32;
        let mut run = 0usize;
        for (sp_end, &c) in s.iter().enumerate().take(s_len) {
            if (c as u32) >= alpha {
                run = 0;
                idx = 0;
                continue;
            }
            idx = (idx % word_span) * alpha + c as u32;
            run += 1;
            if run < w {
                continue;
            }
            let sp = (sp_end + 1 - w) as u32; // word start in subject
            let bucket = self.queries.lookup.hits(idx);
            if bucket.is_empty() {
                continue;
            }
            result.stats.seed_hits += bucket.len() as u64;
            for &qp in bucket {
                let d = (qp as usize + s_len) - sp as usize;
                if !scratch
                    .diag
                    .admit_hit(d, sp, w as u32, params.two_hit_window)
                {
                    continue;
                }
                self.extend_seed(subject, concat, qp, sp, d, scratch, result);
            }
        }

        self.collect_subject_hits(subject, scratch, result);
    }

    #[allow(clippy::too_many_arguments)]
    fn extend_seed(
        &self,
        subject: &SubjectView<'_>,
        concat: &[u8],
        qp: u32,
        sp: u32,
        d: usize,
        scratch: &mut SearchScratch,
        result: &mut FragmentResult,
    ) {
        let params = self.params;
        result.stats.ungapped_extensions += 1;
        let hit = ungapped_xdrop(
            &params.matrix,
            concat,
            subject.residues,
            qp,
            sp,
            params.word_len as u32,
            self.x_ungapped,
        );
        scratch.diag.set_extension_end(d, hit.s_end);

        // Identify which query this extension belongs to. Extensions cannot
        // cross sentinels (they score UNDEFINED against everything), but be
        // defensive: locate both ends.
        let Some((query_idx, _)) = self.queries.set.locate(hit.q_start) else {
            return;
        };
        let (q_lo, q_hi) = self.queries.set.range(query_idx);
        if hit.q_end > q_hi {
            return; // crossed a sentinel: discard (cannot happen with sane matrices)
        }
        let cutoff = self.queries.cutoffs[query_idx];

        if hit.score >= self.gap_trigger {
            // Gapped extension from the ungapped segment's midpoint, unless
            // that seed already lies inside a gapped hit for this query.
            let (seed_q, seed_s) = hit.seed_point();
            let covered = scratch.gapped_hits.iter().any(|(qi, g)| {
                *qi == query_idx as u32
                    && seed_q >= g.q_start + q_lo
                    && seed_q < g.q_end + q_lo
                    && seed_s >= g.s_start
                    && seed_s < g.s_end
            });
            if covered {
                return;
            }
            result.stats.gapped_extensions += 1;
            let query = &concat[q_lo as usize..q_hi as usize];
            let g = gapped_xdrop(
                &params.matrix,
                params.gaps,
                query,
                subject.residues,
                seed_q - q_lo,
                seed_s,
                self.x_gapped,
                &mut scratch.ext,
            );
            if g.score >= cutoff {
                scratch.gapped_hits.push((query_idx as u32, g));
            }
        } else if hit.score >= cutoff {
            // Strong enough ungapped-only HSP (rare with gapped cutoffs).
            let mut h = hit;
            h.q_start -= q_lo;
            h.q_end -= q_lo;
            scratch.ungapped_keep.push((query_idx as u32, h));
        }
    }

    /// Collect the subject's surviving HSPs into per-query subject hits.
    ///
    /// A flat sort-by-(query, rank) pass over the reused accumulator
    /// replaces the seed kernel's per-subject `BTreeMap<u32, Vec<Hsp>>`:
    /// one cache-friendly sort, then a walk over query runs, with the
    /// only allocation being each *retained* hit's output vector.
    fn collect_subject_hits(
        &self,
        subject: &SubjectView<'_>,
        scratch: &mut SearchScratch,
        result: &mut FragmentResult,
    ) {
        if scratch.gapped_hits.is_empty() && scratch.ungapped_keep.is_empty() {
            return;
        }
        let params = self.params;
        let SearchScratch {
            gapped_hits,
            ungapped_keep,
            keyed,
            run,
            ..
        } = scratch;
        keyed.clear();
        for &(qi, g) in gapped_hits.iter() {
            let sp = &self.queries.spaces[qi as usize];
            let h = Hsp {
                query_idx: qi,
                oid: subject.oid,
                q_start: g.q_start,
                q_end: g.q_end,
                s_start: g.s_start,
                s_end: g.s_end,
                score: g.score,
                bit_score: sp.bit_score(g.score),
                evalue: sp.evalue(g.score),
            };
            keyed.push(((qi, h.rank_key()), h));
        }
        for &(qi, u) in ungapped_keep.iter() {
            let sp = &self.queries.spaces[qi as usize];
            let h = Hsp {
                query_idx: qi,
                oid: subject.oid,
                q_start: u.q_start,
                q_end: u.q_end,
                s_start: u.s_start,
                s_end: u.s_end,
                score: u.score,
                bit_score: sp.bit_score(u.score),
                evalue: sp.evalue(u.score),
            };
            keyed.push(((qi, h.rank_key()), h));
        }
        // Queries ascending, canonical HSP order within each query. Equal
        // keys imply identical HSPs, so the unstable sort is deterministic.
        keyed.sort_unstable_by_key(|a| a.0);

        let mut i = 0;
        while i < keyed.len() {
            let qi = keyed[i].0 .0;
            run.clear();
            while i < keyed.len() && keyed[i].0 .0 == qi {
                run.push(keyed[i].1);
                i += 1;
            }
            let kept = cull_contained_sorted(run);
            run.truncate(kept);
            run.retain(|h| h.evalue <= params.expect);
            run.truncate(params.max_hsps_per_subject);
            if run.is_empty() {
                continue;
            }
            result.stats.hsps_kept += run.len() as u64;
            result.per_query[qi as usize].push(SubjectHit {
                oid: subject.oid,
                subject_len: subject.residues.len() as u32,
                hsps: run.clone(),
            });
        }
    }
}

/// A trivial in-memory [`SubjectSource`] over owned records, for tests and
/// small serial searches.
pub struct VecSource {
    subjects: Vec<(u32, Vec<u8>, Vec<u8>)>, // (oid, residues, defline)
}

impl VecSource {
    /// Build from records, assigning oids `0..n` in order.
    pub fn from_records(records: &[SeqRecord]) -> VecSource {
        VecSource {
            subjects: records
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r.residues.clone(), r.defline.clone().into_bytes()))
                .collect(),
        }
    }

    /// Build with explicit oids.
    pub fn with_oids(subjects: Vec<(u32, Vec<u8>, Vec<u8>)>) -> VecSource {
        VecSource { subjects }
    }
}

impl SubjectSource for VecSource {
    fn num_subjects(&self) -> usize {
        self.subjects.len()
    }

    fn subject(&self, i: usize) -> SubjectView<'_> {
        let (oid, residues, defline) = &self.subjects[i];
        SubjectView {
            oid: *oid,
            residues,
            defline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Molecule;
    use crate::fasta;

    fn db_records() -> Vec<SeqRecord> {
        // A tiny database: one family of similar sequences plus noise.
        let text = b">s0 family member A\n\
MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNMMKVLAAGHWRTEYFNDCQ\n\
>s1 family member B\n\
MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNMMKVLAAGHWRTEYANDCQ\n\
>s2 unrelated\n\
GGGGPPPPGGGGPPPPGGGGPPPPGGGGPPPPGGGGPPPP\n\
>s3 family member C distant\n\
MKVLAAGHWRTEYFNDCQAAERTYPLKIHGFDSAEWCVNM\n";
        fasta::parse(Molecule::Protein, text).unwrap()
    }

    fn stats_for(records: &[SeqRecord]) -> DbStats {
        DbStats {
            num_sequences: records.len() as u64,
            total_residues: records.iter().map(|r| r.len() as u64).sum(),
        }
    }

    fn search_with(query: &[u8]) -> FragmentResult {
        let params = SearchParams::blastp();
        let records = db_records();
        let db = stats_for(&records);
        let queries = vec![SeqRecord::from_ascii(Molecule::Protein, "q1", query).unwrap()];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);
        searcher.search(
            &VecSource::from_records(&records),
            &mut SearchScratch::new(),
        )
    }

    #[test]
    fn query_from_family_hits_family() {
        let result = search_with(b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM");
        let hits = &result.per_query[0];
        assert!(!hits.is_empty(), "expected hits, stats {:?}", result.stats);
        let oids: Vec<u32> = hits.iter().map(|h| h.oid).collect();
        assert!(oids.contains(&0), "oids {oids:?}");
        assert!(oids.contains(&1), "oids {oids:?}");
        // The unrelated low-complexity sequence must not appear.
        assert!(!oids.contains(&2), "oids {oids:?}");
        // Best hit first.
        assert!(hits[0].best_score() >= hits.last().unwrap().best_score());
    }

    #[test]
    fn unrelated_query_finds_nothing_significant() {
        // A diverse sequence absent from the database. With E <= 10 and a
        // tiny database, weak chance alignments may pass (as in real
        // BLAST), but nothing remotely significant can.
        let result = search_with(b"DEDEDKRKRHWYFWYHDEDKRKRHWYFWYHDKRHWYFWYH");
        for hit in &result.per_query[0] {
            assert!(
                hit.best_evalue() > 1e-4,
                "unexpected significant hit: {hit:?}"
            );
        }
    }

    #[test]
    fn evalues_within_cutoff() {
        let result = search_with(b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM");
        for hit in &result.per_query[0] {
            for h in &hit.hsps {
                assert!(h.evalue <= 10.0);
                assert!(h.score > 0);
                assert!(h.q_end > h.q_start);
                assert!(h.s_end > h.s_start);
            }
        }
    }

    #[test]
    fn search_is_deterministic() {
        let a = search_with(b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM");
        let b = search_with(b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM");
        assert_eq!(a.per_query[0], b.per_query[0]);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn partitioned_search_equals_whole_search() {
        // The core invariant behind database segmentation: searching two
        // disjoint partitions yields exactly the whole-database hit set.
        let params = SearchParams::blastp();
        let records = db_records();
        let db = stats_for(&records);
        let queries = vec![SeqRecord::from_ascii(
            Molecule::Protein,
            "q1",
            b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM",
        )
        .unwrap()];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);

        let whole = searcher.search(
            &VecSource::from_records(&records),
            &mut SearchScratch::new(),
        );

        let all: Vec<(u32, Vec<u8>, Vec<u8>)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r.residues.clone(), r.defline.clone().into_bytes()))
            .collect();
        let part_a = VecSource::with_oids(all[..2].to_vec());
        let part_b = VecSource::with_oids(all[2..].to_vec());
        let ra = searcher.search(&part_a, &mut SearchScratch::new());
        let rb = searcher.search(&part_b, &mut SearchScratch::new());

        let mut merged: Vec<SubjectHit> = ra.per_query[0]
            .iter()
            .chain(rb.per_query[0].iter())
            .cloned()
            .collect();
        merged.sort_by(|a, b| a.hsps[0].rank_key().cmp(&b.hsps[0].rank_key()));
        assert_eq!(merged, whole.per_query[0]);
    }

    #[test]
    fn sharded_scan_matches_serial_for_every_shard_count() {
        // The compute-slot invariant: shard the subject range across any
        // number of per-slot scratches, merge, and the result is
        // byte-identical to the serial kernel.
        let params = SearchParams::blastp();
        let records = db_records();
        let db = stats_for(&records);
        let queries = vec![SeqRecord::from_ascii(
            Molecule::Protein,
            "q1",
            b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM",
        )
        .unwrap()];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);
        let source = VecSource::from_records(&records);
        let serial = searcher.search(&source, &mut SearchScratch::new());

        let n = source.num_subjects();
        for shards in 1..=n + 2 {
            let mut scratches: Vec<SearchScratch> =
                (0..shards).map(|_| SearchScratch::new()).collect();
            let per = n.div_ceil(shards);
            let parts: Vec<FragmentResult> = (0..shards)
                .map(|k| {
                    let lo = (k * per).min(n);
                    let hi = ((k + 1) * per).min(n);
                    searcher.search_subject_range(&source, lo..hi, &mut scratches[k])
                })
                .collect();
            let merged = searcher.merge_sharded(parts, &mut scratches[0]);
            assert_eq!(merged.per_query, serial.per_query, "shards={shards}");
            assert_eq!(merged.stats, serial.stats, "shards={shards}");
        }
    }

    #[test]
    fn stats_count_work() {
        let result = search_with(b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM");
        assert_eq!(result.stats.subjects, 4);
        assert!(result.stats.seed_hits > 0);
        assert!(result.stats.ungapped_extensions > 0);
        assert!(result.stats.gapped_extensions > 0);
        assert!(result.stats.hsps_kept >= 2);
    }

    #[test]
    fn empty_query_set_is_fine() {
        let params = SearchParams::blastp();
        let records = db_records();
        let db = stats_for(&records);
        let prepared = PreparedQueries::prepare(&params, Vec::new(), db);
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(
            &VecSource::from_records(&records),
            &mut SearchScratch::new(),
        );
        assert!(result.per_query.is_empty());
    }

    #[test]
    fn short_subjects_are_skipped() {
        let params = SearchParams::blastp();
        let records = vec![SeqRecord::from_ascii(Molecule::Protein, "tiny", b"MK").unwrap()];
        let db = stats_for(&records);
        let queries =
            vec![SeqRecord::from_ascii(Molecule::Protein, "q", b"MKVLAAGHWRTEYFND").unwrap()];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(
            &VecSource::from_records(&records),
            &mut SearchScratch::new(),
        );
        assert!(result.per_query[0].is_empty());
        assert_eq!(result.stats.subjects, 1);
    }

    #[test]
    fn hitlist_size_truncates() {
        let mut params = SearchParams::blastp();
        params.hitlist_size = 1;
        let records = db_records();
        let db = stats_for(&records);
        let queries = vec![SeqRecord::from_ascii(
            Molecule::Protein,
            "q1",
            b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM",
        )
        .unwrap()];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);
        let result = searcher.search(
            &VecSource::from_records(&records),
            &mut SearchScratch::new(),
        );
        assert_eq!(result.per_query[0].len(), 1);
    }
}
