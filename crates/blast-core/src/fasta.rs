//! Streaming FASTA reader and writer.

use std::io::{self, BufRead, Write};

use crate::alphabet::Molecule;
use crate::seq::SeqRecord;

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Residue data before any `>` defline.
    DataBeforeDefline {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A residue line contained an invalid character.
    BadResidue {
        /// 1-based line number of the offending line.
        line: usize,
        /// The encode-level error.
        source: crate::alphabet::EncodeError,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error reading FASTA: {e}"),
            FastaError::DataBeforeDefline { line } => {
                write!(f, "line {line}: sequence data before any '>' defline")
            }
            FastaError::BadResidue { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for FastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FastaError::Io(e) => Some(e),
            FastaError::BadResidue { source, .. } => Some(source),
            FastaError::DataBeforeDefline { .. } => None,
        }
    }
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Streaming FASTA reader yielding [`SeqRecord`]s.
pub struct FastaReader<R> {
    input: R,
    molecule: Molecule,
    line: usize,
    pending_defline: Option<String>,
    done: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader, encoding residues for `molecule`.
    pub fn new(molecule: Molecule, input: R) -> FastaReader<R> {
        FastaReader {
            input,
            molecule,
            line: 0,
            pending_defline: None,
            done: false,
        }
    }

    /// Read the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<SeqRecord>, FastaError> {
        if self.done {
            return Ok(None);
        }
        let mut defline = self.pending_defline.take();
        let mut residues: Vec<u8> = Vec::new();
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = self.input.read_line(&mut buf)?;
            if n == 0 {
                self.done = true;
                break;
            }
            self.line += 1;
            let line = buf.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('>') {
                if defline.is_some() {
                    // Start of the next record: stash and emit the current one.
                    self.pending_defline = Some(rest.trim().to_string());
                    break;
                }
                defline = Some(rest.trim().to_string());
            } else {
                let Some(_) = defline else {
                    return Err(FastaError::DataBeforeDefline { line: self.line });
                };
                let encoded =
                    crate::alphabet::encode(self.molecule, line.as_bytes()).map_err(|source| {
                        FastaError::BadResidue {
                            line: self.line,
                            source,
                        }
                    })?;
                residues.extend_from_slice(&encoded);
            }
        }
        match defline {
            Some(defline) => Ok(Some(SeqRecord {
                defline,
                residues,
                molecule: self.molecule,
            })),
            None => Ok(None),
        }
    }

    /// Read all remaining records.
    pub fn read_all(&mut self) -> Result<Vec<SeqRecord>, FastaError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Parse a complete FASTA text held in memory.
pub fn parse(molecule: Molecule, text: &[u8]) -> Result<Vec<SeqRecord>, FastaError> {
    FastaReader::new(molecule, text).read_all()
}

/// Write records as FASTA, wrapping residue lines at `width` columns.
pub fn write<W: Write>(out: &mut W, records: &[SeqRecord], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for rec in records {
        writeln!(out, ">{}", rec.defline)?;
        let ascii = rec.residues_ascii();
        for chunk in ascii.chunks(width) {
            out.write_all(chunk)?;
            out.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Render records to an in-memory FASTA string.
pub fn to_string(records: &[SeqRecord], width: usize) -> String {
    let mut buf = Vec::new();
    write(&mut buf, records, width).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = b">seq1 first protein\nMKVL\nAAGH\n\n>seq2\nACDE\n";

    #[test]
    fn parses_multi_record_input() {
        let recs = parse(Molecule::Protein, SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].defline, "seq1 first protein");
        assert_eq!(recs[0].residues_ascii(), b"MKVLAAGH");
        assert_eq!(recs[1].defline, "seq2");
        assert_eq!(recs[1].residues_ascii(), b"ACDE");
    }

    #[test]
    fn round_trips_through_writer() {
        let recs = parse(Molecule::Protein, SAMPLE).unwrap();
        let text = to_string(&recs, 3);
        let reparsed = parse(Molecule::Protein, text.as_bytes()).unwrap();
        assert_eq!(recs, reparsed);
    }

    #[test]
    fn rejects_leading_data() {
        let err = parse(Molecule::Protein, b"MKVL\n>seq1\nAA\n").unwrap_err();
        assert!(matches!(err, FastaError::DataBeforeDefline { line: 1 }));
    }

    #[test]
    fn rejects_bad_residue_with_line_number() {
        let err = parse(Molecule::Protein, b">s\nMK9L\n").unwrap_err();
        match err {
            FastaError::BadResidue { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse(Molecule::Protein, b"").unwrap().is_empty());
        assert!(parse(Molecule::Protein, b"\n\n").unwrap().is_empty());
    }

    #[test]
    fn record_with_no_residues_is_kept() {
        let recs = parse(Molecule::Protein, b">empty\n>full\nAC\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].is_empty());
        assert_eq!(recs[1].residues_ascii(), b"AC");
    }

    #[test]
    fn crlf_input_is_tolerated() {
        let recs = parse(Molecule::Protein, b">s one\r\nMKVL\r\n").unwrap();
        assert_eq!(recs[0].defline, "s one");
        assert_eq!(recs[0].residues_ascii(), b"MKVL");
    }

    #[test]
    fn dna_parsing_uses_dna_alphabet() {
        let recs = parse(Molecule::Dna, b">d\nACGTN\n").unwrap();
        assert_eq!(recs[0].residues, vec![0, 1, 2, 3, 4]);
    }
}
