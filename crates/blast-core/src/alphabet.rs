//! Sequence alphabets and residue encodings.
//!
//! Proteins use a dense 0..=27 encoding modeled on NCBI's `ncbistdaa`
//! alphabet; DNA uses a 0..=3 encoding with an explicit `N` code. Encoded
//! residues index directly into scoring-matrix rows, which keeps the inner
//! alignment loops branch-free.

/// Number of codes in the protein alphabet (including ambiguity codes,
/// the stop codon `*`, and the gap placeholder).
pub const PROTEIN_ALPHABET_SIZE: usize = 28;

/// Number of codes in the DNA alphabet (`A`, `C`, `G`, `T`, `N`).
pub const DNA_ALPHABET_SIZE: usize = 5;

/// The protein residue order used throughout this crate.
///
/// Index `i` of this string is the ASCII letter for encoded residue `i`.
/// The first 20 codes are the standard amino acids in the order used by
/// the embedded scoring matrices (see [`crate::matrix`]); the tail holds
/// ambiguity codes (`B`, `Z`, `X`), the stop codon (`*`), selenocysteine
/// (`U`), pyrrolysine (`O`), any-ambiguity (`J`) and a gap placeholder.
pub const PROTEIN_LETTERS: &[u8; PROTEIN_ALPHABET_SIZE] = b"ARNDCQEGHILKMFPSTWYVBZX*UOJ-";

/// The DNA base order: `A`, `C`, `G`, `T`, `N`.
pub const DNA_LETTERS: &[u8; DNA_ALPHABET_SIZE] = b"ACGTN";

/// Encoded code for the protein ambiguity residue `X`.
pub const PROTEIN_X: u8 = 22;

/// Encoded code for the DNA ambiguity base `N`.
pub const DNA_N: u8 = 4;

/// Which molecule a sequence or database holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Molecule {
    /// Amino-acid sequences (e.g. GenBank nr).
    Protein,
    /// Nucleotide sequences (e.g. GenBank nt).
    Dna,
}

impl Molecule {
    /// Number of distinct residue codes for this molecule.
    #[inline]
    pub const fn alphabet_size(self) -> usize {
        match self {
            Molecule::Protein => PROTEIN_ALPHABET_SIZE,
            Molecule::Dna => DNA_ALPHABET_SIZE,
        }
    }

    /// The letter table mapping code -> ASCII letter.
    #[inline]
    pub const fn letters(self) -> &'static [u8] {
        match self {
            Molecule::Protein => PROTEIN_LETTERS,
            Molecule::Dna => DNA_LETTERS,
        }
    }

    /// The code used for an unrecognized/ambiguous input letter.
    #[inline]
    pub const fn ambiguity_code(self) -> u8 {
        match self {
            Molecule::Protein => PROTEIN_X,
            Molecule::Dna => DNA_N,
        }
    }

    /// A one-byte tag stored in formatted-database headers.
    #[inline]
    pub const fn tag(self) -> u8 {
        match self {
            Molecule::Protein => b'p',
            Molecule::Dna => b'n',
        }
    }

    /// Inverse of [`Molecule::tag`].
    pub fn from_tag(tag: u8) -> Option<Molecule> {
        match tag {
            b'p' => Some(Molecule::Protein),
            b'n' => Some(Molecule::Dna),
            _ => None,
        }
    }
}

/// Errors from encoding raw letters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A letter that is not even a plausible residue (e.g. a digit).
    InvalidLetter {
        /// The offending input byte.
        letter: u8,
        /// Position within the input slice.
        position: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::InvalidLetter { letter, position } => write!(
                f,
                "invalid residue letter {:?} (0x{letter:02x}) at position {position}",
                char::from(*letter)
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

const INVALID: u8 = 0xff;

/// Code-lookup table for one molecule: ASCII byte -> residue code.
struct CodeTable {
    codes: [u8; 256],
}

impl CodeTable {
    const fn build(letters: &[u8], ambiguity: u8, fold_unknown_alpha: bool) -> CodeTable {
        let mut codes = [INVALID; 256];
        let mut i = 0;
        while i < letters.len() {
            let upper = letters[i];
            codes[upper as usize] = i as u8;
            // Accept lowercase input letters too.
            if upper.is_ascii_uppercase() {
                codes[(upper + 32) as usize] = i as u8;
            }
            i += 1;
        }
        if fold_unknown_alpha {
            // Any other alphabetic character folds to the ambiguity code; this
            // mirrors how formatdb tolerates rare/ambiguous IUPAC letters.
            let mut c = b'A';
            while c <= b'Z' {
                if codes[c as usize] == INVALID {
                    codes[c as usize] = ambiguity;
                    codes[(c + 32) as usize] = ambiguity;
                }
                c += 1;
            }
        }
        CodeTable { codes }
    }
}

static PROTEIN_CODES: CodeTable = CodeTable::build(PROTEIN_LETTERS, PROTEIN_X, true);
static DNA_CODES: CodeTable = CodeTable::build(DNA_LETTERS, DNA_N, true);

/// Encode one ASCII letter into a residue code for `molecule`.
///
/// Unknown alphabetic letters fold to the ambiguity code; non-alphabetic
/// letters return `None`.
#[inline]
pub fn encode_letter(molecule: Molecule, letter: u8) -> Option<u8> {
    let table = match molecule {
        Molecule::Protein => &PROTEIN_CODES,
        Molecule::Dna => &DNA_CODES,
    };
    let code = table.codes[letter as usize];
    (code != INVALID).then_some(code)
}

/// Decode a residue code back to its canonical (uppercase) ASCII letter.
///
/// # Panics
/// Panics if `code` is outside the molecule's alphabet.
#[inline]
pub fn decode_letter(molecule: Molecule, code: u8) -> u8 {
    molecule.letters()[code as usize]
}

/// Encode a raw ASCII residue string.
///
/// Whitespace is skipped (FASTA bodies are line-wrapped); any other
/// non-alphabetic byte is an error.
pub fn encode(molecule: Molecule, raw: &[u8]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(raw.len());
    for (position, &letter) in raw.iter().enumerate() {
        if letter.is_ascii_whitespace() {
            continue;
        }
        match encode_letter(molecule, letter) {
            Some(code) => out.push(code),
            None => return Err(EncodeError::InvalidLetter { letter, position }),
        }
    }
    Ok(out)
}

/// Decode an encoded residue slice back into ASCII letters.
pub fn decode(molecule: Molecule, codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| decode_letter(molecule, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_letters_round_trip() {
        for (i, &letter) in PROTEIN_LETTERS.iter().enumerate() {
            if letter == b'-' {
                continue; // gap placeholder is output-only
            }
            let code = encode_letter(Molecule::Protein, letter).unwrap();
            assert_eq!(code as usize, i, "letter {}", char::from(letter));
            assert_eq!(decode_letter(Molecule::Protein, code), letter);
        }
    }

    #[test]
    fn dna_letters_round_trip() {
        for (i, &letter) in DNA_LETTERS.iter().enumerate() {
            let code = encode_letter(Molecule::Dna, letter).unwrap();
            assert_eq!(code as usize, i);
            assert_eq!(decode_letter(Molecule::Dna, code), letter);
        }
    }

    #[test]
    fn lowercase_input_is_accepted() {
        assert_eq!(
            encode_letter(Molecule::Protein, b'a'),
            encode_letter(Molecule::Protein, b'A')
        );
        assert_eq!(
            encode_letter(Molecule::Dna, b't'),
            encode_letter(Molecule::Dna, b'T')
        );
    }

    #[test]
    fn unknown_alpha_folds_to_ambiguity() {
        // 'J' exists in our protein alphabet, but e.g. 'B' does not exist in DNA.
        assert_eq!(encode_letter(Molecule::Dna, b'R'), Some(DNA_N));
        assert_eq!(encode_letter(Molecule::Dna, b'y'), Some(DNA_N));
    }

    #[test]
    fn non_alpha_is_rejected() {
        assert_eq!(encode_letter(Molecule::Protein, b'1'), None);
        assert_eq!(encode_letter(Molecule::Protein, b'>'), None);
        let err = encode(Molecule::Protein, b"AR1").unwrap_err();
        assert_eq!(
            err,
            EncodeError::InvalidLetter {
                letter: b'1',
                position: 2
            }
        );
    }

    #[test]
    fn encode_skips_whitespace() {
        let encoded = encode(Molecule::Protein, b"AR\nND \tC").unwrap();
        assert_eq!(decode(Molecule::Protein, &encoded), b"ARNDC");
    }

    #[test]
    fn molecule_tags_round_trip() {
        for m in [Molecule::Protein, Molecule::Dna] {
            assert_eq!(Molecule::from_tag(m.tag()), Some(m));
        }
        assert_eq!(Molecule::from_tag(b'x'), None);
    }

    #[test]
    fn stop_codon_is_encodable() {
        let code = encode_letter(Molecule::Protein, b'*').unwrap();
        assert_eq!(decode_letter(Molecule::Protein, code), b'*');
    }
}
