//! # blast-core
//!
//! A from-scratch implementation of the BLAST sequence-search algorithm
//! (Altschul et al. 1990, with the gapped two-hit refinements of BLAST 2),
//! built as the search substrate for the pioBLAST reproduction.
//!
//! The pipeline:
//!
//! 1. [`fasta`] parses queries and databases; [`alphabet`] encodes residues.
//! 2. [`lookup`] builds a neighborhood-word table over the concatenated
//!    query set ([`lookup::QuerySet`]).
//! 3. [`search::BlastSearcher`] scans subjects, triggering two-hit ungapped
//!    X-drop extensions ([`extend::ungapped_xdrop`]) and escalating to
//!    gapped X-drop extensions ([`extend::gapped_xdrop`]).
//! 4. [`stats`] scores HSPs against the whole database's effective search
//!    space with Karlin–Altschul statistics computed in [`karlin`].
//! 5. [`mod@format`] renders NCBI-style pairwise reports; traceback comes from
//!    [`extend::banded_global`].
//!
//! The kernel is deliberately partition-agnostic: it searches any
//! [`search::SubjectSource`], and statistics are always global, so a
//! database may be split across workers (mpiBLAST-style physical fragments
//! or pioBLAST-style virtual fragments) without changing any reported
//! score, E-value, or output byte.
//!
//! ```
//! use blast_core::alphabet::Molecule;
//! use blast_core::fasta;
//! use blast_core::search::{
//!     BlastSearcher, PreparedQueries, SearchParams, SearchScratch, VecSource,
//! };
//! use blast_core::stats::DbStats;
//!
//! let db = fasta::parse(Molecule::Protein,
//!     b">s1 target\nMKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM\n").unwrap();
//! let stats = DbStats { num_sequences: 1, total_residues: 40 };
//! let queries = fasta::parse(Molecule::Protein,
//!     b">q1\nMKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM\n").unwrap();
//!
//! let params = SearchParams::blastp();
//! let prepared = PreparedQueries::prepare(&params, queries, stats);
//! let searcher = BlastSearcher::new(&params, &prepared);
//! // One scratch per worker: reused across every partition it searches.
//! let mut scratch = SearchScratch::new();
//! let result = searcher.search(&VecSource::from_records(&db), &mut scratch);
//! assert_eq!(result.per_query[0][0].oid, 0);
//! ```

#![warn(missing_docs)]

pub mod alphabet;
pub mod extend;
pub mod fasta;
pub mod filter;
pub mod format;
pub mod hsp;
pub mod karlin;
pub mod lookup;
pub mod matrix;
pub mod search;
pub mod seq;
pub mod stats;

pub use alphabet::Molecule;
pub use hsp::Hsp;
pub use matrix::ScoreMatrix;
pub use search::{BlastSearcher, PreparedQueries, SearchParams, SearchScratch};
pub use seq::{SeqRecord, SubjectView};
pub use stats::DbStats;
