//! Neighborhood-word lookup tables.
//!
//! BLAST builds one lookup table over the *concatenated query set*: every
//! word position of every query is registered under all words scoring at
//! least the neighborhood threshold `T` against it, and each database
//! subject is then scanned once against that single table. This is what
//! makes multi-query batches cheap, and it is the structure the paper's
//! "query broadcasting" phase ships to every worker.

use crate::matrix::ScoreMatrix;

/// A set of queries concatenated into one coordinate space.
///
/// Queries are separated by a single gap-code sentinel so no word can span
/// two queries; diagonals and seed hits all live in concatenated
/// coordinates and are mapped back with [`QuerySet::locate`].
#[derive(Debug, Clone)]
pub struct QuerySet {
    concat: Vec<u8>,
    /// Per-query (start, end) ranges into `concat` (end exclusive).
    ranges: Vec<(u32, u32)>,
}

impl QuerySet {
    /// Concatenate encoded query sequences. The sentinel code must not be a
    /// real residue; callers use the alphabet's gap placeholder.
    pub fn new(queries: &[Vec<u8>], sentinel: u8) -> QuerySet {
        let total: usize = queries.iter().map(|q| q.len() + 1).sum();
        let mut concat = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(queries.len());
        for q in queries {
            let start = concat.len() as u32;
            concat.extend_from_slice(q);
            ranges.push((start, concat.len() as u32));
            concat.push(sentinel);
        }
        QuerySet { concat, ranges }
    }

    /// Number of queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether there are no queries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The concatenated residue buffer (including sentinels).
    #[inline]
    pub fn concat(&self) -> &[u8] {
        &self.concat
    }

    /// The (start, end) range of query `idx` in concatenated coordinates.
    #[inline]
    pub fn range(&self, idx: usize) -> (u32, u32) {
        self.ranges[idx]
    }

    /// Residues of query `idx`.
    pub fn query(&self, idx: usize) -> &[u8] {
        let (s, e) = self.ranges[idx];
        &self.concat[s as usize..e as usize]
    }

    /// Length of query `idx` in residues.
    pub fn query_len(&self, idx: usize) -> usize {
        let (s, e) = self.ranges[idx];
        (e - s) as usize
    }

    /// Map a concatenated position to `(query_index, offset_within_query)`.
    ///
    /// Returns `None` for sentinel positions.
    pub fn locate(&self, concat_pos: u32) -> Option<(usize, u32)> {
        let idx = self.ranges.partition_point(|&(_, end)| end <= concat_pos);
        let &(start, end) = self.ranges.get(idx)?;
        (concat_pos >= start && concat_pos < end).then(|| (idx, concat_pos - start))
    }
}

/// Query positions stored inline in a backbone cell before spilling to
/// the overflow array (NCBI's thin-backbone layout uses the same 3).
pub const INLINE_HITS: usize = 3;

/// One dense backbone cell: a 16-byte record giving the common seed-scan
/// case — a word with at most [`INLINE_HITS`] query positions — a single
/// cache-line lookup with no second indirection.
#[derive(Debug, Clone, Copy)]
struct BackboneCell {
    /// Number of query positions registered under this word.
    len: u32,
    /// The positions themselves when `len <= INLINE_HITS`; otherwise
    /// `data[0]` is the bucket's start offset in the overflow array.
    data: [u32; INLINE_HITS],
}

impl BackboneCell {
    const EMPTY: BackboneCell = BackboneCell {
        len: 0,
        data: [0; INLINE_HITS],
    };
}

/// A thin-backbone lookup table: word index -> positions in the
/// concatenated query set where a neighborhood word begins.
///
/// Layout follows NCBI's `BlastAaLookupTable`: a dense array of
/// backbone cells stores up to [`INLINE_HITS`] positions inline; larger
/// buckets spill to a shared overflow array. The seed scan's hot
/// `hits(word)` therefore touches one cache line for the overwhelmingly
/// common small bucket, instead of an offsets pair plus a positions
/// range. Construction still runs as a CSR counting sort (see
/// [`LookupTable::build`]) before the backbone is laid down.
#[derive(Debug, Clone)]
pub struct LookupTable {
    word_len: usize,
    alphabet: usize,
    backbone: Vec<BackboneCell>,
    /// Spilled buckets, each a contiguous run referenced by its cell.
    overflow: Vec<u32>,
    num_entries: usize,
}

impl LookupTable {
    /// Build the table over `queries` using `matrix` and neighborhood
    /// threshold `threshold` (NCBI's `T`, 11 for blastp/BLOSUM62).
    ///
    /// Words are `word_len` residues over the first `word_alphabet` codes
    /// of the matrix's alphabet (20 for proteins: ambiguity codes never
    /// appear in neighborhood words, matching NCBI).
    pub fn build(
        queries: &QuerySet,
        matrix: &ScoreMatrix,
        word_len: usize,
        word_alphabet: usize,
        threshold: i32,
    ) -> LookupTable {
        assert!(word_len >= 1, "word_len must be positive");
        let n_words = word_alphabet
            .checked_pow(word_len as u32)
            .expect("word space must fit in usize");
        assert!(n_words <= 1 << 24, "word space too large for a dense table");
        let concat = queries.concat();

        // Per-row maximum scores let the enumeration prune whole subtrees.
        let mut row_max = vec![i32::MIN; matrix.size()];
        for a in 0..matrix.size() as u8 {
            row_max[a as usize] = matrix
                .row(a)
                .iter()
                .take(word_alphabet)
                .copied()
                .max()
                .unwrap_or(i32::MIN);
        }

        // Pass 1: collect (word, position) entries.
        let mut entries: Vec<(u32, u32)> = Vec::new(); // (word, concat_pos)
        let mut scratch = Vec::with_capacity(word_len);
        for qi in 0..queries.len() {
            let (start, end) = queries.range(qi);
            let qlen = (end - start) as usize;
            if qlen < word_len {
                continue;
            }
            for off in 0..=(qlen - word_len) {
                let pos = start as usize + off;
                let word = &concat[pos..pos + word_len];
                if word.iter().any(|&c| c as usize >= word_alphabet) {
                    continue; // ambiguity code inside the query word
                }
                enumerate_neighbors(
                    matrix,
                    &row_max,
                    word,
                    word_alphabet,
                    threshold,
                    &mut scratch,
                    &mut |w| entries.push((w, pos as u32)),
                );
            }
        }

        // Pass 2: counting sort in place. One `offsets` array serves as
        // histogram, scatter cursor, and (implicit) CSR bounds: after the
        // scatter, `offsets[w]` is the *end* of bucket `w`, so bucket `w`
        // spans `offsets[w-1]..offsets[w]` — no separate counts array and
        // no cloned cursor, halving the peak build memory beyond entries.
        let mut offsets = vec![0u32; n_words];
        for &(w, _) in &entries {
            offsets[w as usize] += 1;
        }
        let mut running = 0u32;
        for slot in offsets.iter_mut() {
            let count = *slot;
            *slot = running; // start of this bucket
            running += count;
        }
        let mut positions = vec![0u32; entries.len()];
        for &(w, pos) in &entries {
            let cursor = &mut offsets[w as usize];
            positions[*cursor as usize] = pos;
            *cursor += 1; // becomes the bucket's end bound
        }
        drop(entries);

        // Pass 3: lay down the thin backbone. Small buckets inline their
        // positions; large ones spill to the compacted overflow array.
        let mut backbone = vec![BackboneCell::EMPTY; n_words];
        let mut overflow = Vec::new();
        let mut start = 0u32;
        for (w, cell) in backbone.iter_mut().enumerate() {
            let end = offsets[w];
            let bucket = &positions[start as usize..end as usize];
            cell.len = bucket.len() as u32;
            if bucket.len() <= INLINE_HITS {
                cell.data[..bucket.len()].copy_from_slice(bucket);
            } else {
                cell.data[0] = overflow.len() as u32;
                overflow.extend_from_slice(bucket);
            }
            start = end;
        }
        LookupTable {
            word_len,
            alphabet: word_alphabet,
            backbone,
            overflow,
            num_entries: positions.len(),
        }
    }

    /// Word length in residues.
    #[inline]
    pub fn word_len(&self) -> usize {
        self.word_len
    }

    /// Word-alphabet size.
    #[inline]
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Total registered (word, position) pairs.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Number of words (buckets) in the dense backbone.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.backbone.len()
    }

    /// Compute the bucket index of a window of residues, or `None` if any
    /// residue falls outside the word alphabet.
    #[inline]
    pub fn word_index(&self, window: &[u8]) -> Option<u32> {
        debug_assert_eq!(window.len(), self.word_len);
        let mut idx = 0u32;
        for &c in window {
            if c as usize >= self.alphabet {
                return None;
            }
            idx = idx * self.alphabet as u32 + c as u32;
        }
        Some(idx)
    }

    /// Query positions registered under bucket `word`.
    ///
    /// The common case (a bucket of at most [`INLINE_HITS`] positions)
    /// reads only the 16-byte backbone cell — one cache line.
    #[inline]
    pub fn hits(&self, word: u32) -> &[u32] {
        let cell = &self.backbone[word as usize];
        let len = cell.len as usize;
        if len <= INLINE_HITS {
            &cell.data[..len]
        } else {
            let start = cell.data[0] as usize;
            &self.overflow[start..start + len]
        }
    }
}

/// Enumerate all words over `0..alphabet` scoring at least `threshold`
/// against `word`, pruning with per-row maxima, and call `emit` with each
/// word's bucket index.
fn enumerate_neighbors(
    matrix: &ScoreMatrix,
    row_max: &[i32],
    word: &[u8],
    alphabet: usize,
    threshold: i32,
    scratch: &mut Vec<u8>,
    emit: &mut impl FnMut(u32),
) {
    // suffix_max[k] = max achievable score from word positions k.. .
    let mut suffix_max = vec![0i32; word.len() + 1];
    for k in (0..word.len()).rev() {
        suffix_max[k] = suffix_max[k + 1] + row_max[word[k] as usize];
    }
    scratch.clear();
    recurse(
        matrix,
        word,
        alphabet,
        threshold,
        &suffix_max,
        0,
        0,
        0,
        emit,
    );

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        matrix: &ScoreMatrix,
        word: &[u8],
        alphabet: usize,
        threshold: i32,
        suffix_max: &[i32],
        depth: usize,
        score: i32,
        index: u32,
        emit: &mut impl FnMut(u32),
    ) {
        if depth == word.len() {
            if score >= threshold {
                emit(index);
            }
            return;
        }
        let row = matrix.row(word[depth]);
        for (c, &row_score) in row.iter().enumerate().take(alphabet) {
            let s = score + row_score;
            // Prune: even perfect remaining letters cannot reach threshold.
            if s + suffix_max[depth + 1] < threshold {
                continue;
            }
            recurse(
                matrix,
                word,
                alphabet,
                threshold,
                suffix_max,
                depth + 1,
                s,
                index * alphabet as u32 + c as u32,
                emit,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{encode, Molecule};
    use crate::matrix::ScoreMatrix;

    const GAP: u8 = 27;

    fn qs(queries: &[&[u8]]) -> QuerySet {
        let encoded: Vec<Vec<u8>> = queries
            .iter()
            .map(|q| encode(Molecule::Protein, q).unwrap())
            .collect();
        QuerySet::new(&encoded, GAP)
    }

    #[test]
    fn locate_maps_back_to_queries() {
        let set = qs(&[b"MKVL", b"ACDEF"]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.locate(0), Some((0, 0)));
        assert_eq!(set.locate(3), Some((0, 3)));
        assert_eq!(set.locate(4), None, "sentinel position");
        assert_eq!(set.locate(5), Some((1, 0)));
        assert_eq!(set.locate(9), Some((1, 4)));
        assert_eq!(set.locate(10), None);
        assert_eq!(set.locate(99), None);
    }

    #[test]
    fn query_accessors() {
        let set = qs(&[b"MKVL", b"ACDEF"]);
        assert_eq!(set.query_len(0), 4);
        assert_eq!(set.query_len(1), 5);
        assert_eq!(
            crate::alphabet::decode(Molecule::Protein, set.query(1)),
            b"ACDEF"
        );
    }

    #[test]
    fn exact_word_is_its_own_neighbor() {
        // WWW self-scores 33 >= T=11, so scanning the query itself hits.
        let set = qs(&[b"WWWMK"]);
        let table = LookupTable::build(&set, &ScoreMatrix::blosum62(), 3, 20, 11);
        let www = table.word_index(&set.concat()[0..3]).unwrap();
        assert!(table.hits(www).contains(&0));
    }

    #[test]
    fn low_threshold_registers_more_words() {
        let set = qs(&[b"MKVLGHWRAT"]);
        let m = ScoreMatrix::blosum62();
        let strict = LookupTable::build(&set, &m, 3, 20, 13);
        let loose = LookupTable::build(&set, &m, 3, 20, 11);
        assert!(loose.num_entries() > strict.num_entries());
    }

    #[test]
    fn neighborhood_matches_brute_force() {
        let set = qs(&[b"MKV"]);
        let m = ScoreMatrix::blosum62();
        let t = 11;
        let table = LookupTable::build(&set, &m, 3, 20, t);
        let q = set.query(0);
        let mut expected = 0usize;
        for a in 0..20u8 {
            for b in 0..20u8 {
                for c in 0..20u8 {
                    let s = m.score(q[0], a) + m.score(q[1], b) + m.score(q[2], c);
                    if s >= t {
                        expected += 1;
                        let idx = table.word_index(&[a, b, c]).unwrap();
                        assert!(table.hits(idx).contains(&0), "missing {a},{b},{c}");
                    }
                }
            }
        }
        assert_eq!(table.num_entries(), expected);
    }

    #[test]
    fn words_never_span_queries() {
        // Two queries of 2 residues each: no 3-residue word fits in either,
        // and none may bridge the sentinel.
        let set = qs(&[b"MK", b"VL"]);
        let table = LookupTable::build(&set, &ScoreMatrix::blosum62(), 3, 20, 1);
        assert_eq!(table.num_entries(), 0);
    }

    #[test]
    fn ambiguity_words_are_skipped() {
        let set = qs(&[b"MXVLK"]);
        let m = ScoreMatrix::blosum62();
        let table = LookupTable::build(&set, &m, 3, 20, 11);
        // Positions 0 and 1 contain X (code 22 >= 20); only VLK at 2 counts.
        for w in 0..table.num_words() {
            for &p in table.hits(w as u32) {
                assert_eq!(p, 2);
            }
        }
    }

    #[test]
    fn large_buckets_spill_to_overflow_in_order() {
        // Four copies of the same word register four positions under it:
        // past INLINE_HITS, the bucket spills but keeps query-scan order.
        let set = qs(&[b"WWWWWWWWWWWW"]);
        let table = LookupTable::build(&set, &ScoreMatrix::blosum62(), 3, 20, 11);
        let www = table.word_index(&set.concat()[0..3]).unwrap();
        let hits = table.hits(www);
        assert!(hits.len() > INLINE_HITS, "self-hits of W^12: {hits:?}");
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "ascending: {hits:?}");
        assert_eq!(hits, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn word_index_rejects_out_of_alphabet() {
        let set = qs(&[b"MKVLK"]);
        let table = LookupTable::build(&set, &ScoreMatrix::blosum62(), 3, 20, 11);
        assert_eq!(table.word_index(&[0, 1, 22]), None);
        assert!(table.word_index(&[0, 1, 19]).is_some());
    }

    #[test]
    fn dna_exact_lookup() {
        let q = encode(Molecule::Dna, b"ACGTACGTACGT").unwrap();
        let set = QuerySet::new(&[q], crate::alphabet::DNA_N);
        // Exact matching: threshold = word_len * reward over the DNA matrix.
        let m = ScoreMatrix::dna(1, -3);
        let table = LookupTable::build(&set, &m, 4, 4, 4);
        let idx = table.word_index(&set.concat()[0..4]).unwrap();
        assert!(table.hits(idx).contains(&0));
        // ACGT occurs at offsets 0, 4, 8.
        assert_eq!(table.hits(idx), &[0, 4, 8]);
    }
}
