//! Alignment extension: ungapped X-drop, gapped X-drop (Zhang et al.),
//! and a banded Gotoh alignment with traceback for final output.

use crate::karlin::GapPenalties;
use crate::matrix::ScoreMatrix;

/// An ungapped extension result, in 0-based half-open coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UngappedHit {
    /// Query range `[q_start, q_end)`.
    pub q_start: u32,
    /// End of the query range (exclusive).
    pub q_end: u32,
    /// Subject range `[s_start, s_end)`.
    pub s_start: u32,
    /// End of the subject range (exclusive).
    pub s_end: u32,
    /// Raw ungapped score.
    pub score: i32,
}

impl UngappedHit {
    /// The query position of the best-scoring cell, used as the gapped
    /// extension seed point. We use the midpoint of the ungapped segment,
    /// like NCBI's `BlastGetStartForGappedAlignment` does for short HSPs.
    pub fn seed_point(&self) -> (u32, u32) {
        let mid = (self.q_end - self.q_start) / 2;
        (self.q_start + mid, self.s_start + mid)
    }
}

/// Extend an exact/neighborhood word hit in both directions without gaps,
/// dropping out when the running score falls `x_drop` below the best seen.
///
/// `q_pos`/`s_pos` point at the first residue of the matched word of length
/// `word_len`. Returns the maximal-scoring ungapped segment through the word.
pub fn ungapped_xdrop(
    matrix: &ScoreMatrix,
    query: &[u8],
    subject: &[u8],
    q_pos: u32,
    s_pos: u32,
    word_len: u32,
    x_drop: i32,
) -> UngappedHit {
    debug_assert!(q_pos as usize + word_len as usize <= query.len());
    debug_assert!(s_pos as usize + word_len as usize <= subject.len());

    // Score of the seed word itself.
    let mut score = 0i32;
    for k in 0..word_len as usize {
        score += matrix.score(query[q_pos as usize + k], subject[s_pos as usize + k]);
    }

    // Extend right of the word. This loop and its mirror below are the
    // kernel's hottest residue-level path, so they are shaped for the
    // hardware: the zipped iteration compiles without per-step bounds
    // checks, and the best-so-far update is a pair of selects (the
    // data-dependent `running > best` comparison mispredicts badly as a
    // branch). The only branch left is the X-drop exit, taken once per
    // extension. Equivalence with the classic branchy form: after an
    // improving step `best == running`, so `best - running > x_drop`
    // cannot fire on that step (`x_drop >= 0`).
    let mut best = score;
    let mut running = score;
    let mut q_end = q_pos + word_len;
    let mut s_end = s_pos + word_len;
    {
        let mut best_ahead = 0u32;
        for (i, (&qc, &sc)) in query[q_end as usize..]
            .iter()
            .zip(subject[s_end as usize..].iter())
            .enumerate()
        {
            running += matrix.score(qc, sc);
            let better = running > best;
            best_ahead = if better { i as u32 + 1 } else { best_ahead };
            best = if better { running } else { best };
            if best - running > x_drop {
                break;
            }
        }
        q_end += best_ahead;
        s_end += best_ahead;
    }

    // Extend left of the word.
    let mut q_start = q_pos;
    let mut s_start = s_pos;
    running = best;
    {
        let mut best_behind = 0u32;
        for (i, (&qc, &sc)) in query[..q_pos as usize]
            .iter()
            .rev()
            .zip(subject[..s_pos as usize].iter().rev())
            .enumerate()
        {
            running += matrix.score(qc, sc);
            let better = running > best;
            best_behind = if better { i as u32 + 1 } else { best_behind };
            best = if better { running } else { best };
            if best - running > x_drop {
                break;
            }
        }
        q_start -= best_behind;
        s_start -= best_behind;
    }

    UngappedHit {
        q_start,
        q_end,
        s_start,
        s_end,
        score: best,
    }
}

/// Reusable DP and traceback buffers for the extension routines.
///
/// Gapped X-drop extension and banded traceback both run affine-gap DPs
/// whose rows the seed kernel used to allocate afresh on every call. One
/// `ExtendScratch`, owned by the caller (a worker keeps it inside its
/// [`crate::search::SearchScratch`] for the whole run), removes every
/// heap allocation from those paths: buffers grow to the high-water mark
/// and are re-initialised, never re-allocated. Reuse is invisible in the
/// results — each routine fully re-initialises the region it reads.
#[derive(Debug, Default)]
pub struct ExtendScratch {
    // Gapped X-drop half-extension rows. Each cell interleaves the
    // match/mismatch and gap-in-subject states as `[m, f]` so the DP
    // inner loop streams one array per row instead of two.
    prev: Vec<[i32; 2]>,
    cur: Vec<[i32; 2]>,
    // Reversed prefixes for the leftward half-extension.
    q_rev: Vec<u8>,
    s_rev: Vec<u8>,
    // Banded-Gotoh DP matrices (traceback path).
    dp_m: Vec<i32>,
    dp_e: Vec<i32>,
    dp_f: Vec<i32>,
}

impl ExtendScratch {
    /// Fresh, empty scratch. Buffers grow on first use.
    pub fn new() -> ExtendScratch {
        ExtendScratch::default()
    }
}

/// Clear and re-initialise a reused DP row to `val` at length `len`
/// (exactly the state a fresh `vec![val; len]` would have).
#[inline]
fn reset_row<T: Copy>(row: &mut Vec<T>, len: usize, val: T) {
    row.clear();
    row.resize(len, val);
}

/// Result of a one-directional gapped X-drop extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GappedHalf {
    /// Best score of the half-extension (0 if extending is not worth it).
    score: i32,
    /// Query residues consumed at the best score.
    q_ext: u32,
    /// Subject residues consumed at the best score.
    s_ext: u32,
}

/// A full gapped extension around a seed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GappedHit {
    /// Query range `[q_start, q_end)` of the gapped alignment.
    pub q_start: u32,
    /// End of the query range (exclusive).
    pub q_end: u32,
    /// Subject range `[s_start, s_end)`.
    pub s_start: u32,
    /// End of the subject range (exclusive).
    pub s_end: u32,
    /// Raw gapped score.
    pub score: i32,
}

/// Gapped X-drop extension (Zhang/Schwartz/Miller, as in NCBI's
/// `s_BlastGappedExtension`): extend left and right from a seed pair
/// `(q_seed, s_seed)`, each half an adaptive-band affine-gap DP that prunes
/// cells more than `x_drop` below the best score seen so far.
#[allow(clippy::too_many_arguments)]
pub fn gapped_xdrop(
    matrix: &ScoreMatrix,
    gaps: GapPenalties,
    query: &[u8],
    subject: &[u8],
    q_seed: u32,
    s_seed: u32,
    x_drop: i32,
    scratch: &mut ExtendScratch,
) -> GappedHit {
    let seed_score = matrix.score(query[q_seed as usize], subject[s_seed as usize]);
    let ExtendScratch {
        prev,
        cur,
        q_rev,
        s_rev,
        ..
    } = scratch;
    let right = half_extension(
        matrix,
        gaps,
        &query[q_seed as usize + 1..],
        &subject[s_seed as usize + 1..],
        x_drop,
        (prev, cur),
    );
    let left = {
        q_rev.clear();
        q_rev.extend(query[..q_seed as usize].iter().rev().copied());
        s_rev.clear();
        s_rev.extend(subject[..s_seed as usize].iter().rev().copied());
        half_extension(matrix, gaps, q_rev, s_rev, x_drop, (prev, cur))
    };
    GappedHit {
        q_start: q_seed - left.q_ext,
        q_end: q_seed + 1 + right.q_ext,
        s_start: s_seed - left.s_ext,
        s_end: s_seed + 1 + right.s_ext,
        score: seed_score + left.score + right.score,
    }
}

/// One direction of the gapped X-drop DP.
///
/// Aligns prefixes of `q` and `s`, both starting at offset 0, where the
/// empty extension scores 0. Row `i` covers query residue `i−1`; the band
/// `[lo, hi)` of subject columns alive in a row shrinks as cells drop
/// `x_drop` below the running best.
fn half_extension(
    matrix: &ScoreMatrix,
    gaps: GapPenalties,
    q: &[u8],
    s: &[u8],
    x_drop: i32,
    rows: (&mut Vec<[i32; 2]>, &mut Vec<[i32; 2]>),
) -> GappedHalf {
    const NEG: i32 = i32::MIN / 4;
    if q.is_empty() || s.is_empty() {
        // A pure gap extension can never help (gap costs are positive).
        return GappedHalf {
            score: 0,
            q_ext: 0,
            s_ext: 0,
        };
    }
    let open_ext = gaps.open + gaps.extend;

    let width = s.len() + 1;
    // Each cell holds `[m, f]`: m = best score ending at (i, j) in any
    // state; f = best ending in a gap-in-subject (vertical) state. The
    // horizontal gap state e is carried along the row in a register. The
    // rows are caller-owned scratch, re-initialised to exactly the state
    // a fresh allocation would have.
    let (prev, cur) = rows;
    reset_row(prev, width, [NEG, NEG]);
    reset_row(cur, width, [NEG, NEG]);

    let mut best = 0i32;
    let mut best_q = 0u32;
    let mut best_s = 0u32;

    // Row 0: leading gaps in the subject direction.
    prev[0] = [0, NEG];
    let mut lo = 0usize;
    let mut hi = 1usize; // exclusive upper bound of alive columns in row 0
    for (j, slot) in prev.iter_mut().enumerate().take(width).skip(1) {
        let sc = -gaps.cost(j as i32);
        if best - sc > x_drop {
            break;
        }
        slot[0] = sc;
        hi = j + 1;
    }

    // The inner loop below is the kernel's single hottest piece of code on
    // redundant (nr-style) databases: each gapped extension sweeps tens of
    // thousands of band cells. It is written branch-free — every per-cell
    // decision is a `max`/select that compiles to cmov — because the alive
    // /dead and best-update outcomes flip unpredictably at band edges and
    // mispredictions dominate a branchy formulation.
    //
    // Two formulation changes keep it select-only without changing any
    // result. First, `f`, `diag`, and `e` are computed unconditionally
    // from the stored rows rather than guarded by `== NEG` tests: a value
    // derived from a dead (`NEG`) cell stays within a few tens of
    // thousands of `NEG` (gap costs and matrix scores are tiny against
    // `i32::MIN / 4`), so it loses every `max` against an alive path and
    // fails `best - m <= x_drop` for any reachable `best`. Second, the
    // dead-cell *stores* still write the exact `NEG` sentinel via a
    // select, because the band prune is sticky — a barely-dead score (as
    // opposed to a hugely negative one) written back would revive pruned
    // paths through the next row's diagonal. The row-carried horizontal
    // state `e` may exceed its branchy counterpart after a dead cell
    // (`m - open_ext` with `m` just below the threshold), but such a
    // value is itself below `best - x_drop` and decays monotonically, so
    // it can never decide an alive cell's value either.
    let gext = gaps.extend;
    for i in 1..=q.len() {
        let qc = q[i - 1];
        let row_entry_best = best;
        let mut e = NEG; // horizontal gap state within this row
        let mut new_lo = usize::MAX;
        let mut new_hi = lo;
        // Column range: can extend one beyond the previous row's band.
        let col_end = (hi + 1).min(width);

        // Column 0 has no diagonal predecessor and consumes no subject
        // residue; peel it so the main loop can index `s[j - 1]` safely.
        let mut start = lo;
        let mut prev_m; // carries prev[j - 1]'s m across iterations
        if lo == 0 {
            let [mp, fp] = prev[0];
            let f = (mp - open_ext).max(fp - gext);
            let m = e.max(f);
            let alive = best - m <= x_drop;
            // Dead cells must store the exact `NEG` sentinel: the band
            // prune is sticky, and a barely-dead score leaking into the
            // next row's diagonal would revive pruned paths.
            cur[0] = if alive { [m, f] } else { [NEG, NEG] };
            new_lo = if alive { 0 } else { new_lo };
            new_hi = if alive { 1 } else { new_hi };
            e = (m - open_ext).max(e - gext);
            prev_m = mp;
            start = 1;
        } else {
            prev_m = prev[lo - 1][0];
        }

        if start < col_end {
            let prev_row = &prev[start..col_end];
            let cur_row = &mut cur[start..col_end];
            let s_row = &s[start - 1..col_end - 1];
            for (idx, (c, (&[mp, fp], &sc))) in cur_row
                .iter_mut()
                .zip(prev_row.iter().zip(s_row.iter()))
                .enumerate()
            {
                let j = start + idx;
                // Vertical: gap in subject (consume query residue).
                let f = (mp - open_ext).max(fp - gext);
                // Diagonal: match/mismatch.
                let diag = prev_m + matrix.score(qc, sc);
                prev_m = mp;
                let m = diag.max(e).max(f);
                let alive = best - m <= x_drop;
                // Sticky prune: dead cells store the exact `NEG` sentinel
                // (see the column-0 peel above).
                *c = if alive { [m, f] } else { [NEG, NEG] };
                new_lo = if alive { new_lo.min(j) } else { new_lo };
                new_hi = if alive { j + 1 } else { new_hi };
                let better = m > best;
                best = if better { m } else { best };
                best_s = if better { j as u32 } else { best_s };
                // Horizontal gap for the next column.
                e = (m - open_ext).max(e - gext);
            }
        }
        // `best_q` moves only when this row improved the best score; one
        // per-row check keeps a register (and a select) out of the cell
        // loop above.
        if best > row_entry_best {
            best_q = i as u32;
        }
        if new_lo == usize::MAX {
            break; // entire row pruned: extension is finished
        }
        lo = new_lo;
        hi = new_hi;
        std::mem::swap(prev, cur);
    }

    GappedHalf {
        score: best,
        q_ext: best_q,
        s_ext: best_s,
    }
}

/// One run of alignment operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// `len` aligned residue pairs (matches or mismatches).
    Aligned(u32),
    /// `len` query residues aligned against a subject gap (insertion).
    GapInSubject(u32),
    /// `len` subject residues aligned against a query gap (deletion).
    GapInQuery(u32),
}

/// A traceback-capable alignment of a query range to a subject range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Query range `[q_start, q_end)`.
    pub q_start: u32,
    /// End of query range (exclusive).
    pub q_end: u32,
    /// Subject range `[s_start, s_end)`.
    pub s_start: u32,
    /// End of subject range (exclusive).
    pub s_end: u32,
    /// Raw score under the matrix + gap penalties it was computed with.
    pub score: i32,
    /// Edit script from `(q_start, s_start)` to `(q_end, s_end)`.
    pub ops: Vec<EditOp>,
}

impl Alignment {
    /// Total alignment columns (pairs + gaps).
    pub fn alignment_len(&self) -> u32 {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Aligned(n) | EditOp::GapInSubject(n) | EditOp::GapInQuery(n) => *n,
            })
            .sum()
    }

    /// Number of gap columns.
    pub fn gap_columns(&self) -> u32 {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Aligned(_) => 0,
                EditOp::GapInSubject(n) | EditOp::GapInQuery(n) => *n,
            })
            .sum()
    }
}

/// Global banded Gotoh alignment of `query[q_range]` vs `subject[s_range]`
/// with traceback, used to produce the final edit script for an HSP whose
/// endpoints were fixed by [`gapped_xdrop`].
///
/// The band is centered on the straight line between the two corners and
/// widened by `band_pad` cells on each side (plus the diagonal drift).
pub fn banded_global(
    matrix: &ScoreMatrix,
    gaps: GapPenalties,
    query: &[u8],
    subject: &[u8],
    band_pad: usize,
) -> Alignment {
    banded_global_into(
        matrix,
        gaps,
        query,
        subject,
        band_pad,
        &mut ExtendScratch::new(),
    )
}

/// [`banded_global`] with caller-owned DP buffers: formatting loops call
/// this once per HSP and reuse one [`ExtendScratch`] across the batch.
pub fn banded_global_into(
    matrix: &ScoreMatrix,
    gaps: GapPenalties,
    query: &[u8],
    subject: &[u8],
    band_pad: usize,
    scratch: &mut ExtendScratch,
) -> Alignment {
    const NEG: i32 = i32::MIN / 4;
    let n = query.len();
    let m = subject.len();
    assert!(n > 0 && m > 0, "banded_global needs non-empty ranges");

    // Band half-width: diagonal drift plus padding.
    let drift = n.abs_diff(m);
    let half = drift + band_pad.max(1);

    // For row i (0..=n), alive columns are j in [lo(i), hi(i)].
    let lo = |i: usize| -> usize {
        let center = i * m / n.max(1);
        center.saturating_sub(half)
    };
    let hi = |i: usize| -> usize { ((i * m / n.max(1)) + half).min(m) };

    let width = m + 1;
    let cells = (n + 1) * width;
    let dp_m = &mut scratch.dp_m;
    let dp_e = &mut scratch.dp_e; // gap in query (horizontal)
    let dp_f = &mut scratch.dp_f; // gap in subject (vertical)
    reset_row(dp_m, cells, NEG);
    reset_row(dp_e, cells, NEG);
    reset_row(dp_f, cells, NEG);
    let at = |i: usize, j: usize| i * width + j;

    dp_m[at(0, 0)] = 0;
    for j in 1..=hi(0) {
        dp_e[at(0, j)] = -gaps.cost(j as i32);
    }
    for i in 1..=n {
        if lo(i) == 0 {
            dp_f[at(i, 0)] = -gaps.cost(i as i32);
        }
        let row = matrix.row(query[i - 1]);
        for j in lo(i).max(1)..=hi(i) {
            let sc = row[subject[j - 1] as usize];
            let prev_best = dp_m[at(i - 1, j - 1)]
                .max(dp_e[at(i - 1, j - 1)])
                .max(dp_f[at(i - 1, j - 1)]);
            if prev_best > NEG {
                dp_m[at(i, j)] = prev_best + sc;
            }
            let up = dp_m[at(i - 1, j)].max(dp_f[at(i - 1, j)] + gaps.open);
            if up > NEG {
                dp_f[at(i, j)] = up - gaps.open - gaps.extend;
            }
            let left = dp_m[at(i, j - 1)].max(dp_e[at(i, j - 1)] + gaps.open);
            if left > NEG {
                dp_e[at(i, j)] = left - gaps.open - gaps.extend;
            }
        }
    }

    // Traceback from (n, m), choosing the best of the three states.
    let mut i = n;
    let mut j = m;
    let score = dp_m[at(n, m)].max(dp_e[at(n, m)]).max(dp_f[at(n, m)]);
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        M,
        E,
        F,
    }
    let mut state = if score == dp_m[at(n, m)] {
        St::M
    } else if score == dp_e[at(n, m)] {
        St::E
    } else {
        St::F
    };
    let mut rev_ops: Vec<EditOp> = Vec::new();
    let push = |ops: &mut Vec<EditOp>, op: EditOp| {
        // Merge with the previous run when the kind matches.
        match (ops.last_mut(), op) {
            (Some(EditOp::Aligned(n)), EditOp::Aligned(k)) => *n += k,
            (Some(EditOp::GapInSubject(n)), EditOp::GapInSubject(k)) => *n += k,
            (Some(EditOp::GapInQuery(n)), EditOp::GapInQuery(k)) => *n += k,
            _ => ops.push(op),
        }
    };
    while i > 0 || j > 0 {
        match state {
            St::M => {
                debug_assert!(i > 0 && j > 0);
                let sc = matrix.score(query[i - 1], subject[j - 1]);
                let target = dp_m[at(i, j)] - sc;
                push(&mut rev_ops, EditOp::Aligned(1));
                i -= 1;
                j -= 1;
                state = if target == dp_m[at(i, j)] {
                    St::M
                } else if target == dp_e[at(i, j)] {
                    St::E
                } else {
                    St::F
                };
            }
            St::E => {
                debug_assert!(j > 0);
                let target = dp_e[at(i, j)];
                push(&mut rev_ops, EditOp::GapInQuery(1));
                // Came from M (open) or E (extend) at (i, j-1).
                let from_open = dp_m[at(i, j - 1)] - gaps.open - gaps.extend;
                j -= 1;
                state = if target == from_open { St::M } else { St::E };
            }
            St::F => {
                debug_assert!(i > 0);
                let target = dp_f[at(i, j)];
                push(&mut rev_ops, EditOp::GapInSubject(1));
                let from_open = dp_m[at(i - 1, j)] - gaps.open - gaps.extend;
                i -= 1;
                state = if target == from_open { St::M } else { St::F };
            }
        }
    }
    rev_ops.reverse();
    Alignment {
        q_start: 0,
        q_end: n as u32,
        s_start: 0,
        s_end: m as u32,
        score,
        ops: rev_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{encode, Molecule};

    fn enc(s: &[u8]) -> Vec<u8> {
        encode(Molecule::Protein, s).unwrap()
    }

    fn m62() -> ScoreMatrix {
        ScoreMatrix::blosum62()
    }

    fn self_score(m: &ScoreMatrix, s: &[u8]) -> i32 {
        s.iter().map(|&c| m.score(c, c)).sum()
    }

    #[test]
    fn ungapped_identical_sequences_extend_fully() {
        let m = m62();
        let q = enc(b"MKVLAAGHWRTE");
        let hit = ungapped_xdrop(&m, &q, &q, 4, 4, 3, 16);
        assert_eq!(hit.q_start, 0);
        assert_eq!(hit.q_end, q.len() as u32);
        assert_eq!(hit.score, self_score(&m, &q));
    }

    #[test]
    fn ungapped_xdrop_stops_at_junk() {
        let m = m62();
        let q = enc(b"MKVLMKVL");
        // Subject matches the first 8 residues then diverges badly.
        let s = enc(b"MKVLMKVLPPPPPPPPPPPPPPPPPP");
        let hit = ungapped_xdrop(&m, &q, &s, 0, 0, 3, 10);
        assert_eq!(hit.q_end, 8);
        assert_eq!(hit.s_end, 8);
        assert_eq!(hit.score, self_score(&m, &q));
    }

    #[test]
    fn ungapped_offset_hit() {
        let m = m62();
        let q = enc(b"GGGMKVLWGGG");
        let s = enc(b"TTTTTMKVLWTTTTT");
        // Word at q[3], s[5].
        let hit = ungapped_xdrop(&m, &q, &s, 3, 5, 3, 7);
        assert!(hit.q_start <= 3 && hit.q_end >= 8);
        assert!(hit.score >= self_score(&m, &enc(b"MKVLW")));
    }

    #[test]
    fn gapped_identical_equals_self_score() {
        let m = m62();
        let q = enc(b"MKVLAAGHWRTEYFNDCQ");
        let hit = gapped_xdrop(
            &m,
            GapPenalties::BLOSUM62_DEFAULT,
            &q,
            &q,
            9,
            9,
            38,
            &mut ExtendScratch::new(),
        );
        assert_eq!(hit.q_start, 0);
        assert_eq!(hit.q_end, q.len() as u32);
        assert_eq!(hit.score, self_score(&m, &q));
    }

    #[test]
    fn gapped_extension_crosses_a_gap() {
        let m = m62();
        let gaps = GapPenalties::BLOSUM62_DEFAULT;
        // Subject = query with 2 residues deleted in the middle; flanks are
        // long enough that bridging the gap beats stopping at it.
        let q = enc(b"MKVLAAGHWRTEYFNDCQWHMKVLAAGHWRTEYFNDCQWH");
        let mut s_vec = q.clone();
        s_vec.drain(20..22);
        let s = s_vec;
        let hit = gapped_xdrop(&m, gaps, &q, &s, 5, 5, 40, &mut ExtendScratch::new());
        let expected =
            self_score(&m, &q) - m.score(q[20], q[20]) - m.score(q[21], q[21]) - gaps.cost(2);
        assert_eq!(hit.score, expected);
        assert_eq!(hit.q_end, q.len() as u32);
        assert_eq!(hit.s_end, s.len() as u32);
    }

    #[test]
    fn gapped_seed_at_sequence_edges() {
        let m = m62();
        let q = enc(b"MKVL");
        let hit = gapped_xdrop(
            &m,
            GapPenalties::BLOSUM62_DEFAULT,
            &q,
            &q,
            0,
            0,
            20,
            &mut ExtendScratch::new(),
        );
        assert_eq!(hit.q_start, 0);
        assert_eq!(hit.score, self_score(&m, &q));
        let hit = gapped_xdrop(
            &m,
            GapPenalties::BLOSUM62_DEFAULT,
            &q,
            &q,
            3,
            3,
            20,
            &mut ExtendScratch::new(),
        );
        assert_eq!(hit.q_end, 4);
        assert_eq!(hit.score, self_score(&m, &q));
    }

    #[test]
    fn banded_global_identity() {
        let m = m62();
        let q = enc(b"MKVLAAGHWR");
        let aln = banded_global(&m, GapPenalties::BLOSUM62_DEFAULT, &q, &q, 4);
        assert_eq!(aln.score, self_score(&m, &q));
        assert_eq!(aln.ops, vec![EditOp::Aligned(10)]);
        assert_eq!(aln.alignment_len(), 10);
        assert_eq!(aln.gap_columns(), 0);
    }

    #[test]
    fn banded_global_with_deletion() {
        let m = m62();
        let gaps = GapPenalties::BLOSUM62_DEFAULT;
        let q = enc(b"MKVLAAGHWRTEYFND");
        let mut s = q.clone();
        s.drain(8..11);
        let aln = banded_global(&m, gaps, &q, &s, 6);
        let gap_cols = aln.gap_columns();
        assert_eq!(gap_cols, 3);
        // Score = self score of remaining pairs minus gap cost.
        let kept: i32 = self_score(&m, &q)
            - q[8..11].iter().map(|&c| m.score(c, c)).sum::<i32>()
            - gaps.cost(3);
        assert_eq!(aln.score, kept);
    }

    #[test]
    fn banded_global_matches_gapped_score() {
        // The traceback alignment over the gapped hit's rectangle must
        // reproduce the gapped extension's score for a clean homolog pair.
        let m = m62();
        let gaps = GapPenalties::BLOSUM62_DEFAULT;
        let q = enc(b"MKVLAAGHWRTEYFNDCQWHERTYPLKJHGFDSAZXCVBNM");
        let mut s = q.clone();
        s[12] = 0; // one substitution
        s.remove(30); // one deletion
        let hit = gapped_xdrop(&m, gaps, &q, &s, 3, 3, 40, &mut ExtendScratch::new());
        let aln = banded_global(
            &m,
            gaps,
            &q[hit.q_start as usize..hit.q_end as usize],
            &s[hit.s_start as usize..hit.s_end as usize],
            8,
        );
        assert_eq!(aln.score, hit.score);
    }

    #[test]
    fn edit_ops_account_for_all_residues() {
        let m = m62();
        let gaps = GapPenalties::BLOSUM62_DEFAULT;
        let q = enc(b"MKVLAAGHWRTEYF");
        let mut s = q.clone();
        s.insert(5, 7);
        let aln = banded_global(&m, gaps, &q, &s, 5);
        let mut q_used = 0u32;
        let mut s_used = 0u32;
        for op in &aln.ops {
            match op {
                EditOp::Aligned(n) => {
                    q_used += n;
                    s_used += n;
                }
                EditOp::GapInSubject(n) => q_used += n,
                EditOp::GapInQuery(n) => s_used += n,
            }
        }
        assert_eq!(q_used as usize, q.len());
        assert_eq!(s_used as usize, s.len());
    }
}
