//! NCBI-style pairwise report formatting.
//!
//! The output file of a BLAST run is organized by query: a header with the
//! query defline and database statistics, a one-line-summary section
//! listing every reported subject, one alignment record per subject, and a
//! statistics footer.
//!
//! Every piece is formatted by a standalone function returning a `String`,
//! because the paper's central output optimization depends on it: pioBLAST
//! workers format their own alignment records *early*, report only the
//! record sizes to the master, and later write the bytes at
//! master-assigned offsets with collective I/O. Byte-exact sizes must
//! therefore be computable worker-side, and identical input must format
//! identically everywhere.

use crate::alphabet::{decode_letter, Molecule};
use crate::extend::{banded_global_into, Alignment, EditOp, ExtendScratch};
use crate::hsp::Hsp;
use crate::search::SearchParams;
use crate::seq::SeqRecord;
use crate::stats::{DbStats, SearchSpace};

/// Report-wide configuration.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Program banner, e.g. `BLASTP 2.2.10-sim [pioblast-rs]`.
    pub program: String,
    /// Database display name.
    pub db_title: String,
    /// Global database statistics.
    pub db_stats: DbStats,
    /// Residues per alignment line.
    pub line_width: usize,
    /// Maximum one-line summaries per query (NCBI `-v`, default 500).
    pub num_descriptions: usize,
    /// Maximum alignment records per query (NCBI `-b`, default 250).
    pub num_alignments: usize,
}

impl ReportConfig {
    /// Defaults matching `blastall -p blastp`.
    pub fn blastp(db_title: impl Into<String>, db_stats: DbStats) -> ReportConfig {
        ReportConfig {
            program: "BLASTP 2.2.10-sim [pioblast-rs]".to_string(),
            db_title: db_title.into(),
            db_stats,
            line_width: 60,
            num_descriptions: 500,
            num_alignments: 250,
        }
    }

    /// Defaults matching `blastall -p blastn`.
    pub fn blastn(db_title: impl Into<String>, db_stats: DbStats) -> ReportConfig {
        ReportConfig {
            program: "BLASTN 2.2.10-sim [pioblast-rs]".to_string(),
            ..ReportConfig::blastp(db_title, db_stats)
        }
    }

    /// Pick the program banner from the molecule searched.
    pub fn for_molecule(
        molecule: Molecule,
        db_title: impl Into<String>,
        db_stats: DbStats,
    ) -> ReportConfig {
        match molecule {
            Molecule::Protein => ReportConfig::blastp(db_title, db_stats),
            Molecule::Dna => ReportConfig::blastn(db_title, db_stats),
        }
    }
}

/// Group digits with commas (`1986684` -> `1,986,684`), as NCBI reports do.
pub fn commas(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let lead = digits.len() % 3;
    for (i, c) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - lead).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format an E-value the way BLAST reports do.
pub fn format_evalue(e: f64) -> String {
    if e == 0.0 {
        "0.0".to_string()
    } else if e < 1e-99 {
        // NCBI drops the mantissa's "1." for tiny values: `e-120`.
        let exp = e.log10().floor() as i32;
        format!("e{exp}")
    } else if e < 0.001 {
        let exp = e.log10().floor() as i32;
        let mantissa = e / 10f64.powi(exp);
        format!("{:.0}e-{:02}", mantissa, -exp)
    } else if e < 0.1 {
        format!("{e:.3}")
    } else if e < 10.0 {
        format!("{e:.2}")
    } else {
        format!("{e:.1}")
    }
}

/// The header block that starts each query's section of the report.
pub fn query_header(cfg: &ReportConfig, query: &SeqRecord) -> String {
    format!(
        "{}\n\n\nQuery= {}\n         ({} letters)\n\nDatabase: {}\n           {} sequences; {} total letters\n\n",
        cfg.program,
        query.defline,
        commas(query.len() as u64),
        cfg.db_title,
        commas(cfg.db_stats.num_sequences),
        commas(cfg.db_stats.total_residues),
    )
}

/// One entry of the "Sequences producing significant alignments" section.
///
/// `defline` is the subject defline; it is truncated/padded to a fixed
/// column so scores align.
pub fn summary_line(defline: &str, bit_score: f64, evalue: f64) -> String {
    const DEFLINE_COL: usize = 64;
    let mut name: String = defline.chars().take(DEFLINE_COL).collect();
    if defline.chars().count() > DEFLINE_COL {
        name.truncate(DEFLINE_COL - 3);
        name.push_str("...");
    }
    format!(
        "{name:<DEFLINE_COL$} {:>7.1} {:>9}\n",
        bit_score,
        format_evalue(evalue)
    )
}

/// The summary section header + entries.
pub fn summary_section(lines: &[String]) -> String {
    let mut out = String::from(
        "                                                                 Score    E\nSequences producing significant alignments:                     (bits)  Value\n\n",
    );
    for l in lines {
        out.push_str(l);
    }
    out.push('\n');
    out
}

/// Identity/positive/gap counts of a traceback alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentCounts {
    /// Exactly matching columns.
    pub identities: u32,
    /// Columns with a positive substitution score (includes identities).
    pub positives: u32,
    /// Gap columns.
    pub gaps: u32,
    /// Total alignment columns.
    pub length: u32,
}

/// Walk an edit script and count identities/positives/gaps.
pub fn count_alignment(
    params: &SearchParams,
    query: &[u8],
    subject: &[u8],
    aln: &Alignment,
) -> AlignmentCounts {
    let mut qi = 0usize;
    let mut si = 0usize;
    let mut counts = AlignmentCounts {
        identities: 0,
        positives: 0,
        gaps: 0,
        length: aln.alignment_len(),
    };
    for op in &aln.ops {
        match *op {
            EditOp::Aligned(n) => {
                for _ in 0..n {
                    let (a, b) = (query[qi], subject[si]);
                    if a == b {
                        counts.identities += 1;
                        counts.positives += 1;
                    } else if params.matrix.score(a, b) > 0 {
                        counts.positives += 1;
                    }
                    qi += 1;
                    si += 1;
                }
            }
            EditOp::GapInSubject(n) => {
                counts.gaps += n;
                qi += n as usize;
            }
            EditOp::GapInQuery(n) => {
                counts.gaps += n;
                si += n as usize;
            }
        }
    }
    counts
}

/// Percentage in NCBI style (rounded down like `28/88 (31%)`).
fn pct(part: u32, whole: u32) -> u32 {
    (part * 100).checked_div(whole).unwrap_or(0)
}

/// Format one full alignment record: the subject defline block followed by
/// every HSP's score block and alignment lines.
///
/// `query`/`subject` are encoded residues; HSP coordinates index into them.
/// Traceback runs here (this is the expensive "output function" the paper's
/// master calls serially in mpiBLAST and workers call in parallel in
/// pioBLAST).
pub fn alignment_record(
    params: &SearchParams,
    cfg: &ReportConfig,
    query: &[u8],
    subject_defline: &str,
    subject: &[u8],
    hsps: &[Hsp],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        ">{}\n          Length = {}\n\n",
        subject_defline,
        subject.len()
    ));
    // One set of DP buffers serves every HSP's traceback.
    let mut scratch = ExtendScratch::new();
    for h in hsps {
        let q_range = &query[h.q_start as usize..h.q_end as usize];
        let s_range = &subject[h.s_start as usize..h.s_end as usize];
        let aln = banded_global_into(
            &params.matrix,
            params.gaps,
            q_range,
            s_range,
            16,
            &mut scratch,
        );
        let counts = count_alignment(params, q_range, s_range, &aln);
        out.push_str(&format!(
            " Score = {:.1} bits ({}), Expect = {}\n",
            h.bit_score,
            h.score,
            format_evalue(h.evalue)
        ));
        out.push_str(&format!(
            " Identities = {}/{} ({}%), Positives = {}/{} ({}%)",
            counts.identities,
            counts.length,
            pct(counts.identities, counts.length),
            counts.positives,
            counts.length,
            pct(counts.positives, counts.length),
        ));
        if counts.gaps > 0 {
            out.push_str(&format!(
                ", Gaps = {}/{} ({}%)",
                counts.gaps,
                counts.length,
                pct(counts.gaps, counts.length)
            ));
        }
        out.push_str("\n\n");
        render_alignment_lines(
            params.molecule,
            &params.matrix,
            cfg.line_width,
            q_range,
            s_range,
            h.q_start + 1,
            h.s_start + 1,
            &aln,
            &mut out,
        );
    }
    out
}

/// Expand an edit script into three aligned ASCII rows and emit them in
/// `width`-column blocks with 1-based coordinates.
#[allow(clippy::too_many_arguments)]
fn render_alignment_lines(
    molecule: Molecule,
    matrix: &crate::matrix::ScoreMatrix,
    width: usize,
    query: &[u8],
    subject: &[u8],
    q_base: u32,
    s_base: u32,
    aln: &Alignment,
    out: &mut String,
) {
    let mut q_row = Vec::new();
    let mut mid = Vec::new();
    let mut s_row = Vec::new();
    let mut qi = 0usize;
    let mut si = 0usize;
    for op in &aln.ops {
        match *op {
            EditOp::Aligned(n) => {
                for _ in 0..n {
                    let (a, b) = (query[qi], subject[si]);
                    q_row.push(decode_letter(molecule, a));
                    s_row.push(decode_letter(molecule, b));
                    mid.push(if a == b {
                        decode_letter(molecule, a)
                    } else if matrix.score(a, b) > 0 {
                        b'+'
                    } else {
                        b' '
                    });
                    qi += 1;
                    si += 1;
                }
            }
            EditOp::GapInSubject(n) => {
                for _ in 0..n {
                    q_row.push(decode_letter(molecule, query[qi]));
                    s_row.push(b'-');
                    mid.push(b' ');
                    qi += 1;
                }
            }
            EditOp::GapInQuery(n) => {
                for _ in 0..n {
                    q_row.push(b'-');
                    s_row.push(decode_letter(molecule, subject[si]));
                    mid.push(b' ');
                    si += 1;
                }
            }
        }
    }

    let total = q_row.len();
    let mut q_pos = q_base;
    let mut s_pos = s_base;
    let mut start = 0usize;
    while start < total {
        let end = (start + width).min(total);
        let q_chunk = &q_row[start..end];
        let s_chunk = &s_row[start..end];
        let m_chunk = &mid[start..end];
        let q_res = q_chunk.iter().filter(|&&c| c != b'-').count() as u32;
        let s_res = s_chunk.iter().filter(|&&c| c != b'-').count() as u32;
        let q_end_pos = q_pos + q_res.saturating_sub(1);
        let s_end_pos = s_pos + s_res.saturating_sub(1);
        out.push_str(&format!(
            "Query: {:<5} {} {}\n",
            q_pos,
            String::from_utf8_lossy(q_chunk),
            q_end_pos
        ));
        out.push_str(&format!(
            "             {}\n",
            String::from_utf8_lossy(m_chunk)
        ));
        out.push_str(&format!(
            "Sbjct: {:<5} {} {}\n\n",
            s_pos,
            String::from_utf8_lossy(s_chunk),
            s_end_pos
        ));
        q_pos += q_res;
        s_pos += s_res;
        start = end;
    }
}

/// The statistics footer closing each query's section.
pub fn query_footer(params: &SearchParams, space: &SearchSpace) -> String {
    format!(
        "\nLambda     K      H\n   {:.3}   {:.3}    {:.3}\n\nGapped\nLambda     K      H\n   {:.3}   {:.3}    {:.3}\n\nEffective length of query: {}\nEffective length of database: {}\nEffective search space: {:.0}\n\n\n",
        params.ungapped.lambda,
        params.ungapped.k,
        params.ungapped.h,
        params.gapped.lambda,
        params.gapped.k,
        params.gapped.h,
        space.eff_query_len,
        space.eff_db_len,
        space.space(),
    )
}

/// The "no hits" body used when a query reports nothing.
pub fn no_hits_section() -> String {
    " ***** No hits found ******\n\n".to_string()
}

/// One line of tabular (`-m 8`-style) output for an HSP.
pub fn tabular_line(
    params: &SearchParams,
    query_id: &str,
    subject_id: &str,
    query: &[u8],
    subject: &[u8],
    h: &Hsp,
) -> String {
    let q_range = &query[h.q_start as usize..h.q_end as usize];
    let s_range = &subject[h.s_start as usize..h.s_end as usize];
    let aln = banded_global_into(
        &params.matrix,
        params.gaps,
        q_range,
        s_range,
        16,
        &mut ExtendScratch::new(),
    );
    let counts = count_alignment(params, q_range, s_range, &aln);
    let mismatches = counts.length - counts.identities - counts.gaps;
    let gap_opens = aln
        .ops
        .iter()
        .filter(|op| !matches!(op, EditOp::Aligned(_)))
        .count();
    format!(
        "{}\t{}\t{:.2}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}\n",
        query_id,
        subject_id,
        counts.identities as f64 * 100.0 / counts.length.max(1) as f64,
        counts.length,
        mismatches,
        gap_opens,
        h.q_start + 1,
        h.q_end,
        h.s_start + 1,
        h.s_end,
        format_evalue(h.evalue),
        h.bit_score,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Molecule;
    use crate::karlin::KarlinParams;

    fn cfg() -> ReportConfig {
        ReportConfig::blastp(
            "nr-sim",
            DbStats {
                num_sequences: 1_986_684,
                total_residues: 999_000_111,
            },
        )
    }

    #[test]
    fn commas_groups_digits() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1000), "1,000");
        assert_eq!(commas(1986684), "1,986,684");
        assert_eq!(commas(999000111), "999,000,111");
    }

    #[test]
    fn evalue_formats() {
        assert_eq!(format_evalue(0.0), "0.0");
        assert_eq!(format_evalue(2.3e-7), "2e-07");
        assert_eq!(format_evalue(0.004), "0.004");
        assert_eq!(format_evalue(0.5), "0.50");
        assert_eq!(format_evalue(42.0), "42.0");
        assert!(format_evalue(1e-120).starts_with("e-"));
    }

    #[test]
    fn header_mentions_query_and_db() {
        let q = SeqRecord::from_ascii(Molecule::Protein, "q1 test protein", b"MKVLAAGH").unwrap();
        let h = query_header(&cfg(), &q);
        assert!(h.contains("Query= q1 test protein"));
        assert!(h.contains("(8 letters)"));
        assert!(h.contains("1,986,684 sequences"));
    }

    #[test]
    fn summary_line_is_fixed_width() {
        let a = summary_line("short", 55.1, 2e-7);
        let b = summary_line(
            "a very long defline that keeps going and going and going and going on",
            155.0,
            1e-50,
        );
        // Both lines place the score at the same column.
        let col_a = a.rfind("  ").unwrap();
        let col_b = b.rfind("  ").unwrap();
        assert_eq!(col_a, col_b);
        assert!(b.contains("..."));
    }

    #[test]
    fn alignment_record_is_self_consistent() {
        let params = SearchParams::blastp();
        let q = crate::alphabet::encode(Molecule::Protein, b"MKVLAAGHWRTEYFNDCQWH").unwrap();
        let s = q.clone();
        let space = SearchSpace::new(params.gapped, q.len() as u64, cfg().db_stats);
        let h = Hsp {
            query_idx: 0,
            oid: 3,
            q_start: 0,
            q_end: q.len() as u32,
            s_start: 0,
            s_end: s.len() as u32,
            score: 120,
            bit_score: space.bit_score(120),
            evalue: space.evalue(120),
        };
        let rec = alignment_record(&params, &cfg(), &q, "gi|3| subject", &s, &[h]);
        assert!(rec.contains(">gi|3| subject"));
        assert!(rec.contains("Length = 20"));
        assert!(rec.contains("Identities = 20/20 (100%)"));
        assert!(rec.contains("Query: 1"));
        assert!(rec.contains("Sbjct: 1"));
        // Identical sequences: no Gaps clause.
        assert!(!rec.contains("Gaps ="));
    }

    #[test]
    fn alignment_record_reports_gaps() {
        let params = SearchParams::blastp();
        let q =
            crate::alphabet::encode(Molecule::Protein, b"MKVLAAGHWRTEYFNDCQWHERTYPLKI").unwrap();
        let mut s = q.clone();
        s.drain(10..13);
        let space = SearchSpace::new(params.gapped, q.len() as u64, cfg().db_stats);
        let h = Hsp {
            query_idx: 0,
            oid: 0,
            q_start: 0,
            q_end: q.len() as u32,
            s_start: 0,
            s_end: s.len() as u32,
            score: 90,
            bit_score: space.bit_score(90),
            evalue: space.evalue(90),
        };
        let rec = alignment_record(&params, &cfg(), &q, "subj", &s, &[h]);
        assert!(rec.contains("Gaps = 3/"), "record:\n{rec}");
        assert!(rec.contains('-'), "gap dashes must appear");
    }

    #[test]
    fn long_alignments_wrap_at_width() {
        let params = SearchParams::blastp();
        let unit = b"MKVLAAGHWRTEYFNDCQWH";
        let mut raw = Vec::new();
        for _ in 0..8 {
            raw.extend_from_slice(unit);
        }
        let q = crate::alphabet::encode(Molecule::Protein, &raw).unwrap();
        let space = SearchSpace::new(params.gapped, q.len() as u64, cfg().db_stats);
        let h = Hsp {
            query_idx: 0,
            oid: 0,
            q_start: 0,
            q_end: q.len() as u32,
            s_start: 0,
            s_end: q.len() as u32,
            score: 800,
            bit_score: space.bit_score(800),
            evalue: space.evalue(800),
        };
        let rec = alignment_record(&params, &cfg(), &q, "subj", &q, &[h]);
        // 160 residues at width 60 -> 3 blocks.
        assert_eq!(rec.matches("Query: ").count(), 3);
        assert!(rec.contains("Query: 61"));
        assert!(rec.contains("Query: 121"));
    }

    #[test]
    fn footer_contains_lambda_table() {
        let params = SearchParams::blastp();
        let space = SearchSpace::new(params.gapped, 100, cfg().db_stats);
        let f = query_footer(&params, &space);
        assert!(f.contains("Lambda     K      H"));
        assert!(f.contains("0.267"));
    }

    #[test]
    fn tabular_line_has_twelve_fields() {
        let params = SearchParams::blastp();
        let q = crate::alphabet::encode(Molecule::Protein, b"MKVLAAGHWRTEYFNDCQWH").unwrap();
        let space = SearchSpace::new(params.gapped, q.len() as u64, cfg().db_stats);
        let h = Hsp {
            query_idx: 0,
            oid: 0,
            q_start: 0,
            q_end: 20,
            s_start: 0,
            s_end: 20,
            score: 100,
            bit_score: space.bit_score(100),
            evalue: space.evalue(100),
        };
        let line = tabular_line(&params, "q1", "s1", &q, &q, &h);
        assert_eq!(line.trim_end().split('\t').count(), 12);
    }

    #[test]
    fn formatting_is_deterministic_across_calls() {
        // Same input, same bytes — the property pioBLAST's size metadata
        // protocol relies on.
        let params = SearchParams::blastp();
        let q = crate::alphabet::encode(Molecule::Protein, b"MKVLAAGHWRTEYFNDCQWH").unwrap();
        let p = KarlinParams {
            lambda: 0.267,
            k: 0.041,
            h: 0.14,
        };
        let h = Hsp {
            query_idx: 0,
            oid: 0,
            q_start: 2,
            q_end: 18,
            s_start: 2,
            s_end: 18,
            score: 80,
            bit_score: p.bit_score(80),
            evalue: 1e-12,
        };
        let a = alignment_record(&params, &cfg(), &q, "subj x", &q, &[h]);
        let b = alignment_record(&params, &cfg(), &q, "subj x", &q, &[h]);
        assert_eq!(a, b);
        assert_eq!(a.len(), b.len());
    }
}
