//! High-scoring segment pairs (HSPs): records, ordering, and culling.

/// A scored local alignment of one query against one database subject.
///
/// Coordinates are 0-based half-open; `oid` is the subject's ordinal id in
/// the *global* database, so HSPs found in different fragments merge
/// unambiguously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hsp {
    /// Index of the query within the query set.
    pub query_idx: u32,
    /// Global ordinal id of the subject sequence.
    pub oid: u32,
    /// Query range start.
    pub q_start: u32,
    /// Query range end (exclusive).
    pub q_end: u32,
    /// Subject range start.
    pub s_start: u32,
    /// Subject range end (exclusive).
    pub s_end: u32,
    /// Raw (matrix-unit) score.
    pub score: i32,
    /// Normalized bit score.
    pub bit_score: f64,
    /// Expectation value against the global search space.
    pub evalue: f64,
}

impl Hsp {
    /// Whether `self`'s query and subject ranges both lie inside `other`'s.
    pub fn contained_in(&self, other: &Hsp) -> bool {
        self.oid == other.oid
            && self.query_idx == other.query_idx
            && self.q_start >= other.q_start
            && self.q_end <= other.q_end
            && self.s_start >= other.s_start
            && self.s_end <= other.s_end
    }

    /// Deterministic ranking key: higher score first, then lower E-value,
    /// then subject/coordinate order as an arbitrary but total tiebreak.
    ///
    /// The key is a plain `Copy` tuple so callers can compute it once per
    /// HSP and sort on the cached value instead of re-deriving it in every
    /// comparison (the kernel's ranking sorts do exactly that).
    pub fn rank_key(&self) -> RankKey {
        (
            std::cmp::Reverse(self.score),
            self.oid,
            self.q_start,
            self.s_start,
            self.q_end,
            self.s_end,
        )
    }
}

/// The concrete type of [`Hsp::rank_key`]: totally ordered, `Copy`, and
/// cacheable alongside the HSP it ranks.
pub type RankKey = (std::cmp::Reverse<i32>, u32, u32, u32, u32, u32);

/// Sort HSPs into canonical reporting order (best first, deterministic).
pub fn sort_canonical(hsps: &mut [Hsp]) {
    hsps.sort_by_key(|a| a.rank_key());
}

/// Remove HSPs wholly contained in a higher-scoring HSP of the same
/// (query, subject) pair — the standard BLAST redundancy cull.
///
/// Input order is not preserved; the result is in canonical order.
pub fn cull_contained(hsps: &mut Vec<Hsp>) {
    sort_canonical(hsps);
    let kept = cull_contained_sorted(hsps);
    hsps.truncate(kept);
}

/// Allocation-free containment cull over a canonically-sorted slice:
/// compacts surviving HSPs to the front and returns how many survived.
///
/// The caller must have sorted `hsps` with [`sort_canonical`] ordering
/// (the kernel's flat per-subject accumulator sorts one (query, subject)
/// run at a time and culls each run in place).
pub fn cull_contained_sorted(hsps: &mut [Hsp]) -> usize {
    let mut kept = 0usize;
    for i in 0..hsps.len() {
        let h = hsps[i];
        let contained = hsps[..kept]
            .iter()
            .filter(|k| k.oid == h.oid && k.query_idx == h.query_idx)
            .any(|k| h.contained_in(k));
        if !contained {
            hsps[kept] = h;
            kept += 1;
        }
    }
    kept
}

/// Merge per-diagonal duplicates: two HSPs with identical coordinates.
pub fn dedup_exact(hsps: &mut Vec<Hsp>) {
    sort_canonical(hsps);
    hsps.dedup_by(|a, b| {
        a.query_idx == b.query_idx
            && a.oid == b.oid
            && a.q_start == b.q_start
            && a.q_end == b.q_end
            && a.s_start == b.s_start
            && a.s_end == b.s_end
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsp(oid: u32, q: (u32, u32), s: (u32, u32), score: i32) -> Hsp {
        Hsp {
            query_idx: 0,
            oid,
            q_start: q.0,
            q_end: q.1,
            s_start: s.0,
            s_end: s.1,
            score,
            bit_score: score as f64,
            evalue: (-(score as f64)).exp(),
        }
    }

    #[test]
    fn containment_requires_same_subject() {
        let a = hsp(1, (0, 100), (0, 100), 50);
        let mut b = hsp(1, (10, 20), (10, 20), 10);
        assert!(b.contained_in(&a));
        b.oid = 2;
        assert!(!b.contained_in(&a));
    }

    #[test]
    fn cull_drops_contained_only() {
        let big = hsp(1, (0, 100), (0, 100), 50);
        let inside = hsp(1, (10, 20), (10, 20), 10);
        let overlapping = hsp(1, (50, 150), (50, 150), 20);
        let elsewhere = hsp(2, (10, 20), (10, 20), 10);
        let mut v = vec![inside, big, overlapping, elsewhere];
        cull_contained(&mut v);
        assert_eq!(v.len(), 3);
        assert!(v.contains(&big));
        assert!(v.contains(&overlapping));
        assert!(v.contains(&elsewhere));
    }

    #[test]
    fn cull_keeps_higher_scoring_inner_if_outer_scores_less() {
        // Containment culling is score-directional: the lower-scoring HSP is
        // dropped only when contained in a *higher or equal* scoring one
        // examined first in canonical order.
        let outer = hsp(1, (0, 100), (0, 100), 10);
        let inner = hsp(1, (10, 20), (10, 20), 50);
        let mut v = vec![outer, inner];
        cull_contained(&mut v);
        // inner ranks first; outer is not contained in inner, so both stay.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn canonical_sort_is_total_and_deterministic() {
        let mut a = vec![
            hsp(2, (0, 10), (0, 10), 30),
            hsp(1, (0, 10), (0, 10), 30),
            hsp(1, (5, 10), (0, 10), 30),
            hsp(1, (0, 10), (0, 10), 40),
        ];
        let mut b = a.clone();
        b.reverse();
        sort_canonical(&mut a);
        sort_canonical(&mut b);
        assert_eq!(a, b);
        assert_eq!(a[0].score, 40);
    }

    #[test]
    fn dedup_exact_removes_duplicates() {
        let h = hsp(1, (0, 10), (0, 10), 30);
        let mut v = vec![h, h, hsp(1, (0, 10), (0, 11), 30)];
        dedup_exact(&mut v);
        assert_eq!(v.len(), 2);
    }
}
