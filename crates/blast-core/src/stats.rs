//! E-values, bit scores, effective search spaces and cutoffs.
//!
//! A parallel BLAST that partitions the database must compute E-values
//! against the *whole* database's search space, not the fragment's —
//! otherwise results differ from a serial run and cannot be merged. This
//! module makes that explicit: [`SearchSpace`] is always built from global
//! database statistics ([`DbStats`]), no matter which fragment is being
//! scanned.

use crate::karlin::KarlinParams;

/// Global statistics of a database, carried in the formatted-DB index and
/// broadcast to all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Number of sequences in the whole database.
    pub num_sequences: u64,
    /// Total residues in the whole database.
    pub total_residues: u64,
}

impl DbStats {
    /// Combine statistics of two disjoint sequence sets.
    pub fn merge(self, other: DbStats) -> DbStats {
        DbStats {
            num_sequences: self.num_sequences + other.num_sequences,
            total_residues: self.total_residues + other.total_residues,
        }
    }
}

/// NCBI-style iterative length adjustment.
///
/// Solves `l = ln(K·(m − l)·(n − N·l)) / H` by fixed-point iteration,
/// clamped so effective lengths stay positive. `m` is the query length,
/// `n` the database residue count, `N` the database sequence count.
pub fn length_adjustment(params: KarlinParams, m: u64, n: u64, num_seqs: u64) -> u64 {
    if m == 0 || n == 0 {
        return 0;
    }
    let k = params.k.max(1e-300);
    let h = params.h.max(1e-12);
    let m = m as f64;
    let n = n as f64;
    let num_seqs = (num_seqs as f64).max(1.0);
    let mut ell = 0.0f64;
    for _ in 0..60 {
        let m_eff = (m - ell).max(1.0);
        let n_eff = (n - num_seqs * ell).max(1.0);
        let next = (k * m_eff * n_eff).ln().max(0.0) / h;
        // Keep the adjustment feasible: effective lengths must stay >= 1.
        let bound = (m - 1.0).min((n - 1.0) / num_seqs).max(0.0);
        let next = next.min(bound);
        if (next - ell).abs() < 0.5 {
            ell = next;
            break;
        }
        // Damped update: the raw map oscillates when the adjustment is a
        // large fraction of the query length; averaging converges to the
        // same fixed point.
        ell = 0.5 * (ell + next);
    }
    ell.floor().max(0.0) as u64
}

/// The effective search space for one query against one database.
#[derive(Debug, Clone, Copy)]
pub struct SearchSpace {
    /// Statistical parameters in force (gapped or ungapped).
    pub params: KarlinParams,
    /// Effective query length (raw length minus length adjustment).
    pub eff_query_len: u64,
    /// Effective database length.
    pub eff_db_len: u64,
}

impl SearchSpace {
    /// Build the search space for a query of `query_len` residues against a
    /// database described by `db`, using `params`.
    pub fn new(params: KarlinParams, query_len: u64, db: DbStats) -> SearchSpace {
        let ell = length_adjustment(params, query_len, db.total_residues, db.num_sequences);
        let eff_query_len = query_len.saturating_sub(ell).max(1);
        let eff_db_len = db
            .total_residues
            .saturating_sub(ell.saturating_mul(db.num_sequences))
            .max(1);
        SearchSpace {
            params,
            eff_query_len,
            eff_db_len,
        }
    }

    /// The effective search space size `m'·n'`.
    #[inline]
    pub fn space(&self) -> f64 {
        self.eff_query_len as f64 * self.eff_db_len as f64
    }

    /// E-value of a raw alignment score.
    #[inline]
    pub fn evalue(&self, raw_score: i32) -> f64 {
        self.space() * self.params.k * (-self.params.lambda * raw_score as f64).exp()
    }

    /// Bit score of a raw alignment score.
    #[inline]
    pub fn bit_score(&self, raw_score: i32) -> f64 {
        self.params.bit_score(raw_score)
    }

    /// Smallest raw score whose E-value is at most `evalue`.
    pub fn cutoff_score(&self, evalue: f64) -> i32 {
        let e = evalue.max(1e-300);
        let s = ((self.space() * self.params.k / e).ln() / self.params.lambda).ceil();
        s.max(1.0) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karlin::{solve_ungapped, Background};
    use crate::matrix::ScoreMatrix;

    fn space() -> SearchSpace {
        let params = solve_ungapped(&ScoreMatrix::blosum62(), &Background::protein()).unwrap();
        SearchSpace::new(
            params,
            250,
            DbStats {
                num_sequences: 2_000_000,
                total_residues: 1_000_000_000,
            },
        )
    }

    #[test]
    fn evalue_decreases_with_score() {
        let sp = space();
        assert!(sp.evalue(50) > sp.evalue(60));
        assert!(sp.evalue(60) > sp.evalue(100));
    }

    #[test]
    fn cutoff_matches_evalue() {
        let sp = space();
        for target in [10.0, 1.0, 1e-3, 1e-10] {
            let cut = sp.cutoff_score(target);
            assert!(sp.evalue(cut) <= target, "target {target}");
            assert!(sp.evalue(cut - 1) > target, "target {target}");
        }
    }

    #[test]
    fn length_adjustment_shrinks_lengths() {
        let sp = space();
        assert!(sp.eff_query_len < 250);
        assert!(sp.eff_db_len < 1_000_000_000);
        assert!(sp.eff_query_len >= 1);
    }

    #[test]
    fn length_adjustment_handles_tiny_inputs() {
        let params = solve_ungapped(&ScoreMatrix::blosum62(), &Background::protein()).unwrap();
        assert_eq!(length_adjustment(params, 0, 1000, 10), 0);
        // Query of 3 residues: adjustment must not exceed query length.
        let ell = length_adjustment(params, 3, 1_000_000, 1000);
        assert!(ell <= 2, "ell = {ell}");
    }

    #[test]
    fn evalue_is_global_regardless_of_fragment() {
        // The same hit scored in a fragment-local space would look far more
        // significant; the API only exposes global spaces, so two workers
        // computing the same hit's E-value agree by construction.
        let params = solve_ungapped(&ScoreMatrix::blosum62(), &Background::protein()).unwrap();
        let global = DbStats {
            num_sequences: 1_000_000,
            total_residues: 500_000_000,
        };
        let a = SearchSpace::new(params, 300, global);
        let b = SearchSpace::new(params, 300, global);
        assert_eq!(a.evalue(80).to_bits(), b.evalue(80).to_bits());
    }

    #[test]
    fn db_stats_merge_adds() {
        let a = DbStats {
            num_sequences: 3,
            total_residues: 100,
        };
        let b = DbStats {
            num_sequences: 5,
            total_residues: 200,
        };
        let m = a.merge(b);
        assert_eq!(m.num_sequences, 8);
        assert_eq!(m.total_residues, 300);
    }

    #[test]
    fn bit_scores_are_monotonic() {
        let sp = space();
        assert!(sp.bit_score(100) > sp.bit_score(50));
    }
}
