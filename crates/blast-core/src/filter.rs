//! Low-complexity filtering.
//!
//! blastp masks low-complexity query regions by default (`-F T`) using SEG;
//! blastn uses DUST. We implement windowed-entropy variants of both: a
//! sliding window's Shannon entropy (in bits per residue) is compared to a
//! trigger threshold, triggered windows are extended while entropy stays
//! under a release threshold, and the merged regions are masked with the
//! molecule's ambiguity code. Masked residues never enter lookup words, so
//! they cannot seed alignments — the same effect SEG/DUST have in NCBI
//! BLAST.

use crate::alphabet::Molecule;

/// Parameters for the entropy filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterParams {
    /// Window length (SEG default 12; DUST uses larger windows).
    pub window: usize,
    /// Entropy (bits/residue) below which a window triggers masking.
    pub trigger: f64,
    /// Entropy below which a region keeps extending once triggered
    /// (must be >= trigger; SEG's locut/hicut pair).
    pub release: f64,
}

impl FilterParams {
    /// SEG-like defaults for protein queries (window 12, 2.2/2.5 bits).
    pub const SEG: FilterParams = FilterParams {
        window: 12,
        trigger: 2.2,
        release: 2.5,
    };

    /// DUST-like defaults for DNA queries.
    pub const DUST: FilterParams = FilterParams {
        window: 64,
        trigger: 1.5,
        release: 1.8,
    };

    /// Defaults for a molecule.
    pub fn for_molecule(molecule: Molecule) -> FilterParams {
        match molecule {
            Molecule::Protein => FilterParams::SEG,
            Molecule::Dna => FilterParams::DUST,
        }
    }
}

/// A maskable region, half-open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskRange {
    /// Start offset.
    pub start: u32,
    /// End offset (exclusive).
    pub end: u32,
}

/// Shannon entropy (bits per residue) of a residue count table.
fn entropy_bits(counts: &[u32], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

/// Find low-complexity regions of an encoded sequence.
pub fn find_low_complexity(
    seq: &[u8],
    alphabet_size: usize,
    params: FilterParams,
) -> Vec<MaskRange> {
    let w = params.window;
    if seq.len() < w || w == 0 {
        return Vec::new();
    }
    let mut counts = vec![0u32; alphabet_size];
    // Per-window entropies via a rolling count table.
    let mut low_windows: Vec<(u32, u32, bool)> = Vec::new(); // (start, end, triggered)
    for &c in &seq[..w] {
        counts[c as usize] += 1;
    }
    let n_windows = seq.len() - w + 1;
    for i in 0..n_windows {
        let h = entropy_bits(&counts, w);
        if h < params.release {
            low_windows.push((i as u32, (i + w) as u32, h < params.trigger));
        }
        if i + 1 < n_windows {
            counts[seq[i] as usize] -= 1;
            counts[seq[i + w] as usize] += 1;
        }
    }
    // Merge overlapping/adjacent low windows; a merged region is reported
    // only if at least one member window actually triggered.
    let mut out = Vec::new();
    let mut cur: Option<(u32, u32, bool)> = None;
    for (s, e, trig) in low_windows {
        match cur {
            Some((cs, ce, ct)) if s <= ce => cur = Some((cs, ce.max(e), ct || trig)),
            Some((cs, ce, ct)) => {
                if ct {
                    out.push(MaskRange { start: cs, end: ce });
                }
                cur = Some((s, e, trig));
            }
            None => cur = Some((s, e, trig)),
        }
    }
    if let Some((cs, ce, ct)) = cur {
        if ct {
            out.push(MaskRange { start: cs, end: ce });
        }
    }
    out
}

/// Mask low-complexity regions of `seq` in place with the molecule's
/// ambiguity code; returns the masked ranges.
pub fn mask_in_place(seq: &mut [u8], molecule: Molecule, params: FilterParams) -> Vec<MaskRange> {
    let ranges = find_low_complexity(seq, molecule.alphabet_size(), params);
    let fill = molecule.ambiguity_code();
    for r in &ranges {
        for c in &mut seq[r.start as usize..r.end as usize] {
            *c = fill;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{encode, Molecule, PROTEIN_X};

    fn enc(s: &[u8]) -> Vec<u8> {
        encode(Molecule::Protein, s).unwrap()
    }

    #[test]
    fn homopolymer_is_masked() {
        let mut seq = enc(b"MKVDERAAAAAAAAAAAAAAAAWGHKLMNPQRST");
        let ranges = mask_in_place(&mut seq, Molecule::Protein, FilterParams::SEG);
        assert_eq!(ranges.len(), 1);
        let r = ranges[0];
        // The poly-A run at 6..22 must be covered.
        assert!(r.start <= 6 && r.end >= 22, "range {r:?}");
        assert!(seq[8..20].iter().all(|&c| c == PROTEIN_X));
    }

    #[test]
    fn diverse_sequence_is_untouched() {
        let orig = enc(b"MKVDERWGHILNPQSTACFYMKDERWGHILNPQST");
        let mut seq = orig.clone();
        let ranges = mask_in_place(&mut seq, Molecule::Protein, FilterParams::SEG);
        assert!(ranges.is_empty());
        assert_eq!(seq, orig);
    }

    #[test]
    fn short_sequences_are_skipped() {
        let mut seq = enc(b"AAAA");
        assert!(mask_in_place(&mut seq, Molecule::Protein, FilterParams::SEG).is_empty());
    }

    #[test]
    fn two_separated_regions_report_separately() {
        let mut seq =
            enc(b"AAAAAAAAAAAAAAAAMKVDERWGHILNPQSTACFYWMKVDERWGHILNPQSTACFYWSSSSSSSSSSSSSSSS");
        let ranges = mask_in_place(&mut seq, Molecule::Protein, FilterParams::SEG);
        assert_eq!(ranges.len(), 2);
        assert!(ranges[0].end <= ranges[1].start);
    }

    #[test]
    fn entropy_of_uniform_window_is_log2() {
        let counts = [3u32, 3, 3, 3];
        let h = entropy_bits(&counts, 12);
        assert!((h - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dust_masks_dna_repeats() {
        let mut seq = Vec::new();
        // 80 bases of ATATAT... then diverse-ish tail.
        for i in 0..80 {
            seq.push(if i % 2 == 0 { 0u8 } else { 3u8 });
        }
        let tail = encode(
            Molecule::Dna,
            b"ACGTAGCTTGCAACGTAGGCTATCGGATCACGTAGCTTGCAACGTAGGCTATCGGATCAACGTAGCTTGCA",
        )
        .unwrap();
        seq.extend_from_slice(&tail);
        let ranges = mask_in_place(&mut seq, Molecule::Dna, FilterParams::DUST);
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].start == 0 && ranges[0].end >= 80);
    }

    #[test]
    fn trigger_vs_release_hysteresis() {
        // A window whose entropy sits between trigger and release extends a
        // region but cannot start one.
        let params = FilterParams {
            window: 4,
            trigger: 1.0,
            release: 1.6,
        };
        // "MKDE" has entropy 2.0 (4 distinct): untouched.
        let seq = enc(b"MKDEMKDE");
        assert!(find_low_complexity(&seq, 28, params).is_empty());
        // "AABB" entropy 1.0 triggers at <= trigger? 1.0 < 1.0 is false, so
        // AAAB (0.811) triggers while AABB (1.0) may only extend.
        let seq2 = enc(b"AAABAABB");
        let ranges = find_low_complexity(&seq2, 28, params);
        assert_eq!(ranges.len(), 1);
    }
}
