//! Scoring matrices.
//!
//! The canonical BLOSUM62 table (the blastp default, and the matrix the
//! paper's experiments use implicitly) is embedded in NCBI's text format and
//! parsed at first use; arbitrary matrices in the same format can be loaded
//! with [`ScoreMatrix::parse_ncbi`]. DNA matrices are generated from
//! match/mismatch rewards.

use crate::alphabet::{encode_letter, Molecule, DNA_ALPHABET_SIZE, PROTEIN_ALPHABET_SIZE};

/// Score assigned to any pairing involving a residue code the source matrix
/// does not cover (gap placeholder pairings, etc.).
pub const UNDEFINED_SCORE: i32 = -4;

/// Row stride of the padded score table. A power of two, strictly larger
/// than every alphabet, so [`ScoreMatrix::score`] can index with masked
/// coordinates — the compiler proves the index in bounds and the lookup
/// compiles to a single unchecked load. The extension DP inner loops call
/// `score` once per cell, so this is the kernel's hottest load.
const STRIDE: usize = 32;

/// A dense residue-pair scoring matrix over one molecule's full alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreMatrix {
    /// Human-readable name, e.g. `BLOSUM62`.
    pub name: String,
    /// Molecule the matrix scores.
    pub molecule: Molecule,
    size: usize,
    /// `STRIDE`-strided table; cells outside the `size × size` valid
    /// region hold [`UNDEFINED_SCORE`] and are never read via `score`.
    scores: Box<[i32; STRIDE * STRIDE]>,
}

fn empty_table() -> Box<[i32; STRIDE * STRIDE]> {
    Box::new([UNDEFINED_SCORE; STRIDE * STRIDE])
}

impl ScoreMatrix {
    /// Build a matrix from a full `size × size` score table.
    ///
    /// # Panics
    /// Panics if `scores.len() != size * size` or `size` does not match the
    /// molecule's alphabet size.
    pub fn from_table(
        name: impl Into<String>,
        molecule: Molecule,
        scores: Vec<i32>,
    ) -> ScoreMatrix {
        let size = molecule.alphabet_size();
        assert_eq!(
            scores.len(),
            size * size,
            "score table must cover the full alphabet"
        );
        let mut table = empty_table();
        for a in 0..size {
            table[a * STRIDE..a * STRIDE + size].copy_from_slice(&scores[a * size..(a + 1) * size]);
        }
        ScoreMatrix {
            name: name.into(),
            molecule,
            size,
            scores: table,
        }
    }

    /// Score for the encoded residue pair `(a, b)`.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        debug_assert!((a as usize) < self.size && (b as usize) < self.size);
        // The masks are no-ops for valid codes (every alphabet fits in
        // STRIDE) and let the compiler elide the bounds check entirely.
        self.scores[(a as usize & (STRIDE - 1)) * STRIDE + (b as usize & (STRIDE - 1))]
    }

    /// Row of scores for residue `a` against every residue.
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        let start = a as usize * STRIDE;
        &self.scores[start..start + self.size]
    }

    /// Alphabet size (row length).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Highest score anywhere in the matrix.
    pub fn max_score(&self) -> i32 {
        (0..self.size as u8)
            .flat_map(|a| self.row(a))
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Lowest score anywhere in the matrix.
    pub fn min_score(&self) -> i32 {
        (0..self.size as u8)
            .flat_map(|a| self.row(a))
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Whether `score(a, b) == score(b, a)` for all pairs.
    pub fn is_symmetric(&self) -> bool {
        (0..self.size as u8).all(|a| (0..a).all(|b| self.score(a, b) == self.score(b, a)))
    }

    /// Parse a matrix in NCBI text format: a `#`-comment header, a column
    /// line of residue letters, then one row per residue.
    ///
    /// Alphabet codes not covered by the file score [`UNDEFINED_SCORE`]
    /// against everything (except code pairs both covered).
    pub fn parse_ncbi(
        name: impl Into<String>,
        molecule: Molecule,
        text: &str,
    ) -> Result<ScoreMatrix, MatrixParseError> {
        let size = molecule.alphabet_size();
        let mut scores = empty_table();
        let mut columns: Option<Vec<u8>> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace();
            if columns.is_none() {
                // Header row: residue letters naming the columns.
                let mut cols = Vec::new();
                for tok in tokens {
                    let letter = single_letter(tok, lineno)?;
                    cols.push(code_for(molecule, letter, lineno)?);
                }
                if cols.is_empty() {
                    return Err(MatrixParseError::Malformed {
                        line: lineno + 1,
                        reason: "empty column header".into(),
                    });
                }
                columns = Some(cols);
                continue;
            }
            let cols = columns.as_ref().expect("set above");
            let row_letter = tokens.next().ok_or(MatrixParseError::Malformed {
                line: lineno + 1,
                reason: "missing row label".into(),
            })?;
            let row_code = code_for(molecule, single_letter(row_letter, lineno)?, lineno)?;
            for (i, tok) in tokens.enumerate() {
                let col_code = *cols.get(i).ok_or(MatrixParseError::Malformed {
                    line: lineno + 1,
                    reason: format!("row has more than {} entries", cols.len()),
                })?;
                let value: i32 = tok.parse().map_err(|_| MatrixParseError::Malformed {
                    line: lineno + 1,
                    reason: format!("bad score token {tok:?}"),
                })?;
                scores[row_code as usize * STRIDE + col_code as usize] = value;
            }
        }
        if columns.is_none() {
            return Err(MatrixParseError::Malformed {
                line: 0,
                reason: "no column header found".into(),
            });
        }
        Ok(ScoreMatrix {
            name: name.into(),
            molecule,
            size,
            scores,
        })
    }

    /// The canonical BLOSUM62 matrix over the protein alphabet.
    pub fn blosum62() -> ScoreMatrix {
        let mut m = ScoreMatrix::parse_ncbi("BLOSUM62", Molecule::Protein, BLOSUM62_TEXT)
            .expect("embedded BLOSUM62 must parse");
        m.extend_uncovered_protein_codes();
        m
    }

    /// A DNA matrix with `reward` on the diagonal and `penalty` elsewhere
    /// (the blastn model). Pairings involving `N` score `penalty.min(0)`.
    pub fn dna(reward: i32, penalty: i32) -> ScoreMatrix {
        assert!(reward > 0, "match reward must be positive");
        assert!(penalty < 0, "mismatch penalty must be negative");
        let size = DNA_ALPHABET_SIZE;
        let mut scores = empty_table();
        for a in 0..size {
            for b in 0..size {
                scores[a * STRIDE + b] = penalty;
            }
        }
        for base in 0..4usize {
            scores[base * STRIDE + base] = reward;
        }
        let n = crate::alphabet::DNA_N as usize;
        for other in 0..size {
            scores[n * STRIDE + other] = penalty;
            scores[other * STRIDE + n] = penalty;
        }
        ScoreMatrix {
            name: format!("DNA(+{reward}/{penalty})"),
            molecule: Molecule::Dna,
            size,
            scores,
        }
    }

    /// Map protein codes beyond the 24-letter BLOSUM coverage (`U`, `O`,
    /// `J`, gap) onto the `X` ambiguity row/column, as NCBI tools do.
    fn extend_uncovered_protein_codes(&mut self) {
        debug_assert_eq!(self.molecule, Molecule::Protein);
        let size = self.size;
        let x = crate::alphabet::PROTEIN_X as usize;
        for extra in 24..PROTEIN_ALPHABET_SIZE {
            for other in 0..size {
                self.scores[extra * STRIDE + other] = self.scores[x * STRIDE + other];
                self.scores[other * STRIDE + extra] = self.scores[other * STRIDE + x];
            }
            self.scores[extra * STRIDE + extra] = self.scores[x * STRIDE + x];
        }
        // Gap placeholder pairs stay strongly negative.
        let gap = size - 1;
        for other in 0..size {
            self.scores[gap * STRIDE + other] = UNDEFINED_SCORE;
            self.scores[other * STRIDE + gap] = UNDEFINED_SCORE;
        }
    }
}

fn single_letter(tok: &str, lineno: usize) -> Result<u8, MatrixParseError> {
    let bytes = tok.as_bytes();
    if bytes.len() != 1 {
        return Err(MatrixParseError::Malformed {
            line: lineno + 1,
            reason: format!("expected single residue letter, got {tok:?}"),
        });
    }
    Ok(bytes[0])
}

fn code_for(molecule: Molecule, letter: u8, lineno: usize) -> Result<u8, MatrixParseError> {
    encode_letter(molecule, letter).ok_or(MatrixParseError::Malformed {
        line: lineno + 1,
        reason: format!("letter {:?} not in alphabet", char::from(letter)),
    })
}

/// Error from [`ScoreMatrix::parse_ncbi`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixParseError {
    /// Structurally invalid matrix text.
    Malformed {
        /// 1-based line number (0 when the whole file is unusable).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for MatrixParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixParseError::Malformed { line, reason } => {
                write!(f, "malformed matrix at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for MatrixParseError {}

/// The NCBI BLOSUM62 matrix text (24 residues: 20 standard + B, Z, X, *).
pub const BLOSUM62_TEXT: &str = "\
#  Matrix made by matblas from blosum62.iij
#  BLOSUM Clustered Scoring Matrix in 1/2 Bit Units
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode;

    fn score_of(m: &ScoreMatrix, a: u8, b: u8) -> i32 {
        let ca = encode_letter(Molecule::Protein, a).unwrap();
        let cb = encode_letter(Molecule::Protein, b).unwrap();
        m.score(ca, cb)
    }

    #[test]
    fn blosum62_spot_values() {
        let m = ScoreMatrix::blosum62();
        assert_eq!(score_of(&m, b'A', b'A'), 4);
        assert_eq!(score_of(&m, b'W', b'W'), 11);
        assert_eq!(score_of(&m, b'W', b'C'), -2);
        assert_eq!(score_of(&m, b'E', b'Z'), 4);
        assert_eq!(score_of(&m, b'L', b'I'), 2);
        assert_eq!(score_of(&m, b'P', b'F'), -4);
        assert_eq!(score_of(&m, b'*', b'*'), 1);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(ScoreMatrix::blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_extremes() {
        let m = ScoreMatrix::blosum62();
        assert_eq!(m.max_score(), 11);
        assert_eq!(m.min_score(), -4);
    }

    #[test]
    fn extended_codes_score_like_x() {
        let m = ScoreMatrix::blosum62();
        let u = encode_letter(Molecule::Protein, b'U').unwrap();
        let x = crate::alphabet::PROTEIN_X;
        let a = encode_letter(Molecule::Protein, b'A').unwrap();
        assert_eq!(m.score(u, a), m.score(x, a));
        assert_eq!(m.score(a, u), m.score(a, x));
    }

    #[test]
    fn row_matches_score() {
        let m = ScoreMatrix::blosum62();
        let a = encode_letter(Molecule::Protein, b'R').unwrap();
        let row = m.row(a);
        for b in 0..m.size() as u8 {
            assert_eq!(row[b as usize], m.score(a, b));
        }
    }

    #[test]
    fn dna_matrix_scores() {
        let m = ScoreMatrix::dna(1, -3);
        let d = |x| encode_letter(Molecule::Dna, x).unwrap();
        assert_eq!(m.score(d(b'A'), d(b'A')), 1);
        assert_eq!(m.score(d(b'A'), d(b'C')), -3);
        assert_eq!(m.score(d(b'N'), d(b'N')), -3);
        assert!(m.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "match reward must be positive")]
    fn dna_rejects_bad_reward() {
        let _ = ScoreMatrix::dna(0, -3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ScoreMatrix::parse_ncbi("bad", Molecule::Protein, "# only comments\n").is_err());
        assert!(
            ScoreMatrix::parse_ncbi("bad", Molecule::Protein, "A R\nA 1 q\n").is_err(),
            "non-numeric score must fail"
        );
    }

    #[test]
    fn parse_partial_matrix_defaults_elsewhere() {
        let m =
            ScoreMatrix::parse_ncbi("tiny", Molecule::Protein, "  A R\nA 4 -1\nR -1 5\n").unwrap();
        assert_eq!(score_of(&m, b'A', b'A'), 4);
        assert_eq!(score_of(&m, b'A', b'N'), UNDEFINED_SCORE);
    }

    #[test]
    fn scoring_whole_sequences_is_consistent() {
        let m = ScoreMatrix::blosum62();
        let q = encode(Molecule::Protein, b"MKVLAA").unwrap();
        let identity: i32 = q.iter().map(|&c| m.score(c, c)).sum();
        assert!(identity > 0, "self-alignment must score positively");
    }
}
