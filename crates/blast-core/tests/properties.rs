//! Property-based tests of the BLAST kernel's core invariants.

use blast_core::alphabet::{decode, encode, Molecule};
use blast_core::extend::{banded_global, gapped_xdrop, ungapped_xdrop, EditOp};
use blast_core::hsp::{cull_contained, sort_canonical, Hsp};
use blast_core::karlin::{solve_from_distribution, ScoreDistribution};
use blast_core::lookup::{LookupTable, QuerySet};
use blast_core::matrix::ScoreMatrix;
use blast_core::search::{BlastSearcher, PreparedQueries, SearchParams, SearchScratch, VecSource};
use blast_core::seq::SeqRecord;
use blast_core::stats::{DbStats, SearchSpace};
use proptest::prelude::*;

/// Residues over the 20 standard amino acids.
fn arb_protein(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, len)
}

/// Score an alignment's edit script directly from the matrix and gaps.
fn rescore(
    matrix: &ScoreMatrix,
    gaps: blast_core::karlin::GapPenalties,
    q: &[u8],
    s: &[u8],
    ops: &[EditOp],
) -> i32 {
    let mut qi = 0usize;
    let mut si = 0usize;
    let mut score = 0i32;
    for op in ops {
        match *op {
            EditOp::Aligned(n) => {
                for _ in 0..n {
                    score += matrix.score(q[qi], s[si]);
                    qi += 1;
                    si += 1;
                }
            }
            EditOp::GapInSubject(n) => {
                score -= gaps.cost(n as i32);
                qi += n as usize;
            }
            EditOp::GapInQuery(n) => {
                score -= gaps.cost(n as i32);
                si += n as usize;
            }
        }
    }
    assert_eq!(qi, q.len());
    assert_eq!(si, s.len());
    score
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Residue encode/decode is the identity for valid letters.
    #[test]
    fn alphabet_round_trips(residues in arb_protein(0..200)) {
        let ascii = decode(Molecule::Protein, &residues);
        let back = encode(Molecule::Protein, &ascii).unwrap();
        prop_assert_eq!(back, residues);
    }

    /// The banded-Gotoh traceback's edit script re-scores to exactly the
    /// DP score it reports, and consumes both sequences exactly.
    #[test]
    fn traceback_score_is_consistent(
        q in arb_protein(1..60),
        s in arb_protein(1..60),
    ) {
        let matrix = ScoreMatrix::blosum62();
        let gaps = blast_core::karlin::GapPenalties::BLOSUM62_DEFAULT;
        let aln = banded_global(&matrix, gaps, &q, &s, 64);
        let rescored = rescore(&matrix, gaps, &q, &s, &aln.ops);
        prop_assert_eq!(rescored, aln.score);
    }

    /// Widening the band never lowers the banded-alignment score, and
    /// with a full-width band the alignment of a sequence against itself
    /// is the identity.
    #[test]
    fn band_widening_is_monotone(q in arb_protein(4..50)) {
        let matrix = ScoreMatrix::blosum62();
        let gaps = blast_core::karlin::GapPenalties::BLOSUM62_DEFAULT;
        let narrow = banded_global(&matrix, gaps, &q, &q, 2);
        let wide = banded_global(&matrix, gaps, &q, &q, q.len() + 2);
        prop_assert!(wide.score >= narrow.score);
        let self_score: i32 = q.iter().map(|&c| matrix.score(c, c)).sum();
        prop_assert_eq!(wide.score, self_score);
        prop_assert_eq!(wide.ops, vec![EditOp::Aligned(q.len() as u32)]);
    }

    /// An ungapped extension's reported range re-scores to its reported
    /// score, and the gapped extension from any seed inside it never
    /// scores lower than the seed pair itself.
    #[test]
    fn extension_scores_are_consistent(
        q in arb_protein(12..80),
        offset in 0usize..8,
    ) {
        let matrix = ScoreMatrix::blosum62();
        let gaps = blast_core::karlin::GapPenalties::BLOSUM62_DEFAULT;
        // Subject = query shifted (guaranteed strong diagonal).
        let s = q.clone();
        let pos = (q.len() / 2 + offset).min(q.len() - 3) as u32;
        let hit = ungapped_xdrop(&matrix, &q, &s, pos, pos, 3, 16);
        let mut rescored = 0i32;
        for k in hit.q_start..hit.q_end {
            rescored += matrix.score(q[k as usize], s[(k - hit.q_start + hit.s_start) as usize]);
        }
        prop_assert_eq!(rescored, hit.score);

        let g = gapped_xdrop(&matrix, gaps, &q, &s, pos, pos, 40, &mut Default::default());
        prop_assert!(g.score >= matrix.score(q[pos as usize], s[pos as usize]));
        prop_assert!(g.q_start <= pos && g.q_end > pos);
    }

    /// Culling never drops the best HSP of a (query, subject) pair and
    /// never invents new HSPs.
    #[test]
    fn culling_preserves_the_best(
        raw in prop::collection::vec(
            (0u32..3, 0u32..3, 0u32..40, 1u32..30, 0u32..40, 1u32..30, 1i32..200),
            1..30,
        )
    ) {
        let mut hsps: Vec<Hsp> = raw
            .into_iter()
            .map(|(query_idx, oid, qs, ql, ss, sl, score)| Hsp {
                query_idx,
                oid,
                q_start: qs,
                q_end: qs + ql,
                s_start: ss,
                s_end: ss + sl,
                score,
                bit_score: score as f64,
                evalue: (-(score as f64)).exp(),
            })
            .collect();
        let original = hsps.clone();
        cull_contained(&mut hsps);
        prop_assert!(!hsps.is_empty());
        // Every survivor was in the input.
        for h in &hsps {
            prop_assert!(original.contains(h));
        }
        // The global best survives.
        let mut sorted = original.clone();
        sort_canonical(&mut sorted);
        prop_assert!(hsps.contains(&sorted[0]));
    }

    /// E-values decrease monotonically in score and increase with the
    /// search space, for any query/database sizes.
    #[test]
    fn evalue_monotonicity(
        qlen in 10u64..5000,
        db_res in 1000u64..10_000_000,
        nseq in 1u64..10_000,
        score in 20i32..300,
    ) {
        let params = SearchParams::blastp();
        let space = SearchSpace::new(
            params.gapped,
            qlen,
            DbStats { num_sequences: nseq, total_residues: db_res },
        );
        prop_assert!(space.evalue(score + 1) < space.evalue(score));
        let bigger = SearchSpace::new(
            params.gapped,
            qlen,
            DbStats { num_sequences: nseq, total_residues: db_res * 2 + 1 },
        );
        // Database growth raises E-values — except in the clamped
        // length-adjustment regime (queries barely longer than the
        // adjustment), where the effective query length collapses and the
        // product can move either way (NCBI behaves the same); restrict
        // the claim to the meaningful regime.
        // Also require the effective database length to be meaningful
        // (at least one residue per sequence): databases whose average
        // sequence length falls below the adjustment clamp to the floor.
        if space.eff_query_len >= 10
            && bigger.eff_query_len >= 10
            && space.eff_db_len > nseq
            && bigger.eff_db_len > nseq
        {
            prop_assert!(bigger.evalue(score) >= space.evalue(score));
        }
    }

    /// The Karlin–Altschul solver produces sane parameters for arbitrary
    /// valid (negative-mean, positive-max) score distributions.
    #[test]
    fn karlin_solver_is_sane(
        weights in prop::collection::vec(1u32..100, 5..9),
    ) {
        // Scores -4..=+N with random weights; force negative mean by
        // overweighting the most negative score.
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        prob[0] += 50.0 * prob.iter().sum::<f64>();
        let total: f64 = prob.iter().sum();
        for p in &mut prob {
            *p /= total;
        }
        let dist = ScoreDistribution { low: -4, high: -4 + n as i32 - 1, prob };
        if dist.high <= 0 || dist.mean() >= 0.0 {
            return Ok(()); // not a valid local-alignment regime
        }
        let params = solve_from_distribution(&dist).unwrap();
        prop_assert!(params.lambda > 0.0 && params.lambda.is_finite());
        prop_assert!(params.k > 0.0 && params.k < 1.0, "K = {}", params.k);
        prop_assert!(params.h > 0.0);
    }

    /// Lookup-table hits equal brute-force neighborhood checks for random
    /// short queries.
    #[test]
    fn lookup_matches_brute_force(q in arb_protein(3..12)) {
        let matrix = ScoreMatrix::blosum62();
        let set = QuerySet::new(std::slice::from_ref(&q), 27);
        let t = 11;
        let table = LookupTable::build(&set, &matrix, 3, 20, t);
        for w0 in 0..20u8 {
            for w1 in 0..20u8 {
                for w2 in 0..20u8 {
                    let idx = table.word_index(&[w0, w1, w2]).unwrap();
                    let hits = table.hits(idx);
                    for pos in 0..=(q.len().saturating_sub(3)) {
                        let score = matrix.score(q[pos], w0)
                            + matrix.score(q[pos + 1], w1)
                            + matrix.score(q[pos + 2], w2);
                        prop_assert_eq!(
                            hits.contains(&(pos as u32)),
                            score >= t,
                            "word {:?} at {}", (w0, w1, w2), pos
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Splitting a random database into any two partitions yields exactly
    /// the whole-database hit set (the invariant all of pioBLAST rests on).
    #[test]
    fn partitioned_search_equals_whole(
        seed_lens in prop::collection::vec(30usize..90, 4..10),
        split in 1usize..3,
    ) {
        // Build subjects: one family related to the query + noise.
        let mut records = Vec::new();
        let base: Vec<u8> = (0..60).map(|i| ((i * 7 + 3) % 20) as u8).collect();
        for (i, len) in seed_lens.iter().enumerate() {
            let residues: Vec<u8> = if i % 2 == 0 {
                base.iter().take(*len).map(|&c| (c + (i as u8 % 3)) % 20).collect()
            } else {
                (0..*len).map(|j| ((i * 13 + j * 5) % 20) as u8).collect()
            };
            records.push(SeqRecord {
                defline: format!("s{i}"),
                residues,
                molecule: Molecule::Protein,
            });
        }
        let db = DbStats {
            num_sequences: records.len() as u64,
            total_residues: records.iter().map(|r| r.len() as u64).sum(),
        };
        let params = SearchParams::blastp();
        let queries = vec![SeqRecord {
            defline: "q".into(),
            residues: base.clone(),
            molecule: Molecule::Protein,
        }];
        let prepared = PreparedQueries::prepare(&params, queries, db);
        let searcher = BlastSearcher::new(&params, &prepared);

        let whole = searcher.search(&VecSource::from_records(&records), &mut SearchScratch::new());

        let cut = split.min(records.len() - 1);
        let all: Vec<(u32, Vec<u8>, Vec<u8>)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r.residues.clone(), r.defline.clone().into_bytes()))
            .collect();
        let ra = searcher.search(&VecSource::with_oids(all[..cut].to_vec()), &mut SearchScratch::new());
        let rb = searcher.search(&VecSource::with_oids(all[cut..].to_vec()), &mut SearchScratch::new());
        let mut merged: Vec<_> = ra.per_query[0]
            .iter()
            .chain(rb.per_query[0].iter())
            .cloned()
            .collect();
        merged.sort_by(|a, b| a.hsps[0].rank_key().cmp(&b.hsps[0].rank_key()));
        prop_assert_eq!(merged, whole.per_query[0].clone());
    }

    /// One `SearchScratch` reused across many searches — different queries,
    /// different subjects, arbitrarily dirty state from the previous call —
    /// yields results identical to a fresh scratch per call. This is the
    /// contract that lets a worker own a single scratch for its lifetime.
    #[test]
    fn scratch_reuse_is_invisible(
        workloads in prop::collection::vec(
            (
                prop::collection::vec(20usize..70, 1..3), // query lengths
                prop::collection::vec(25usize..90, 1..6), // subject lengths
                0usize..5,                                // mutation phase
            ),
            2..5,
        ),
    ) {
        let params = SearchParams::blastp();
        let mut reused = SearchScratch::new();
        let base: Vec<u8> = (0..70).map(|i| ((i * 7 + 3) % 20) as u8).collect();

        for (qlens, slens, phase) in workloads {
            let queries: Vec<SeqRecord> = qlens
                .iter()
                .enumerate()
                .map(|(i, &len)| SeqRecord {
                    defline: format!("q{i}"),
                    residues: base
                        .iter()
                        .take(len)
                        .map(|&c| (c + (i + phase) as u8) % 20)
                        .collect(),
                    molecule: Molecule::Protein,
                })
                .collect();
            let records: Vec<SeqRecord> = slens
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let residues: Vec<u8> = if i % 2 == 0 {
                        base.iter().take(len).map(|&c| (c + (i as u8 % 3)) % 20).collect()
                    } else {
                        (0..len).map(|j| ((i * 13 + j * 5 + phase) % 20) as u8).collect()
                    };
                    SeqRecord {
                        defline: format!("s{i}"),
                        residues,
                        molecule: Molecule::Protein,
                    }
                })
                .collect();
            let db = DbStats {
                num_sequences: records.len() as u64,
                total_residues: records.iter().map(|r| r.len() as u64).sum(),
            };
            let prepared = PreparedQueries::prepare(&params, queries, db);
            let searcher = BlastSearcher::new(&params, &prepared);
            let source = VecSource::from_records(&records);

            let with_reused = searcher.search(&source, &mut reused);
            let with_fresh = searcher.search(&source, &mut SearchScratch::new());
            prop_assert_eq!(with_reused.per_query, with_fresh.per_query);
            prop_assert_eq!(with_reused.stats, with_fresh.stats);
        }
    }
}
