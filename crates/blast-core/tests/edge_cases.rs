//! Edge-case tests of the search kernel: degenerate queries, masked
//! inputs, ambiguity codes, and extreme sizes must never panic and must
//! behave sensibly.

use blast_core::alphabet::Molecule;
use blast_core::fasta;
use blast_core::search::{BlastSearcher, PreparedQueries, SearchParams, SearchScratch, VecSource};
use blast_core::seq::SeqRecord;
use blast_core::stats::DbStats;

fn stats_for(records: &[SeqRecord]) -> DbStats {
    DbStats {
        num_sequences: records.len() as u64,
        total_residues: records.iter().map(|r| r.len() as u64).sum(),
    }
}

fn run(queries: Vec<SeqRecord>, db: &[SeqRecord]) -> blast_core::search::FragmentResult {
    let params = SearchParams::blastp();
    let prepared = PreparedQueries::prepare(&params, queries, stats_for(db));
    BlastSearcher::new(&params, &prepared)
        .search(&VecSource::from_records(db), &mut SearchScratch::new())
}

fn rec(defline: &str, seq: &[u8]) -> SeqRecord {
    SeqRecord::from_ascii(Molecule::Protein, defline, seq).unwrap()
}

#[test]
fn fully_masked_low_complexity_query_finds_nothing() {
    // A poly-A query is entirely masked by SEG; it must produce no seeds
    // and no hits, even against a database containing poly-A.
    let db = vec![rec("polyA", b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")];
    let result = run(vec![rec("q", b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")], &db);
    assert_eq!(result.stats.seed_hits, 0);
    assert!(result.per_query[0].is_empty());
}

#[test]
fn query_with_ambiguity_codes_works() {
    let db = vec![rec("s", b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM")];
    // X and U inside the query: words containing them are skipped, the
    // rest still seed.
    let result = run(
        vec![rec("q", b"MKVLAAGHWRXEYFNDCQWHURTYPLKIHGFDSAEWCVNM")],
        &db,
    );
    assert_eq!(result.per_query[0].len(), 1);
}

#[test]
fn query_shorter_than_word_length_is_harmless() {
    let db = vec![rec("s", b"MKVLAAGHWRTEYFNDCQWH")];
    let result = run(vec![rec("q", b"MK")], &db);
    assert!(result.per_query[0].is_empty());
    assert_eq!(result.stats.seed_hits, 0);
}

#[test]
fn empty_database_is_harmless() {
    let result = run(vec![rec("q", b"MKVLAAGHWRTEYFNDCQWH")], &[]);
    assert!(result.per_query[0].is_empty());
    assert_eq!(result.stats.subjects, 0);
}

#[test]
fn stop_codons_in_subject_do_not_crash() {
    let db = vec![rec("s", b"MKVLAAGHWR*EYFNDCQWHERTYPLKIHGFDSAEWCVNM")];
    let result = run(
        vec![rec("q", b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM")],
        &db,
    );
    // Alignment still forms around/through the stop codon.
    assert_eq!(result.per_query[0].len(), 1);
}

#[test]
fn long_sequences_align_end_to_end() {
    // 12 kilo-residue identical pair: the gapped extension and traceback
    // must handle it without quadratic blowup or overflow.
    let unit = b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM";
    let mut long = Vec::new();
    for _ in 0..300 {
        long.extend_from_slice(unit);
    }
    let db = vec![rec("giant", &long)];
    let result = run(vec![rec("q", &long)], &db);
    let hits = &result.per_query[0];
    assert_eq!(hits.len(), 1);
    let h = &hits[0].hsps[0];
    assert_eq!(h.q_end - h.q_start, long.len() as u32, "full-length HSP");
    assert!(h.evalue < 1e-100);
}

#[test]
fn identical_duplicate_subjects_are_all_reported() {
    let seq = b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM";
    let db = vec![rec("dup1", seq), rec("dup2", seq), rec("dup3", seq)];
    let result = run(vec![rec("q", seq)], &db);
    let oids: Vec<u32> = result.per_query[0].iter().map(|h| h.oid).collect();
    assert_eq!(oids.len(), 3);
    // Deterministic order: equal scores fall back to oid order.
    assert_eq!(oids, vec![0, 1, 2]);
}

#[test]
fn many_queries_against_many_subjects() {
    // 64 queries x 50 subjects without pathological blowup.
    let unit = b"MKVLAAGHWRTEYFNDCQWHERTYPLKIHGFDSAEWCVNM";
    let db: Vec<SeqRecord> = (0..50)
        .map(|i| {
            let mut s = unit.to_vec();
            s.rotate_left(i % unit.len());
            rec(&format!("s{i}"), &s)
        })
        .collect();
    let queries: Vec<SeqRecord> = (0..64)
        .map(|i| {
            let mut q = unit.to_vec();
            q.rotate_left((i * 3) % unit.len());
            rec(&format!("q{i}"), &q)
        })
        .collect();
    let result = run(queries, &db);
    assert_eq!(result.per_query.len(), 64);
    for hits in &result.per_query {
        assert!(!hits.is_empty(), "every rotated query matches something");
    }
}

#[test]
fn fasta_defline_unicode_is_tolerated() {
    let recs = fasta::parse(
        Molecule::Protein,
        ">q1 β-globin [Homo sapiens] — test\nMKVLAAGH\n".as_bytes(),
    )
    .unwrap();
    assert!(recs[0].defline.contains("β-globin"));
    let db = vec![rec("s", b"MKVLAAGHWRTEYFNDCQWH")];
    let result = run(recs, &db);
    assert_eq!(result.per_query.len(), 1);
}
