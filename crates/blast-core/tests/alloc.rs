//! Proof that the kernel's steady-state per-subject path is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warmup pass grows every scratch buffer to its high-water mark, scanning
//! more subjects through the same [`SearchScratch`] must not allocate at
//! all — the per-call cost is one constant allocation (the per-query
//! result vector), independent of how many subjects are scanned.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use blast_core::alphabet::Molecule;
use blast_core::search::{BlastSearcher, PreparedQueries, SearchParams, SearchScratch, VecSource};
use blast_core::seq::SeqRecord;
use blast_core::stats::DbStats;

/// Counts alloc/realloc calls on the current thread. The counter is a
/// const-initialized thread-local so reading it never allocates or takes
/// a lock; other harness threads don't perturb the measurement.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Deterministic pseudo-random protein residues: enough neighborhood-word
/// seed hits to drive ungapped (and occasional gapped) extensions, but no
/// alignment strong enough to pass a stringent E-value cutoff.
fn noise(seed: usize, len: usize) -> Vec<u8> {
    let mut state = (seed as u64) * 2 + 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 20) as u8
        })
        .collect()
}

#[test]
fn steady_state_subject_scan_is_allocation_free() {
    // Stringent cutoff: seeds fire and extensions run, but nothing is
    // retained, so the only allocation a search call may make is the
    // per-query output vector itself.
    let mut params = SearchParams::blastp();
    params.expect = 1e-6;

    let subjects: Vec<SeqRecord> = (0..16)
        .map(|i| SeqRecord {
            defline: format!("s{i}"),
            residues: noise(i, 60 + (i % 7) * 11),
            molecule: Molecule::Protein,
        })
        .collect();
    let db = DbStats {
        num_sequences: subjects.len() as u64,
        total_residues: subjects.iter().map(|r| r.len() as u64).sum(),
    };
    let queries = vec![SeqRecord {
        defline: "q".into(),
        residues: noise(97, 80),
        molecule: Molecule::Protein,
    }];
    let prepared = PreparedQueries::prepare(&params, queries, db);
    let searcher = BlastSearcher::new(&params, &prepared);

    let small = VecSource::from_records(&subjects);
    let tripled: Vec<SeqRecord> = (0..3).flat_map(|_| subjects.iter().cloned()).collect();
    let large = VecSource::from_records(&tripled);

    let mut scratch = SearchScratch::new();

    // Warmup: grow every buffer to its high-water mark.
    let warm = searcher.search(&large, &mut scratch);
    assert!(warm.stats.seed_hits > 0, "workload must exercise seeding");
    assert!(
        warm.stats.ungapped_extensions > 0,
        "workload must exercise extension"
    );
    assert_eq!(warm.per_query[0].len(), 0, "cutoff must reject everything");

    let before_small = allocs();
    let r_small = searcher.search(&small, &mut scratch);
    let cost_small = allocs() - before_small;

    let before_large = allocs();
    let r_large = searcher.search(&large, &mut scratch);
    let cost_large = allocs() - before_large;

    // Keep results alive across the measurement so their drops (frees,
    // not allocations) cannot be reordered into the window.
    assert_eq!(r_small.stats.subjects, 16);
    assert_eq!(r_large.stats.subjects, 48);

    // Per-subject path: zero allocations. Tripling the subjects scanned
    // must not change the per-call cost at all.
    assert_eq!(
        cost_small, cost_large,
        "allocation count must be independent of subjects scanned"
    );
    // Per-call constant: just the per-query output vector.
    assert!(
        cost_small <= 1,
        "expected at most the per-query result vector, got {cost_small} allocations"
    );
}

#[test]
fn sharded_scan_with_per_slot_scratches_stays_allocation_free() {
    // The intra-rank threaded path: each slot scans its subject range
    // through its *own* scratch (no aliasing between slots), then the
    // shards merge deterministically through slot 0's scratch. After
    // warmup, the whole shard-and-merge cycle must cost a constant
    // number of allocations — independent of how many subjects each
    // shard scans — and must reproduce the serial kernel's results.
    let mut params = SearchParams::blastp();
    params.expect = 1e-6;

    let subjects: Vec<SeqRecord> = (0..16)
        .map(|i| SeqRecord {
            defline: format!("s{i}"),
            residues: noise(i, 60 + (i % 7) * 11),
            molecule: Molecule::Protein,
        })
        .collect();
    let db = DbStats {
        num_sequences: subjects.len() as u64,
        total_residues: subjects.iter().map(|r| r.len() as u64).sum(),
    };
    let queries = vec![SeqRecord {
        defline: "q".into(),
        residues: noise(97, 80),
        molecule: Molecule::Protein,
    }];
    let prepared = PreparedQueries::prepare(&params, queries, db);
    let searcher = BlastSearcher::new(&params, &prepared);

    let small = VecSource::from_records(&subjects);
    let tripled: Vec<SeqRecord> = (0..3).flat_map(|_| subjects.iter().cloned()).collect();
    let large = VecSource::from_records(&tripled);

    const NSHARDS: usize = 4;
    let mut scratches: Vec<SearchScratch> = (0..NSHARDS).map(|_| SearchScratch::new()).collect();

    fn cycle(
        searcher: &BlastSearcher,
        source: &VecSource,
        n: usize,
        scratches: &mut [SearchScratch],
    ) -> blast_core::search::FragmentResult {
        let per = n.div_ceil(NSHARDS);
        let parts: Vec<_> = (0..NSHARDS)
            .map(|i| {
                let lo = (i * per).min(n);
                let hi = ((i + 1) * per).min(n);
                searcher.search_subject_range(source, lo..hi, &mut scratches[i])
            })
            .collect();
        let (head, tail) = scratches.split_first_mut().unwrap();
        let _ = tail;
        searcher.merge_sharded(parts, head)
    }

    // Warmup: grow every slot's buffers to their high-water marks.
    let warm = cycle(&searcher, &large, tripled.len(), &mut scratches);
    assert!(warm.stats.seed_hits > 0, "workload must exercise seeding");

    let before_small = allocs();
    let r_small = cycle(&searcher, &small, subjects.len(), &mut scratches);
    let cost_small = allocs() - before_small;

    let before_large = allocs();
    let r_large = cycle(&searcher, &large, tripled.len(), &mut scratches);
    let cost_large = allocs() - before_large;

    assert_eq!(r_small.stats.subjects, 16);
    assert_eq!(r_large.stats.subjects, 48);

    // Per-subject path across all slots: zero allocations. Tripling the
    // subjects per shard must not change the cycle's constant cost (the
    // shard-result vector and the per-shard/merged output vectors).
    assert_eq!(
        cost_small, cost_large,
        "sharded allocation count must be independent of subjects scanned"
    );
    assert!(
        cost_small <= 2 + 2 * NSHARDS as u64,
        "expected only the shard/result vectors, got {cost_small} allocations"
    );

    // Aliasing check: per-slot scratches and the merge reproduce the
    // serial kernel exactly.
    let mut serial = SearchScratch::new();
    let reference = searcher.search(&small, &mut serial);
    assert_eq!(r_small.per_query, reference.per_query);
    assert_eq!(r_small.stats, reference.stats);
}

#[test]
fn retained_hits_allocate_only_per_hit_output() {
    // With hits retained, the steady state allocates only the output the
    // caller keeps: repeating the identical search through a warmed
    // scratch costs the identical number of allocations every time.
    let params = SearchParams::blastp();
    let family: Vec<u8> = noise(5, 70);
    let subjects: Vec<SeqRecord> = (0..8)
        .map(|i| {
            let residues = if i % 2 == 0 {
                family.iter().map(|&c| (c + (i as u8 % 3)) % 20).collect()
            } else {
                noise(i + 40, 66)
            };
            SeqRecord {
                defline: format!("s{i}"),
                residues,
                molecule: Molecule::Protein,
            }
        })
        .collect();
    let db = DbStats {
        num_sequences: subjects.len() as u64,
        total_residues: subjects.iter().map(|r| r.len() as u64).sum(),
    };
    let queries = vec![SeqRecord {
        defline: "q".into(),
        residues: family,
        molecule: Molecule::Protein,
    }];
    let prepared = PreparedQueries::prepare(&params, queries, db);
    let searcher = BlastSearcher::new(&params, &prepared);
    let source = VecSource::from_records(&subjects);

    let mut scratch = SearchScratch::new();
    let warm = searcher.search(&source, &mut scratch);
    assert!(!warm.per_query[0].is_empty(), "workload must retain hits");

    let before_a = allocs();
    let ra = searcher.search(&source, &mut scratch);
    let cost_a = allocs() - before_a;

    let before_b = allocs();
    let rb = searcher.search(&source, &mut scratch);
    let cost_b = allocs() - before_b;

    assert_eq!(ra.per_query, rb.per_query);
    assert_eq!(
        cost_a, cost_b,
        "steady-state allocation cost must be exactly reproducible"
    );
}
