//! The event model: lanes, kinds, argument values.

use std::borrow::Cow;
use std::fmt;

/// A subsystem timeline. Each rank's trace is split into lanes, which
/// the Chrome exporter renders as one "thread" per lane inside the
/// rank's "process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Normalized per-rank phase timeline (copy/input/search/output/other).
    Phase,
    /// Per-fragment BLAST search spans from the driver.
    Search,
    /// File-system and I/O-plane request spans.
    Io,
    /// Point-to-point and collective communication.
    Net,
    /// Master/worker protocol events (grants, submissions, epochs).
    Runtime,
    /// Failure detection: liveness sweeps, timeouts, backoff.
    Sched,
    /// Engine-level process lifecycle: spawn, block, wake, kill, finish.
    Engine,
}

impl Lane {
    /// Every lane, in display order.
    pub const ALL: [Lane; 7] = [
        Lane::Phase,
        Lane::Search,
        Lane::Io,
        Lane::Net,
        Lane::Runtime,
        Lane::Sched,
        Lane::Engine,
    ];

    /// Stable lowercase label, used for `--trace-filter` and as the
    /// exported thread name.
    pub fn label(&self) -> &'static str {
        match self {
            Lane::Phase => "phase",
            Lane::Search => "search",
            Lane::Io => "io",
            Lane::Net => "net",
            Lane::Runtime => "runtime",
            Lane::Sched => "sched",
            Lane::Engine => "engine",
        }
    }

    /// The Chrome `tid` this lane exports as (1-based, display order).
    pub fn tid(&self) -> u64 {
        match self {
            Lane::Phase => 1,
            Lane::Search => 2,
            Lane::Io => 3,
            Lane::Net => 4,
            Lane::Runtime => 5,
            Lane::Sched => 6,
            Lane::Engine => 7,
        }
    }

    /// Parse a [`Lane::label`] back into a lane.
    pub fn parse(s: &str) -> Option<Lane> {
        Lane::ALL.into_iter().find(|l| l.label() == s)
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens at `t`.
    Begin,
    /// The most recently opened span on this rank+lane closes at `t`.
    End,
    /// A point event.
    Instant,
    /// A cumulative counter sample (the registry value at `t`).
    Counter(u64),
}

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgVal {
    /// An unsigned integer.
    U64(u64),
    /// A short string (strategy name, phase label, ...).
    Str(Cow<'static, str>),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> ArgVal {
        ArgVal::U64(v)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> ArgVal {
        ArgVal::U64(v as u64)
    }
}

impl From<&'static str> for ArgVal {
    fn from(v: &'static str) -> ArgVal {
        ArgVal::Str(Cow::Borrowed(v))
    }
}

impl From<String> for ArgVal {
    fn from(v: String) -> ArgVal {
        ArgVal::Str(Cow::Owned(v))
    }
}

/// One trace record: a span boundary, instant, or counter sample on a
/// rank's lane, stamped with the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time in nanoseconds since simulation start.
    pub t: u64,
    /// The rank whose timeline this event belongs to.
    pub rank: usize,
    /// Per-rank record sequence number (merge tiebreaker; also the
    /// recording order for retroactive spans).
    pub seq: u64,
    /// The subsystem lane.
    pub lane: Lane,
    /// Span boundary, instant, or counter sample.
    pub kind: EventKind,
    /// Event name ("grant", "read", "search", a phase label, ...).
    pub name: Cow<'static, str>,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgVal)>,
}
