//! Chrome `trace_event` JSON export, loadable in Perfetto / `chrome://tracing`.
//!
//! Layout: one trace "process" per simulated rank (`pid` = rank), one
//! "thread" per subsystem [`Lane`] (`tid` = [`Lane::tid`]), with
//! `process_name` / `thread_name` metadata so the viewer labels them.
//! Timestamps are virtual microseconds with nanosecond precision
//! (three decimals).
//!
//! The [`Lane::Phase`] lane is exported from the analyzer's *flat*
//! per-rank timeline rather than the raw retroactive charges, so the
//! viewer shows each rank doing exactly one phase at a time and the
//! lane's spans tile `[0, wall]` exactly. All other lanes export their
//! raw events, sanitized so begin/end pairs always balance (stray ends
//! are dropped; spans left open by a killed rank are closed at the
//! wall clock).
//!
//! The output is deliberately line-oriented — one event object per
//! line, fixed field order — so the [`crate::check`] validator and the
//! determinism tests can treat it as a stable byte stream.

use std::fmt::Write as _;

use crate::analyze;
use crate::event::{ArgVal, EventKind, Lane};
use crate::sink::Trace;

fn esc(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_ts(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_args(args: &[(&'static str, ArgVal)], out: &mut String) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        match v {
            ArgVal::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgVal::Str(s) => {
                out.push('"');
                esc(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn event_line(
    name: &str,
    ph: char,
    pid: usize,
    tid: u64,
    ts_ns: u64,
    args: &[(&'static str, ArgVal)],
    instant: bool,
    out: &mut Vec<String>,
) {
    let mut line = String::new();
    line.push_str("{\"name\":\"");
    esc(name, &mut line);
    let _ = write!(
        line,
        "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
    );
    push_ts(ts_ns, &mut line);
    if instant {
        line.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        push_args(args, &mut line);
    }
    line.push('}');
    out.push(line);
}

fn meta_line(kind: &str, pid: usize, tid: u64, label: &str, out: &mut Vec<String>) {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    );
    esc(label, &mut line);
    line.push_str("\"}}");
    out.push(line);
}

/// Serialize `trace` as Chrome `trace_event` JSON. `filter` restricts
/// the export to the given lanes (`None` = everything).
pub fn export_chrome(trace: &Trace, filter: Option<&[Lane]>) -> String {
    let included = |lane: Lane| filter.is_none_or(|f| f.contains(&lane));
    let mut lines: Vec<String> = Vec::new();

    for rank in 0..trace.nranks {
        meta_line("process_name", rank, 0, &format!("rank {rank}"), &mut lines);
        for lane in Lane::ALL {
            if included(lane) {
                meta_line("thread_name", rank, lane.tid(), lane.label(), &mut lines);
            }
        }
    }

    // Phase lane: the normalized flat timeline, tiling [0, wall].
    if included(Lane::Phase) {
        for rank in 0..trace.nranks {
            for seg in analyze::rank_phase_timeline(trace, rank) {
                event_line(
                    &seg.phase,
                    'B',
                    rank,
                    Lane::Phase.tid(),
                    seg.start,
                    &[],
                    false,
                    &mut lines,
                );
                event_line(
                    &seg.phase,
                    'E',
                    rank,
                    Lane::Phase.tid(),
                    seg.end,
                    &[],
                    false,
                    &mut lines,
                );
            }
        }
    }

    // All other lanes: raw events in merged order, with begin/end
    // sanitized per (rank, lane). The stack remembers begin names so
    // end events display matching names in the viewer.
    let mut stacks: Vec<Vec<Vec<String>>> =
        vec![Lane::ALL.map(|_| Vec::new()).to_vec(); trace.nranks];
    let lane_idx = |lane: Lane| Lane::ALL.iter().position(|l| *l == lane).unwrap();
    for e in &trace.events {
        if e.lane == Lane::Phase || !included(e.lane) {
            continue;
        }
        let tid = e.lane.tid();
        match e.kind {
            EventKind::Begin => {
                stacks[e.rank][lane_idx(e.lane)].push(e.name.to_string());
                event_line(&e.name, 'B', e.rank, tid, e.t, &e.args, false, &mut lines);
            }
            EventKind::End => {
                if let Some(name) = stacks[e.rank][lane_idx(e.lane)].pop() {
                    event_line(&name, 'E', e.rank, tid, e.t, &e.args, false, &mut lines);
                }
            }
            EventKind::Instant => {
                event_line(&e.name, 'i', e.rank, tid, e.t, &e.args, true, &mut lines);
            }
            EventKind::Counter(v) => {
                event_line(
                    &e.name,
                    'C',
                    e.rank,
                    tid,
                    e.t,
                    &[("value", ArgVal::U64(v))],
                    false,
                    &mut lines,
                );
            }
        }
    }
    // Close anything a killed rank left open.
    for (rank, lanes) in stacks.iter_mut().enumerate() {
        for (li, stack) in lanes.iter_mut().enumerate() {
            while let Some(name) = stack.pop() {
                event_line(
                    &name,
                    'E',
                    rank,
                    Lane::ALL[li].tid(),
                    trace.wall,
                    &[],
                    false,
                    &mut lines,
                );
            }
        }
    }

    let mut out = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Tracer;

    #[test]
    fn export_is_balanced_and_labelled() {
        let tracer = Tracer::new(2);
        tracer.record(
            0,
            0,
            Lane::Phase,
            EventKind::Begin,
            "search".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            80,
            Lane::Phase,
            EventKind::End,
            "search".into(),
            Vec::new(),
        );
        tracer.record(
            1,
            10,
            Lane::Io,
            EventKind::Begin,
            "read".into(),
            vec![("bytes", ArgVal::U64(4096))],
        );
        tracer.record(1, 30, Lane::Io, EventKind::End, "".into(), Vec::new());
        tracer.record(
            1,
            40,
            Lane::Runtime,
            EventKind::Instant,
            "grant".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            50,
            Lane::Io,
            EventKind::Counter(7),
            "io.reqs".into(),
            Vec::new(),
        );
        // A span the rank never closed: must be closed at the wall.
        tracer.record(
            1,
            60,
            Lane::Net,
            EventKind::Begin,
            "recv".into(),
            Vec::new(),
        );
        let trace = tracer.finish(100);
        let json = export_chrome(&trace, None);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"rank 1\""));
        assert!(json.contains("\"thread_name\""));
        // The io span keeps its name on both ends.
        assert_eq!(json.matches("\"name\":\"read\"").count(), 2);
        // The unclosed net recv is closed at the 100 ns wall = 0.100 us.
        assert!(json.contains("{\"name\":\"recv\",\"ph\":\"E\",\"pid\":1,\"tid\":4,\"ts\":0.100}"));
        // Counter exports as a "C" sample.
        assert!(json.contains("\"ph\":\"C\""));
        // Phase lane tiles [0, wall]: search then trailing other.
        assert!(
            json.contains("{\"name\":\"search\",\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":0.000}")
        );
        assert!(json.contains("{\"name\":\"other\",\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":0.100}"));
    }

    #[test]
    fn filter_restricts_lanes() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            1,
            Lane::Io,
            EventKind::Instant,
            "open".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            2,
            Lane::Net,
            EventKind::Instant,
            "send".into(),
            Vec::new(),
        );
        let trace = tracer.finish(10);
        let json = export_chrome(&trace, Some(&[Lane::Net]));
        assert!(json.contains("\"send\""));
        assert!(!json.contains("\"open\""));
        assert!(!json.contains("\"ph\":\"B\"")); // phase lane filtered out too
    }

    #[test]
    fn stray_end_is_dropped() {
        let tracer = Tracer::new(1);
        tracer.record(0, 5, Lane::Io, EventKind::End, "".into(), Vec::new());
        let trace = tracer.finish(10);
        let json = export_chrome(&trace, Some(&[Lane::Io]));
        assert!(!json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn names_are_escaped() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            1,
            Lane::Runtime,
            EventKind::Instant,
            "weird\"name\\".into(),
            Vec::new(),
        );
        let trace = tracer.finish(2);
        let json = export_chrome(&trace, None);
        assert!(json.contains("weird\\\"name\\\\"));
    }
}
