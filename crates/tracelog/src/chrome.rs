//! Chrome `trace_event` JSON export, loadable in Perfetto / `chrome://tracing`.
//!
//! Layout: one trace "process" per simulated rank (`pid` = rank), one
//! "thread" per subsystem [`Lane`] (`tid` = [`Lane::tid`]), with
//! `process_name` / `thread_name` metadata so the viewer labels them.
//! Timestamps are virtual microseconds with nanosecond precision
//! (three decimals).
//!
//! The [`Lane::Phase`] lane is exported from the analyzer's *flat*
//! per-rank timeline rather than the raw retroactive charges, so the
//! viewer shows each rank doing exactly one phase at a time and the
//! lane's spans tile `[0, wall]` exactly. All other lanes export their
//! raw events, sanitized so begin/end pairs always balance (stray ends
//! are dropped; spans left open by a killed rank are closed at the
//! wall clock).
//!
//! **Slot sub-lanes.** [`Lane::Search`] begin events carrying a
//! `("slot", k)` argument — the DES engine's virtual compute slots —
//! are routed to a dedicated thread per slot (`tid` =
//! [`SLOT_TID_BASE`]` + k`, labelled "search slot k") so overlapping
//! slot slices render side by side instead of as a bogus nested stack.
//! The matching end event carries no arguments; it is paired by record
//! adjacency — `closed_span` records a span's begin and end back to
//! back on the rank thread, so the end's per-rank `seq` is exactly the
//! begin's plus one.
//!
//! The output is deliberately line-oriented — one event object per
//! line, fixed field order — so the [`crate::check`] validator and the
//! determinism tests can treat it as a stable byte stream.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use crate::analyze;
use crate::event::{ArgVal, EventKind, Lane};
use crate::sink::Trace;

/// Exported `tid` of compute slot 0; slot `k` maps to `SLOT_TID_BASE + k`.
/// Far above every [`Lane::tid`] so slot threads can never collide with
/// a lane thread.
pub const SLOT_TID_BASE: u64 = 100;

/// The `("slot", k)` argument that marks a Search-lane begin as a
/// compute-slot slice.
fn slot_arg(args: &[(&'static str, ArgVal)]) -> Option<u64> {
    args.iter().find_map(|(k, v)| match (*k, v) {
        ("slot", ArgVal::U64(n)) => Some(*n),
        _ => None,
    })
}

fn esc(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_ts(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_args(args: &[(&'static str, ArgVal)], out: &mut String) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        match v {
            ArgVal::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgVal::Str(s) => {
                out.push('"');
                esc(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn event_line(
    name: &str,
    ph: char,
    pid: usize,
    tid: u64,
    ts_ns: u64,
    args: &[(&'static str, ArgVal)],
    instant: bool,
    out: &mut Vec<String>,
) {
    let mut line = String::new();
    line.push_str("{\"name\":\"");
    esc(name, &mut line);
    let _ = write!(
        line,
        "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
    );
    push_ts(ts_ns, &mut line);
    if instant {
        line.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        push_args(args, &mut line);
    }
    line.push('}');
    out.push(line);
}

fn meta_line(kind: &str, pid: usize, tid: u64, label: &str, out: &mut Vec<String>) {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    );
    esc(label, &mut line);
    line.push_str("\"}}");
    out.push(line);
}

/// Serialize `trace` as Chrome `trace_event` JSON. `filter` restricts
/// the export to the given lanes (`None` = everything).
pub fn export_chrome(trace: &Trace, filter: Option<&[Lane]>) -> String {
    let included = |lane: Lane| filter.is_none_or(|f| f.contains(&lane));
    let mut lines: Vec<String> = Vec::new();

    // Which (rank, slot) sub-lanes does this trace use? Collected up
    // front so their thread names sit with the other metadata.
    let mut slot_tids: BTreeSet<(usize, u64)> = BTreeSet::new();
    if included(Lane::Search) {
        for e in &trace.events {
            if e.lane == Lane::Search && e.kind == EventKind::Begin {
                if let Some(k) = slot_arg(&e.args) {
                    slot_tids.insert((e.rank, SLOT_TID_BASE + k));
                }
            }
        }
    }

    for rank in 0..trace.nranks {
        meta_line("process_name", rank, 0, &format!("rank {rank}"), &mut lines);
        for lane in Lane::ALL {
            if included(lane) {
                meta_line("thread_name", rank, lane.tid(), lane.label(), &mut lines);
            }
        }
        for &(r, tid) in slot_tids.range((rank, 0)..(rank + 1, 0)) {
            meta_line(
                "thread_name",
                r,
                tid,
                &format!("search slot {}", tid - SLOT_TID_BASE),
                &mut lines,
            );
        }
    }

    // Phase lane: the normalized flat timeline, tiling [0, wall].
    if included(Lane::Phase) {
        for rank in 0..trace.nranks {
            for seg in analyze::rank_phase_timeline(trace, rank) {
                event_line(
                    &seg.phase,
                    'B',
                    rank,
                    Lane::Phase.tid(),
                    seg.start,
                    &[],
                    false,
                    &mut lines,
                );
                event_line(
                    &seg.phase,
                    'E',
                    rank,
                    Lane::Phase.tid(),
                    seg.end,
                    &[],
                    false,
                    &mut lines,
                );
            }
        }
    }

    // All other lanes: raw events in merged order, with begin/end
    // sanitized per (rank, lane). The stack remembers begin names so
    // end events display matching names in the viewer.
    let mut stacks: Vec<Vec<Vec<String>>> =
        vec![Lane::ALL.map(|_| Vec::new()).to_vec(); trace.nranks];
    let lane_idx = |lane: Lane| Lane::ALL.iter().position(|l| *l == lane).unwrap();
    // Slot slices awaiting their end event, keyed by the `(rank, seq)`
    // the end will carry (begin's seq + 1 — `closed_span` records the
    // pair adjacently). Slot ends can't use the lane stacks: slices on
    // different slots overlap, so time order is not stack order.
    let mut slot_pending: HashMap<(usize, u64), (u64, String)> = HashMap::new();
    for e in &trace.events {
        if e.lane == Lane::Phase || !included(e.lane) {
            continue;
        }
        let tid = e.lane.tid();
        match e.kind {
            EventKind::Begin => {
                if e.lane == Lane::Search {
                    if let Some(k) = slot_arg(&e.args) {
                        let tid = SLOT_TID_BASE + k;
                        slot_pending.insert((e.rank, e.seq + 1), (tid, e.name.to_string()));
                        event_line(&e.name, 'B', e.rank, tid, e.t, &e.args, false, &mut lines);
                        continue;
                    }
                }
                stacks[e.rank][lane_idx(e.lane)].push(e.name.to_string());
                event_line(&e.name, 'B', e.rank, tid, e.t, &e.args, false, &mut lines);
            }
            EventKind::End => {
                if let Some((tid, name)) = slot_pending.remove(&(e.rank, e.seq)) {
                    event_line(&name, 'E', e.rank, tid, e.t, &e.args, false, &mut lines);
                    continue;
                }
                if let Some(name) = stacks[e.rank][lane_idx(e.lane)].pop() {
                    event_line(&name, 'E', e.rank, tid, e.t, &e.args, false, &mut lines);
                }
            }
            EventKind::Instant => {
                event_line(&e.name, 'i', e.rank, tid, e.t, &e.args, true, &mut lines);
            }
            EventKind::Counter(v) => {
                event_line(
                    &e.name,
                    'C',
                    e.rank,
                    tid,
                    e.t,
                    &[("value", ArgVal::U64(v))],
                    false,
                    &mut lines,
                );
            }
        }
    }
    // Close anything a killed rank left open. Slot slices first: a
    // begin whose adjacent end never arrived (it was recorded by some
    // path other than `closed_span`) must still balance.
    let mut stranded: Vec<((usize, u64), (u64, String))> = slot_pending.into_iter().collect();
    stranded.sort_by_key(|&((rank, seq), _)| (rank, seq));
    for ((rank, _), (tid, name)) in stranded {
        event_line(&name, 'E', rank, tid, trace.wall, &[], false, &mut lines);
    }
    for (rank, lanes) in stacks.iter_mut().enumerate() {
        for (li, stack) in lanes.iter_mut().enumerate() {
            while let Some(name) = stack.pop() {
                event_line(
                    &name,
                    'E',
                    rank,
                    Lane::ALL[li].tid(),
                    trace.wall,
                    &[],
                    false,
                    &mut lines,
                );
            }
        }
    }

    let mut out = String::from("[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Tracer;

    #[test]
    fn export_is_balanced_and_labelled() {
        let tracer = Tracer::new(2);
        tracer.record(
            0,
            0,
            Lane::Phase,
            EventKind::Begin,
            "search".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            80,
            Lane::Phase,
            EventKind::End,
            "search".into(),
            Vec::new(),
        );
        tracer.record(
            1,
            10,
            Lane::Io,
            EventKind::Begin,
            "read".into(),
            vec![("bytes", ArgVal::U64(4096))],
        );
        tracer.record(1, 30, Lane::Io, EventKind::End, "".into(), Vec::new());
        tracer.record(
            1,
            40,
            Lane::Runtime,
            EventKind::Instant,
            "grant".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            50,
            Lane::Io,
            EventKind::Counter(7),
            "io.reqs".into(),
            Vec::new(),
        );
        // A span the rank never closed: must be closed at the wall.
        tracer.record(
            1,
            60,
            Lane::Net,
            EventKind::Begin,
            "recv".into(),
            Vec::new(),
        );
        let trace = tracer.finish(100);
        let json = export_chrome(&trace, None);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"rank 1\""));
        assert!(json.contains("\"thread_name\""));
        // The io span keeps its name on both ends.
        assert_eq!(json.matches("\"name\":\"read\"").count(), 2);
        // The unclosed net recv is closed at the 100 ns wall = 0.100 us.
        assert!(json.contains("{\"name\":\"recv\",\"ph\":\"E\",\"pid\":1,\"tid\":4,\"ts\":0.100}"));
        // Counter exports as a "C" sample.
        assert!(json.contains("\"ph\":\"C\""));
        // Phase lane tiles [0, wall]: search then trailing other.
        assert!(
            json.contains("{\"name\":\"search\",\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":0.000}")
        );
        assert!(json.contains("{\"name\":\"other\",\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":0.100}"));
    }

    #[test]
    fn filter_restricts_lanes() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            1,
            Lane::Io,
            EventKind::Instant,
            "open".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            2,
            Lane::Net,
            EventKind::Instant,
            "send".into(),
            Vec::new(),
        );
        let trace = tracer.finish(10);
        let json = export_chrome(&trace, Some(&[Lane::Net]));
        assert!(json.contains("\"send\""));
        assert!(!json.contains("\"open\""));
        assert!(!json.contains("\"ph\":\"B\"")); // phase lane filtered out too
    }

    #[test]
    fn stray_end_is_dropped() {
        let tracer = Tracer::new(1);
        tracer.record(0, 5, Lane::Io, EventKind::End, "".into(), Vec::new());
        let trace = tracer.finish(10);
        let json = export_chrome(&trace, Some(&[Lane::Io]));
        assert!(!json.contains("\"ph\":\"E\""));
    }

    #[test]
    fn slot_slices_get_their_own_sub_lanes() {
        // Two compute-slot slices overlapping in virtual time on rank 0,
        // recorded the way `closed_span` records them (begin and end
        // back to back, so their seqs are adjacent), under an ordinary
        // search.fragment span on the plain Search thread.
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            10,
            Lane::Search,
            EventKind::Begin,
            "search.slot".into(),
            vec![("slot", ArgVal::U64(0)), ("slice", ArgVal::U64(0))],
        );
        tracer.record(0, 40, Lane::Search, EventKind::End, "".into(), Vec::new());
        tracer.record(
            0,
            10,
            Lane::Search,
            EventKind::Begin,
            "search.slot".into(),
            vec![("slot", ArgVal::U64(1)), ("slice", ArgVal::U64(1))],
        );
        tracer.record(0, 25, Lane::Search, EventKind::End, "".into(), Vec::new());
        tracer.record(
            0,
            10,
            Lane::Search,
            EventKind::Begin,
            "search.fragment".into(),
            Vec::new(),
        );
        tracer.record(0, 40, Lane::Search, EventKind::End, "".into(), Vec::new());
        let trace = tracer.finish(50);
        let json = export_chrome(&trace, None);

        // Each used slot gets a labelled sub-thread.
        assert!(json.contains(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"search slot 0\"}}}}",
            SLOT_TID_BASE
        )));
        assert!(json.contains("\"search slot 1\""));
        // Slot 1's end at 25 ns routes to tid 101 even though slot 0's
        // slice (begun earlier in record order) is still open — the
        // overlap a naive per-lane stack would mispair.
        assert!(json.contains(&format!(
            "{{\"name\":\"search.slot\",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":0.025}}",
            SLOT_TID_BASE + 1
        )));
        assert!(json.contains(&format!(
            "{{\"name\":\"search.slot\",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":0.040}}",
            SLOT_TID_BASE
        )));
        // The wrapping fragment span stays on the plain Search thread.
        assert!(json.contains(&format!(
            "{{\"name\":\"search.fragment\",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":0.040}}",
            Lane::Search.tid()
        )));
        // And the whole export passes the trace-check validator:
        // balanced depth and monotone time on every thread, slot
        // sub-threads included.
        let stats = crate::check::validate_chrome(&json).expect("slot export validates");
        assert!(stats.spans >= 3);
    }

    #[test]
    fn stranded_slot_begin_is_closed_at_the_wall() {
        // A slot-tagged begin whose adjacent record is not its end (not
        // produced by `closed_span`): the exporter must still balance
        // it, at the wall clock.
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            5,
            Lane::Search,
            EventKind::Begin,
            "search.slot".into(),
            vec![("slot", ArgVal::U64(2))],
        );
        tracer.record(
            0,
            6,
            Lane::Search,
            EventKind::Instant,
            "note".into(),
            Vec::new(),
        );
        let trace = tracer.finish(30);
        let json = export_chrome(&trace, None);
        assert!(json.contains(&format!(
            "{{\"name\":\"search.slot\",\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":0.030}}",
            SLOT_TID_BASE + 2
        )));
        crate::check::validate_chrome(&json).expect("stranded slot begin still balances");
    }

    #[test]
    fn names_are_escaped() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            1,
            Lane::Runtime,
            EventKind::Instant,
            "weird\"name\\".into(),
            Vec::new(),
        );
        let trace = tracer.finish(2);
        let json = export_chrome(&trace, None);
        assert!(json.contains("weird\\\"name\\\\"));
    }
}
