//! The trace sink: per-rank ring buffers behind a cloneable handle,
//! plus the thread-local recording API instrumented code calls.
//!
//! `simcluster` executes ranks as resumable continuations on a small
//! worker pool, coscheduled so exactly one runs at a time. The engine
//! keeps one [`RankHandle`] per rank (rank id + virtual-clock closure)
//! and swaps it into the worker's thread-local slot around every
//! resumption, so the recording context follows the rank across
//! threads; plain thread-per-task hosts can use [`install`] instead.
//! The free functions here ([`span`], [`instant`], [`counter`],
//! [`phase`]) look the slot up and record into the rank's buffer. When
//! nothing is installed they are no-ops, so instrumentation can live
//! permanently in every crate.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use crate::event::{ArgVal, Event, EventKind, Lane};

/// Default per-rank event capacity. Generous for any simulated run in
/// this suite; overflow increments a per-rank drop counter instead of
/// growing without bound.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

#[derive(Debug, Default)]
struct RankBuf {
    events: Vec<Event>,
    seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct TracerInner {
    ranks: Vec<Mutex<RankBuf>>,
    cap: usize,
}

/// A cloneable handle on the whole run's trace: one ring buffer per
/// rank, merged deterministically by [`Tracer::finish`].
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer for `nranks` ranks with the default per-rank capacity.
    pub fn new(nranks: usize) -> Tracer {
        Tracer::with_capacity(nranks, DEFAULT_CAPACITY)
    }

    /// A tracer with an explicit per-rank event capacity.
    pub fn with_capacity(nranks: usize, cap: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                ranks: (0..nranks)
                    .map(|_| Mutex::new(RankBuf::default()))
                    .collect(),
                cap,
            }),
        }
    }

    /// Number of ranks this tracer buffers.
    pub fn nranks(&self) -> usize {
        self.inner.ranks.len()
    }

    /// Record one event on `rank`'s buffer at virtual time `t`. This is
    /// the low-level entry point; rank threads normally go through the
    /// thread-local free functions, while the engine's scheduler (which
    /// acts on behalf of ranks it is waking or killing) calls this
    /// directly.
    pub fn record(
        &self,
        rank: usize,
        t: u64,
        lane: Lane,
        kind: EventKind,
        name: Cow<'static, str>,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        let mut buf = self.inner.ranks[rank].lock().unwrap();
        let seq = buf.seq;
        buf.seq += 1;
        if buf.events.len() >= self.inner.cap {
            buf.dropped += 1;
            return;
        }
        buf.events.push(Event {
            t,
            rank,
            seq,
            lane,
            kind,
            name,
            args,
        });
    }

    /// Drain every rank buffer and merge into one deterministic stream,
    /// sorted by `(t, rank, seq)`. `wall` is the engine's final virtual
    /// clock; it bounds every timeline the analyzer derives.
    pub fn finish(&self, wall: u64) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for m in &self.inner.ranks {
            let buf = std::mem::take(&mut *m.lock().unwrap());
            dropped += buf.dropped;
            events.extend(buf.events);
        }
        events.sort_by_key(|e| (e.t, e.rank, e.seq));
        Trace {
            nranks: self.inner.ranks.len(),
            wall,
            events,
            dropped,
        }
    }
}

/// A finished, merged trace: the deterministic event stream for a run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Number of ranks in the run.
    pub nranks: usize,
    /// The engine's final virtual clock in nanoseconds.
    pub wall: u64,
    /// All events, sorted by `(t, rank, seq)`.
    pub events: Vec<Event>,
    /// Events lost to ring-buffer overflow (0 in any healthy run).
    pub dropped: u64,
}

impl Trace {
    /// Events belonging to `rank`, in merged order.
    pub fn rank_events(&self, rank: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.rank == rank)
    }
}

struct Installed {
    tracer: Tracer,
    rank: usize,
    clock: Box<dyn Fn() -> u64>,
}

thread_local! {
    static CURRENT: RefCell<Option<Installed>> = const { RefCell::new(None) };
}

/// Install `tracer` as this thread's sink for `rank`, with `clock`
/// supplying the virtual time for every subsequent free-function call.
/// The returned guard uninstalls on drop (end of the rank thread).
pub fn install(tracer: Tracer, rank: usize, clock: impl Fn() -> u64 + 'static) -> InstallGuard {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Installed {
            tracer,
            rank,
            clock: Box::new(clock),
        });
    });
    InstallGuard { _priv: () }
}

/// Uninstalls the thread-local tracer when dropped.
#[must_use = "dropping the guard uninstalls the tracer"]
pub struct InstallGuard {
    _priv: (),
}

/// A detached per-rank tracer installation for engines that execute
/// ranks as resumable continuations on a worker pool: the handle is
/// built once per rank (boxing the clock closure exactly once) and then
/// [`RankHandle::swap`]ped into the thread-local slot before each
/// resumption and back out after the rank yields — so the recording
/// context follows the *rank*, not the OS thread, with no per-resume
/// allocation.
pub struct RankHandle {
    slot: Option<Installed>,
}

/// Build a [`RankHandle`] for `rank` recording into `tracer`, with
/// `clock` supplying the virtual time. Nothing is installed until the
/// first [`RankHandle::swap`].
pub fn rank_handle(tracer: Tracer, rank: usize, clock: impl Fn() -> u64 + 'static) -> RankHandle {
    RankHandle {
        slot: Some(Installed {
            tracer,
            rank,
            clock: Box::new(clock),
        }),
    }
}

impl RankHandle {
    /// Exchange this handle's installation with the current thread's
    /// slot. Calling it twice (around a resumption) restores whatever
    /// was installed before — swaps therefore nest correctly even if a
    /// pool worker briefly resumes nested continuations.
    pub fn swap(&mut self) {
        CURRENT.with(|c| std::mem::swap(&mut *c.borrow_mut(), &mut self.slot));
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// Is a tracer installed on this thread?
pub fn is_installed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The installed clock's current virtual time, if a tracer is installed.
pub fn now() -> Option<u64> {
    CURRENT.with(|c| c.borrow().as_ref().map(|i| (i.clock)()))
}

fn record_here(
    lane: Lane,
    kind: EventKind,
    name: Cow<'static, str>,
    args: Vec<(&'static str, ArgVal)>,
) {
    CURRENT.with(|c| {
        if let Some(i) = c.borrow().as_ref() {
            let t = (i.clock)();
            i.tracer.record(i.rank, t, lane, kind, name, args);
        }
    });
}

fn record_here_at(
    t: u64,
    lane: Lane,
    kind: EventKind,
    name: Cow<'static, str>,
    args: Vec<(&'static str, ArgVal)>,
) {
    CURRENT.with(|c| {
        if let Some(i) = c.borrow().as_ref() {
            i.tracer.record(i.rank, t, lane, kind, name, args);
        }
    });
}

/// Record a point event on `lane` at the current virtual time.
pub fn instant(lane: Lane, name: impl Into<Cow<'static, str>>, args: Vec<(&'static str, ArgVal)>) {
    record_here(lane, EventKind::Instant, name.into(), args);
}

/// Record a point event on `lane` at an explicit virtual time `t`
/// (for retroactive marks).
pub fn instant_at(
    t: u64,
    lane: Lane,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgVal)>,
) {
    record_here_at(t, lane, EventKind::Instant, name.into(), args);
}

/// Record a cumulative counter sample: the registry value of `name` is
/// `value` as of now.
pub fn counter(name: impl Into<Cow<'static, str>>, value: u64) {
    record_here(Lane::Io, EventKind::Counter(value), name.into(), Vec::new());
}

/// Open a span on `lane`; the returned guard closes it on drop. Spans
/// on one rank+lane nest like a stack (RAII ordering).
pub fn span(lane: Lane, name: impl Into<Cow<'static, str>>) -> Span {
    span_args(lane, name, Vec::new())
}

/// [`span`] with arguments attached to the opening event.
pub fn span_args(
    lane: Lane,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgVal)>,
) -> Span {
    let active = is_installed();
    if active {
        record_here(lane, EventKind::Begin, name.into(), args);
    }
    Span { lane, active }
}

/// An open span; dropping it records the matching end event.
#[must_use = "dropping the span closes it immediately"]
pub struct Span {
    lane: Lane,
    active: bool,
}

impl Span {
    /// Close the span now (same as dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            record_here(self.lane, EventKind::End, Cow::Borrowed(""), Vec::new());
        }
    }
}

/// Record a completed span retroactively: a Begin at `start_ns` and an
/// End at `end_ns` on `lane`, with `args` attached to the opening
/// event. For instrumentation whose interesting attributes (counts,
/// sizes) are only known once the work has finished.
pub fn closed_span(
    lane: Lane,
    name: impl Into<Cow<'static, str>>,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(&'static str, ArgVal)>,
) {
    let name = name.into();
    record_here_at(start_ns, lane, EventKind::Begin, name, args);
    record_here_at(
        end_ns.max(start_ns),
        lane,
        EventKind::End,
        Cow::Borrowed(""),
        Vec::new(),
    );
}

/// Record a retroactive span of `dur_ns` ending now on the [`Lane::Phase`]
/// timeline — the bridge from `PhaseTimes::add` style accounting
/// ("charge d nanoseconds of `name`, measured just now") into the trace.
pub fn phase(name: &str, dur_ns: u64) {
    CURRENT.with(|c| {
        if let Some(i) = c.borrow().as_ref() {
            let end = (i.clock)();
            let start = end.saturating_sub(dur_ns);
            let owned: Cow<'static, str> = Cow::Owned(name.to_string());
            i.tracer.record(
                i.rank,
                start,
                Lane::Phase,
                EventKind::Begin,
                owned.clone(),
                Vec::new(),
            );
            i.tracer
                .record(i.rank, end, Lane::Phase, EventKind::End, owned, Vec::new());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn free_functions_are_noops_without_install() {
        assert!(!is_installed());
        assert_eq!(now(), None);
        instant(Lane::Runtime, "orphan", Vec::new());
        let s = span(Lane::Io, "orphan");
        drop(s);
        phase("search", 100);
    }

    #[test]
    fn spans_and_instants_record_in_order() {
        let tracer = Tracer::new(1);
        let t = Rc::new(Cell::new(0u64));
        {
            let tc = t.clone();
            let _g = install(tracer.clone(), 0, move || tc.get());
            t.set(10);
            let s = span_args(Lane::Io, "read", vec![("bytes", ArgVal::U64(64))]);
            t.set(25);
            instant(Lane::Runtime, "grant", vec![("frag", 3usize.into())]);
            t.set(40);
            drop(s);
            t.set(50);
            phase("search", 30);
        }
        assert!(!is_installed());
        let trace = tracer.finish(60);
        let kinds: Vec<(u64, EventKind)> = trace.events.iter().map(|e| (e.t, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (10, EventKind::Begin),
                (20, EventKind::Begin), // phase span start: 50 - 30
                (25, EventKind::Instant),
                (40, EventKind::End),
                (50, EventKind::End),
            ]
        );
        // Sequence numbers break the (t, rank) ties deterministically.
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 1, 2, 4]);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.wall, 60);
    }

    #[test]
    fn overflow_counts_drops() {
        let tracer = Tracer::with_capacity(1, 2);
        let _g = install(tracer.clone(), 0, || 0);
        for _ in 0..5 {
            instant(Lane::Engine, "tick", Vec::new());
        }
        let trace = tracer.finish(0);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
    }

    #[test]
    fn merge_orders_across_ranks() {
        let tracer = Tracer::new(2);
        tracer.record(1, 5, Lane::Net, EventKind::Instant, "b".into(), Vec::new());
        tracer.record(0, 5, Lane::Net, EventKind::Instant, "a".into(), Vec::new());
        tracer.record(0, 2, Lane::Net, EventKind::Instant, "c".into(), Vec::new());
        let trace = tracer.finish(10);
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }
}
