//! The counter registry: one value type for every accounting path.
//!
//! `simcluster::PhaseTimes` (per-phase virtual nanoseconds) and
//! `parafs`'s per-class I/O tallies both store their numbers in a
//! [`Counters`], so adding a phase or a tally is the same operation
//! everywhere and merging reports is uniform.

use std::collections::BTreeMap;

/// A deterministic (sorted-key) registry of named monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `delta` to `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.map.get_mut(name) {
            *v += delta;
        } else {
            self.map.insert(name.to_string(), delta);
        }
    }

    /// Set `name` to `value` exactly.
    pub fn set(&mut self, name: &str, value: u64) {
        self.map.insert(name.to_string(), value);
    }

    /// The current value of `name` (zero when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sum every counter in `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Keep, per counter, the larger of the two values — the merge rule
    /// for "critical path across ranks" style aggregation.
    pub fn max_merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            let cur = self.get(k);
            if v > cur {
                self.set(k, v);
            }
        }
    }

    /// Sum of all counter values.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }
}

impl<'a> FromIterator<(&'a str, u64)> for Counters {
    fn from_iter<T: IntoIterator<Item = (&'a str, u64)>>(iter: T) -> Counters {
        let mut c = Counters::new();
        for (k, v) in iter {
            c.add(k, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Counters::new();
        a.add("x", 3);
        a.add("x", 4);
        a.add("y", 1);
        assert_eq!(a.get("x"), 7);
        assert_eq!(a.get("missing"), 0);
        let b: Counters = [("x", 1u64), ("z", 9)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get("x"), 8);
        assert_eq!(a.get("z"), 9);
        assert_eq!(a.total(), 8 + 1 + 9);
    }

    #[test]
    fn max_merge_keeps_larger() {
        let mut a: Counters = [("p", 5u64), ("q", 2)].into_iter().collect();
        let b: Counters = [("p", 3u64), ("q", 7), ("r", 1)].into_iter().collect();
        a.max_merge(&b);
        assert_eq!(a.get("p"), 5);
        assert_eq!(a.get("q"), 7);
        assert_eq!(a.get("r"), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let c: Counters = [("b", 1u64), ("a", 2), ("c", 3)].into_iter().collect();
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }
}
