//! Schema validation for exported Chrome traces — the `trace-check`
//! CI gate.
//!
//! The exporter writes one event object per line with a fixed field
//! order, so this validator is a small line-oriented parser rather
//! than a general JSON reader (the workspace vendors no JSON library).
//! It enforces the invariants the suite relies on:
//!
//! * every event's `ph` is one of `M`, `B`, `E`, `i`, `C`;
//! * timestamps are monotonically nondecreasing per `(pid, tid)`;
//! * begin/end pairs balance per `(pid, tid)` — depth never goes
//!   negative and ends at zero.

use std::collections::BTreeMap;

/// Summary of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total non-metadata events.
    pub events: usize,
    /// Completed begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Distinct `pid`s (ranks) seen.
    pub ranks: usize,
}

/// Extract the string value of `"key":"..."` from `line`.
pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(&rest[..end]),
            _ => end += 1,
        }
    }
    None
}

/// Extract the numeric value of `"key":123` or `"key":123.456`.
pub(crate) fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `ts` in microseconds into integer nanoseconds.
pub(crate) fn ts_ns(line: &str) -> Option<u64> {
    let us = field_num(line, "ts")?;
    if us < 0.0 {
        return None;
    }
    Some((us * 1000.0).round() as u64)
}

/// Validate exported Chrome trace JSON. Returns summary statistics or
/// a message naming the first offending line.
pub fn validate_chrome(text: &str) -> Result<CheckStats, String> {
    let trimmed = text.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return Err("trace is not a JSON array".into());
    }
    let mut stats = CheckStats::default();
    let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut pids: BTreeMap<u64, ()> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {lineno}: not an event object"));
        }
        let ph = field_str(line, "ph").ok_or(format!("line {lineno}: missing ph"))?;
        let pid = field_num(line, "pid").ok_or(format!("line {lineno}: missing pid"))? as u64;
        let tid = field_num(line, "tid").ok_or(format!("line {lineno}: missing tid"))? as u64;
        if field_str(line, "name").is_none() {
            return Err(format!("line {lineno}: missing name"));
        }
        if ph == "M" {
            continue;
        }
        pids.insert(pid, ());
        let ts = ts_ns(line).ok_or(format!("line {lineno}: missing or negative ts"))?;
        let key = (pid, tid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "line {lineno}: ts regressed on pid {pid} tid {tid} ({ts} ns after {prev} ns)"
                ));
            }
        }
        last_ts.insert(key, ts);
        stats.events += 1;
        match ph {
            "B" => *depth.entry(key).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(key).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!(
                        "line {lineno}: unmatched end on pid {pid} tid {tid}"
                    ));
                }
                stats.spans += 1;
            }
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            other => return Err(format!("line {lineno}: unknown ph {other:?}")),
        }
    }
    for ((pid, tid), d) in depth {
        if d != 0 {
            return Err(format!(
                "pid {pid} tid {tid}: {d} begin event(s) never closed"
            ));
        }
    }
    stats.ranks = pids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::export_chrome;
    use crate::event::{EventKind, Lane};
    use crate::sink::Tracer;

    fn sample_trace() -> String {
        let tracer = Tracer::new(2);
        tracer.record(
            0,
            0,
            Lane::Phase,
            EventKind::Begin,
            "search".into(),
            Vec::new(),
        );
        tracer.record(
            0,
            90,
            Lane::Phase,
            EventKind::End,
            "search".into(),
            Vec::new(),
        );
        tracer.record(1, 10, Lane::Io, EventKind::Begin, "read".into(), Vec::new());
        tracer.record(1, 20, Lane::Io, EventKind::End, "".into(), Vec::new());
        tracer.record(
            1,
            30,
            Lane::Runtime,
            EventKind::Instant,
            "grant".into(),
            Vec::new(),
        );
        tracer.record(
            1,
            40,
            Lane::Io,
            EventKind::Counter(3),
            "reqs".into(),
            Vec::new(),
        );
        export_chrome(&tracer.finish(100), None)
    }

    #[test]
    fn exporter_output_validates() {
        let stats = validate_chrome(&sample_trace()).expect("valid");
        assert_eq!(stats.ranks, 2);
        assert!(stats.spans >= 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let bad = "[\n{\"name\":\"x\",\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":0.000}\n]\n";
        let err = validate_chrome(bad).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        let bad2 = "[\n{\"name\":\"x\",\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":0.000}\n]\n";
        assert!(validate_chrome(bad2).unwrap_err().contains("unmatched end"));
    }

    #[test]
    fn rejects_time_regression() {
        let bad = "[\n\
            {\"name\":\"a\",\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":5.000,\"s\":\"t\"},\n\
            {\"name\":\"b\",\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":4.000,\"s\":\"t\"}\n]\n";
        assert!(validate_chrome(bad).unwrap_err().contains("regressed"));
    }

    #[test]
    fn rejects_non_array_and_junk() {
        assert!(validate_chrome("hello").is_err());
        assert!(validate_chrome("[\nnot json\n]\n").is_err());
        let nameless = "[\n{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.000}\n]\n";
        assert!(validate_chrome(nameless)
            .unwrap_err()
            .contains("missing name"));
    }
}
