//! Trace analysis: flat per-rank phase timelines and the cluster-wide
//! critical-path phase breakdown.
//!
//! Phase charges arrive as retroactive spans on [`Lane::Phase`]
//! (`PhaseTimes::add` records "d nanoseconds of X, ending now"). Charges
//! can nest — a coarse retroactive span may contain finer charges made
//! inside it — so raw spans are normalized into a **flat** timeline per
//! rank: at every instant the rank is doing exactly one phase, with the
//! most specific (latest-starting) covering span winning and uncovered
//! time attributed to [`OTHER`]. Timelines partition `[0, wall]`
//! exactly, in integer nanoseconds, so per-rank phase sums equal the
//! engine wall clock *by construction* and the suite can assert it.
//!
//! [`critical_path`] lifts that to the cluster: every instant of wall
//! time is attributed to the highest-precedence phase any rank is in,
//! yielding an exact partition of the run — the measured replacement
//! for the proportional-scaling attribution the bench runner used to
//! fabricate.

use std::collections::BTreeSet;

use crate::counters::Counters;
use crate::event::{EventKind, Lane};
use crate::sink::Trace;

/// The phase name for time no charge covers (idle, scheduling, waits).
pub const OTHER: &str = "other";

/// One flat timeline segment: `rank` spends `[start, end)` in `phase`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment start, virtual ns.
    pub start: u64,
    /// Segment end, virtual ns (exclusive).
    pub end: u64,
    /// The phase label.
    pub phase: String,
}

#[derive(Debug, Clone)]
struct Interval {
    start: u64,
    end: u64,
    seq: u64,
    name: String,
}

/// Pair up `rank`'s [`Lane::Phase`] begin/end events (in recording
/// order) into closed intervals, clamped to `[0, wall]`.
fn phase_intervals(trace: &Trace, rank: usize) -> Vec<Interval> {
    let mut events: Vec<_> = trace
        .rank_events(rank)
        .filter(|e| e.lane == Lane::Phase)
        .collect();
    events.sort_by_key(|e| e.seq);
    let mut stack: Vec<(u64, u64, String)> = Vec::new();
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => stack.push((e.t, e.seq, e.name.to_string())),
            EventKind::End => {
                if let Some((start, seq, name)) = stack.pop() {
                    let end = e.t.min(trace.wall);
                    let start = start.min(end);
                    if end > start {
                        out.push(Interval {
                            start,
                            end,
                            seq,
                            name,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    // An unclosed charge (rank killed mid-span) extends to the wall.
    for (start, seq, name) in stack {
        if trace.wall > start {
            out.push(Interval {
                start,
                end: trace.wall,
                seq,
                name,
            });
        }
    }
    out
}

/// The flat phase timeline of `rank`: contiguous segments covering
/// `[0, wall]` exactly, each labelled with the winning phase (or
/// [`OTHER`] where no charge covers the instant).
pub fn rank_phase_timeline(trace: &Trace, rank: usize) -> Vec<Segment> {
    let intervals = phase_intervals(trace, rank);
    flatten(&intervals, trace.wall)
}

fn flatten(intervals: &[Interval], wall: u64) -> Vec<Segment> {
    if wall == 0 {
        return Vec::new();
    }
    let mut bounds: BTreeSet<u64> = BTreeSet::new();
    bounds.insert(0);
    bounds.insert(wall);
    for iv in intervals {
        bounds.insert(iv.start);
        bounds.insert(iv.end);
    }
    // Sweep boundaries, maintaining the set of covering intervals.
    let mut starts: Vec<usize> = (0..intervals.len()).collect();
    starts.sort_by_key(|&i| intervals[i].start);
    let mut starts = starts.into_iter().peekable();
    let mut active: Vec<usize> = Vec::new();
    let mut out: Vec<Segment> = Vec::new();
    let bounds: Vec<u64> = bounds.into_iter().collect();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        while let Some(&i) = starts.peek() {
            if intervals[i].start <= a {
                active.push(i);
                starts.next();
            } else {
                break;
            }
        }
        active.retain(|&i| intervals[i].end > a);
        // The most specific covering charge wins: latest start, then
        // tightest end, then latest recording.
        let winner = active.iter().copied().max_by_key(|&i| {
            (
                intervals[i].start,
                std::cmp::Reverse(intervals[i].end),
                intervals[i].seq,
            )
        });
        let phase = match winner {
            Some(i) => intervals[i].name.as_str(),
            None => OTHER,
        };
        match out.last_mut() {
            Some(last) if last.phase == phase && last.end == a => last.end = b,
            _ => out.push(Segment {
                start: a,
                end: b,
                phase: phase.to_string(),
            }),
        }
    }
    out
}

/// Per-phase totals for one rank, summing its flat timeline. The totals
/// always sum to `trace.wall` exactly.
pub fn rank_phase_totals(trace: &Trace, rank: usize) -> Counters {
    let mut c = Counters::new();
    for seg in rank_phase_timeline(trace, rank) {
        c.add(&seg.phase, seg.end - seg.start);
    }
    c
}

/// The cluster-wide critical-path phase breakdown: every instant of
/// `[0, wall]` is attributed to the highest-precedence phase active on
/// *any* rank at that instant (precedence = position in `precedence`,
/// earlier is stronger; phases not listed rank below all listed ones).
/// The returned totals partition the wall clock exactly.
pub fn critical_path(trace: &Trace, precedence: &[&str]) -> Counters {
    let timelines: Vec<Vec<Segment>> = (0..trace.nranks)
        .map(|r| rank_phase_timeline(trace, r))
        .collect();
    let mut bounds: BTreeSet<u64> = BTreeSet::new();
    bounds.insert(0);
    bounds.insert(trace.wall);
    for tl in &timelines {
        for seg in tl {
            bounds.insert(seg.start);
            bounds.insert(seg.end);
        }
    }
    let rank_of = |name: &str| {
        precedence
            .iter()
            .position(|p| *p == name)
            .unwrap_or(precedence.len())
    };
    let mut cursors = vec![0usize; timelines.len()];
    let mut totals = Counters::new();
    let bounds: Vec<u64> = bounds.into_iter().collect();
    for w in bounds.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mut best: Option<(usize, &str)> = None;
        for (r, tl) in timelines.iter().enumerate() {
            while cursors[r] < tl.len() && tl[cursors[r]].end <= a {
                cursors[r] += 1;
            }
            let phase = tl
                .get(cursors[r])
                .filter(|seg| seg.start <= a)
                .map(|seg| seg.phase.as_str())
                .unwrap_or(OTHER);
            let pr = rank_of(phase);
            if best.is_none_or(|(bp, _)| pr < bp) {
                best = Some((pr, phase));
            }
        }
        let phase = best.map(|(_, p)| p).unwrap_or(OTHER);
        totals.add(phase, b - a);
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgVal, EventKind};
    use crate::sink::Tracer;
    use std::borrow::Cow;

    fn charge(tracer: &Tracer, rank: usize, name: &str, start: u64, end: u64) {
        let owned: Cow<'static, str> = Cow::Owned(name.to_string());
        tracer.record(
            rank,
            start,
            Lane::Phase,
            EventKind::Begin,
            owned.clone(),
            Vec::new(),
        );
        tracer.record(rank, end, Lane::Phase, EventKind::End, owned, Vec::new());
    }

    #[test]
    fn gaps_become_other_and_cover_wall() {
        let tracer = Tracer::new(1);
        charge(&tracer, 0, "copy", 10, 30);
        charge(&tracer, 0, "search", 40, 90);
        let trace = tracer.finish(100);
        let tl = rank_phase_timeline(&trace, 0);
        let got: Vec<(u64, u64, &str)> = tl
            .iter()
            .map(|s| (s.start, s.end, s.phase.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 10, "other"),
                (10, 30, "copy"),
                (30, 40, "other"),
                (40, 90, "search"),
                (90, 100, "other"),
            ]
        );
        let totals = rank_phase_totals(&trace, 0);
        assert_eq!(totals.total(), 100);
        assert_eq!(totals.get("copy"), 20);
        assert_eq!(totals.get("search"), 50);
        assert_eq!(totals.get("other"), 30);
    }

    #[test]
    fn nested_charges_leaf_wins() {
        let tracer = Tracer::new(1);
        // Inner fine-grained charge recorded first, then a coarse
        // retroactive envelope over it: the inner span keeps its slice.
        charge(&tracer, 0, "input", 20, 40);
        charge(&tracer, 0, "output", 10, 60);
        let trace = tracer.finish(60);
        let totals = rank_phase_totals(&trace, 0);
        assert_eq!(totals.get("output"), 30); // [10,20) + [40,60)
        assert_eq!(totals.get("input"), 20);
        assert_eq!(totals.get("other"), 10); // [0,10)
        assert_eq!(totals.total(), 60);
    }

    #[test]
    fn unclosed_span_extends_to_wall() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            5,
            Lane::Phase,
            EventKind::Begin,
            "search".into(),
            Vec::new(),
        );
        let trace = tracer.finish(50);
        let totals = rank_phase_totals(&trace, 0);
        assert_eq!(totals.get("search"), 45);
        assert_eq!(totals.total(), 50);
    }

    #[test]
    fn critical_path_partitions_wall_by_precedence() {
        let tracer = Tracer::new(2);
        charge(&tracer, 0, "output", 0, 60);
        charge(&tracer, 1, "search", 20, 50);
        let trace = tracer.finish(100);
        let cp = critical_path(&trace, &["search", "copy", "input", "output", OTHER]);
        assert_eq!(cp.get("search"), 30); // rank 1 outranks rank 0's output
        assert_eq!(cp.get("output"), 30); // [0,20) + [50,60)
        assert_eq!(cp.get("other"), 40); // [60,100)
        assert_eq!(cp.total(), 100);
    }

    #[test]
    fn empty_trace_is_all_other() {
        let tracer = Tracer::new(3);
        let trace = tracer.finish(42);
        let cp = critical_path(&trace, &["search", OTHER]);
        assert_eq!(cp.get(OTHER), 42);
        assert_eq!(cp.total(), 42);
        assert!(rank_phase_totals(&trace, 1).get(OTHER) == 42);
    }

    #[test]
    fn args_do_not_disturb_analysis() {
        let tracer = Tracer::new(1);
        tracer.record(
            0,
            0,
            Lane::Phase,
            EventKind::Begin,
            "copy".into(),
            vec![("bytes", ArgVal::U64(7))],
        );
        tracer.record(
            0,
            10,
            Lane::Phase,
            EventKind::End,
            "copy".into(),
            Vec::new(),
        );
        let trace = tracer.finish(10);
        assert_eq!(rank_phase_totals(&trace, 0).get("copy"), 10);
    }
}
