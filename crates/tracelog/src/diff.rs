//! Trace diffing — align two runs' exported event streams and report
//! where they diverge.
//!
//! The scale sweep needs a sharper tool than "the wall clocks differ":
//! when a 512-rank run and a 128-rank run disagree, *which lane* (I/O,
//! search, net, a compute-slot sub-lane) and *which phase or span name*
//! moved, and by how much? [`profile_chrome`] folds an exported Chrome
//! trace into busy-time totals keyed by `(rank, lane, name)` — lane
//! labels come from the exporter's `thread_name` metadata, so slot
//! sub-lanes (`search slot k`) and ordinary lanes diff alike —
//! and [`diff_profiles`] aligns two profiles:
//!
//! * **cluster rows** always: per-`(lane, name)` totals summed over
//!   ranks, compared both as totals and as per-rank means so runs at
//!   different scales stay comparable;
//! * **rank rows** only when both runs have the same rank count, so a
//!   lane that diverged on one straggler is named precisely.
//!
//! Two byte-identical exports — the engine's pool-size invariance
//! contract — produce an empty diff. The parser reuses the
//! [`crate::check`] line readers and the same tolerance: one event
//! object per line, fixed field order.

use std::collections::BTreeMap;

use crate::check::{field_num, field_str, ts_ns};

/// Busy-time totals for one run, keyed by `(rank, lane label, name)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunProfile {
    /// Distinct ranks (`pid`s) that emitted events.
    pub ranks: usize,
    /// Latest timestamp seen, in virtual nanoseconds.
    pub wall_ns: u64,
    /// Summed span durations (ns) per `(rank, lane, name)`.
    totals: BTreeMap<(usize, String, String), u64>,
}

/// One aligned divergence between two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// `Some(rank)` for a per-rank row, `None` for a cluster aggregate.
    pub rank: Option<usize>,
    /// Lane label from the exporter's `thread_name` metadata (e.g.
    /// `"io"`, `"phase"`, `"search slot 3"`).
    pub lane: String,
    /// Span or phase name (e.g. `"search"`, `"read"`, `"search.slot"`).
    pub name: String,
    /// Busy nanoseconds in run A.
    pub a_ns: u64,
    /// Busy nanoseconds in run B.
    pub b_ns: u64,
}

impl DiffRow {
    /// Signed change from A to B in nanoseconds.
    pub fn delta_ns(&self) -> i128 {
        self.b_ns as i128 - self.a_ns as i128
    }
}

/// The aligned comparison of two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// Rank count of run A.
    pub a_ranks: usize,
    /// Rank count of run B.
    pub b_ranks: usize,
    /// Wall clock of run A (ns).
    pub a_wall_ns: u64,
    /// Wall clock of run B (ns).
    pub b_wall_ns: u64,
    /// Cluster-aggregate divergences, largest |delta| first.
    pub cluster: Vec<DiffRow>,
    /// Per-rank divergences (empty when the rank counts differ),
    /// largest |delta| first.
    pub per_rank: Vec<DiffRow>,
}

impl TraceDiff {
    /// True when the two runs' profiles are indistinguishable.
    pub fn is_empty(&self) -> bool {
        self.cluster.is_empty() && self.per_rank.is_empty() && self.a_wall_ns == self.b_wall_ns
    }
}

/// Fold an exported Chrome trace into per-`(rank, lane, name)` busy
/// time. Returns a message naming the first offending line on malformed
/// input.
pub fn profile_chrome(text: &str) -> Result<RunProfile, String> {
    let trimmed = text.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return Err("trace is not a JSON array".into());
    }
    // Pass 1: lane labels from thread_name metadata. The exporter emits
    // all metadata before any event, but a hand-edited trace may not —
    // collecting labels up front keeps the profile order-insensitive.
    let mut labels: BTreeMap<(usize, u64), String> = BTreeMap::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if field_str(line, "ph") == Some("M") && field_str(line, "name") == Some("thread_name") {
            let (Some(pid), Some(tid)) = (field_num(line, "pid"), field_num(line, "tid")) else {
                continue;
            };
            // The label lives in args: {"name":"io"} — the *second*
            // "name" field on the line.
            let tail = &line[line.find("\"args\"").unwrap_or(0)..];
            if let Some(label) = field_str(tail, "name") {
                labels.insert((pid as usize, tid as u64), label.to_string());
            }
        }
    }

    let mut profile = RunProfile::default();
    let mut open: BTreeMap<(usize, u64), Vec<(u64, String)>> = BTreeMap::new();
    let mut ranks: BTreeMap<usize, ()> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {lineno}: not an event object"));
        }
        let ph = field_str(line, "ph").ok_or(format!("line {lineno}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let pid = field_num(line, "pid").ok_or(format!("line {lineno}: missing pid"))? as usize;
        let tid = field_num(line, "tid").ok_or(format!("line {lineno}: missing tid"))? as u64;
        let name = field_str(line, "name").ok_or(format!("line {lineno}: missing name"))?;
        let ts = ts_ns(line).ok_or(format!("line {lineno}: missing or negative ts"))?;
        ranks.insert(pid, ());
        profile.wall_ns = profile.wall_ns.max(ts);
        match ph {
            "B" => open
                .entry((pid, tid))
                .or_default()
                .push((ts, name.to_string())),
            "E" => {
                let Some((start, begin_name)) = open.entry((pid, tid)).or_default().pop() else {
                    return Err(format!(
                        "line {lineno}: unmatched end on pid {pid} tid {tid}"
                    ));
                };
                let lane = labels
                    .get(&(pid, tid))
                    .cloned()
                    .unwrap_or_else(|| format!("tid {tid}"));
                *profile.totals.entry((pid, lane, begin_name)).or_insert(0) +=
                    ts.saturating_sub(start);
            }
            // Instants and counters carry no duration; they advance the
            // wall clock above but add no busy time.
            "i" | "C" => {}
            other => return Err(format!("line {lineno}: unknown ph {other:?}")),
        }
    }
    profile.ranks = ranks.len();
    Ok(profile)
}

/// Align two profiles by `(rank, lane, name)` and collect every key
/// whose busy time differs.
pub fn diff_profiles(a: &RunProfile, b: &RunProfile) -> TraceDiff {
    // Cluster aggregates: totals per (lane, name) across all ranks.
    let fold = |p: &RunProfile| -> BTreeMap<(String, String), u64> {
        let mut agg = BTreeMap::new();
        for ((_, lane, name), ns) in &p.totals {
            *agg.entry((lane.clone(), name.clone())).or_insert(0) += ns;
        }
        agg
    };
    let (agg_a, agg_b) = (fold(a), fold(b));
    let mut cluster = Vec::new();
    let keys: std::collections::BTreeSet<_> = agg_a.keys().chain(agg_b.keys()).cloned().collect();
    for (lane, name) in keys {
        let a_ns = *agg_a.get(&(lane.clone(), name.clone())).unwrap_or(&0);
        let b_ns = *agg_b.get(&(lane.clone(), name.clone())).unwrap_or(&0);
        if a_ns != b_ns {
            cluster.push(DiffRow {
                rank: None,
                lane,
                name,
                a_ns,
                b_ns,
            });
        }
    }

    // Per-rank rows only when the rank spaces are the same — across
    // scales a rank-by-rank pairing would be meaningless.
    let mut per_rank = Vec::new();
    if a.ranks == b.ranks {
        let keys: std::collections::BTreeSet<_> =
            a.totals.keys().chain(b.totals.keys()).cloned().collect();
        for key in keys {
            let a_ns = *a.totals.get(&key).unwrap_or(&0);
            let b_ns = *b.totals.get(&key).unwrap_or(&0);
            if a_ns != b_ns {
                let (rank, lane, name) = key;
                per_rank.push(DiffRow {
                    rank: Some(rank),
                    lane,
                    name,
                    a_ns,
                    b_ns,
                });
            }
        }
    }
    let magnitude = |r: &DiffRow| std::cmp::Reverse(r.delta_ns().unsigned_abs());
    cluster.sort_by(|x, y| {
        magnitude(x)
            .cmp(&magnitude(y))
            .then_with(|| (&x.lane, &x.name).cmp(&(&y.lane, &y.name)))
    });
    per_rank.sort_by(|x, y| {
        magnitude(x)
            .cmp(&magnitude(y))
            .then_with(|| (&x.lane, &x.name, x.rank).cmp(&(&y.lane, &y.name, y.rank)))
    });
    TraceDiff {
        a_ranks: a.ranks,
        b_ranks: b.ranks,
        a_wall_ns: a.wall_ns,
        b_wall_ns: b.wall_ns,
        cluster,
        per_rank,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_delta(d: i128) -> String {
    let sign = if d < 0 { "-" } else { "+" };
    format!("{sign}{}", fmt_ns(d.unsigned_abs() as u64))
}

/// Render a [`TraceDiff`] as a human-readable report, listing at most
/// `top` rows per section.
pub fn render_diff(d: &TraceDiff, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run A: {} rank(s), wall {}  |  run B: {} rank(s), wall {}",
        d.a_ranks,
        fmt_ns(d.a_wall_ns),
        d.b_ranks,
        fmt_ns(d.b_wall_ns),
    );
    if d.is_empty() {
        out.push_str("traces are equivalent: no lane or phase diverged\n");
        return out;
    }
    if !d.cluster.is_empty() {
        let _ = writeln!(
            out,
            "\ncluster totals ({} diverging lane/phase pairs):",
            d.cluster.len()
        );
        let show_mean = d.a_ranks != d.b_ranks && d.a_ranks > 0 && d.b_ranks > 0;
        for row in d.cluster.iter().take(top) {
            let mut line = format!(
                "  {:<18} {:<22} A {:>12}  B {:>12}  {}",
                row.lane,
                row.name,
                fmt_ns(row.a_ns),
                fmt_ns(row.b_ns),
                fmt_delta(row.delta_ns()),
            );
            if show_mean {
                let _ = write!(
                    line,
                    "  (per-rank mean A {} vs B {})",
                    fmt_ns(row.a_ns / d.a_ranks as u64),
                    fmt_ns(row.b_ns / d.b_ranks as u64),
                );
            }
            out.push_str(&line);
            out.push('\n');
        }
        if d.cluster.len() > top {
            let _ = writeln!(out, "  ... {} more", d.cluster.len() - top);
        }
    }
    if !d.per_rank.is_empty() {
        let _ = writeln!(
            out,
            "\nper-rank rows ({} diverging, same rank space):",
            d.per_rank.len()
        );
        for row in d.per_rank.iter().take(top) {
            let _ = writeln!(
                out,
                "  rank {:<5} {:<18} {:<22} A {:>12}  B {:>12}  {}",
                row.rank.expect("per-rank row"),
                row.lane,
                row.name,
                fmt_ns(row.a_ns),
                fmt_ns(row.b_ns),
                fmt_delta(row.delta_ns()),
            );
        }
        if d.per_rank.len() > top {
            let _ = writeln!(out, "  ... {} more", d.per_rank.len() - top);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::export_chrome;
    use crate::event::{ArgVal, EventKind, Lane};
    use crate::sink::Tracer;

    fn trace_json(build: impl Fn(&Tracer), nranks: usize, wall: u64) -> String {
        let tracer = Tracer::new(nranks);
        build(&tracer);
        export_chrome(&tracer.finish(wall), None)
    }

    #[test]
    fn identical_exports_diff_empty() {
        let build = |t: &Tracer| {
            t.record(0, 0, Lane::Io, EventKind::Begin, "read".into(), Vec::new());
            t.record(0, 70, Lane::Io, EventKind::End, "".into(), Vec::new());
        };
        let a = profile_chrome(&trace_json(build, 2, 100)).unwrap();
        let b = profile_chrome(&trace_json(build, 2, 100)).unwrap();
        let d = diff_profiles(&a, &b);
        assert!(d.is_empty());
        assert!(render_diff(&d, 10).contains("equivalent"));
    }

    #[test]
    fn io_divergence_names_the_io_lane() {
        let short = |t: &Tracer| {
            t.record(1, 0, Lane::Io, EventKind::Begin, "read".into(), Vec::new());
            t.record(1, 10, Lane::Io, EventKind::End, "".into(), Vec::new());
        };
        let long = |t: &Tracer| {
            t.record(1, 0, Lane::Io, EventKind::Begin, "read".into(), Vec::new());
            t.record(1, 90, Lane::Io, EventKind::End, "".into(), Vec::new());
        };
        let a = profile_chrome(&trace_json(short, 2, 100)).unwrap();
        let b = profile_chrome(&trace_json(long, 2, 100)).unwrap();
        let d = diff_profiles(&a, &b);
        let row = d
            .cluster
            .iter()
            .find(|r| r.lane == "io")
            .expect("io lane diverges");
        assert_eq!(row.name, "read");
        assert_eq!(row.delta_ns(), 80);
        // Same rank count: the per-rank section pins it to rank 1.
        assert!(d
            .per_rank
            .iter()
            .any(|r| r.rank == Some(1) && r.lane == "io"));
        let text = render_diff(&d, 10);
        assert!(text.contains("io"), "{text}");
        assert!(text.contains("read"), "{text}");
    }

    #[test]
    fn slot_sub_lanes_diff_by_their_labels() {
        let slots = |t: &Tracer| {
            t.record(
                0,
                0,
                Lane::Search,
                EventKind::Begin,
                "search.slot".into(),
                vec![("slot", ArgVal::U64(1)), ("slice", ArgVal::U64(0))],
            );
            t.record(0, 40, Lane::Search, EventKind::End, "".into(), Vec::new());
        };
        let serial = |t: &Tracer| {
            t.record(
                0,
                0,
                Lane::Search,
                EventKind::Begin,
                "search.fragment".into(),
                Vec::new(),
            );
            t.record(0, 40, Lane::Search, EventKind::End, "".into(), Vec::new());
        };
        let a = profile_chrome(&trace_json(serial, 1, 50)).unwrap();
        let b = profile_chrome(&trace_json(slots, 1, 50)).unwrap();
        let d = diff_profiles(&a, &b);
        assert!(
            d.cluster.iter().any(|r| r.lane == "search slot 1"),
            "slot sub-lane appears as its own row: {:?}",
            d.cluster
        );
        assert!(d.cluster.iter().any(|r| r.lane == "search"));
    }

    #[test]
    fn differing_scales_aggregate_without_rank_rows() {
        let build = |nranks: usize| {
            move |t: &Tracer| {
                for r in 0..nranks {
                    t.record(r, 0, Lane::Net, EventKind::Begin, "send".into(), Vec::new());
                    t.record(r, 20, Lane::Net, EventKind::End, "".into(), Vec::new());
                }
            }
        };
        let a = profile_chrome(&trace_json(build(2), 2, 30)).unwrap();
        let b = profile_chrome(&trace_json(build(8), 8, 30)).unwrap();
        let d = diff_profiles(&a, &b);
        assert!(d.per_rank.is_empty(), "no rank pairing across scales");
        let row = d.cluster.iter().find(|r| r.lane == "net").unwrap();
        assert_eq!(row.a_ns, 40);
        assert_eq!(row.b_ns, 160);
        let text = render_diff(&d, 10);
        assert!(text.contains("per-rank mean"), "{text}");
    }

    #[test]
    fn profile_rejects_malformed_input() {
        assert!(profile_chrome("nope").is_err());
        assert!(profile_chrome("[\njunk\n]\n").is_err());
        let bad_end = "[\n{\"name\":\"x\",\"ph\":\"E\",\"pid\":0,\"tid\":1,\"ts\":1.000}\n]\n";
        assert!(profile_chrome(bad_end).unwrap_err().contains("unmatched"));
    }

    #[test]
    fn wall_clock_only_divergence_is_reported() {
        let build = |t: &Tracer| {
            t.record(
                0,
                5,
                Lane::Runtime,
                EventKind::Instant,
                "x".into(),
                Vec::new(),
            );
        };
        let a = profile_chrome(&trace_json(build, 1, 10)).unwrap();
        let mut b = a.clone();
        b.wall_ns += 1_500;
        let d = diff_profiles(&a, &b);
        assert!(!d.is_empty());
        assert!(d.cluster.is_empty());
        let text = render_diff(&d, 10);
        assert!(text.contains("wall"), "{text}");
    }
}
