//! # tracelog
//!
//! The cluster-wide observability plane: structured span/event tracing
//! stamped with the discrete-event simulator's virtual clock.
//!
//! Simulated ranks run as resumable continuations on `simcluster`'s
//! worker pool, so the plane hangs off a thread-local slot that the
//! engine fills per *resumption*: each rank's [`RankHandle`] (rank id +
//! virtual-clock closure) is swapped in before the rank runs and back
//! out when it yields. Instrumented code anywhere in the stack calls
//! the free functions ([`span`], [`instant`], [`counter`], [`phase`])
//! without threading a handle through every signature; when no tracer
//! is installed they are no-ops, so untraced runs pay almost nothing.
//!
//! The pieces:
//!
//! * [`Tracer`] — per-rank ring-buffered event sinks, merged
//!   deterministically into a [`Trace`] at run end;
//! * [`Counters`] — the one counter registry. `simcluster`'s phase
//!   accounting and `parafs`'s per-class I/O tallies are both stored in
//!   this type, so there is exactly one accounting path;
//! * [`chrome`] — a Chrome `trace_event` JSON exporter (one "process"
//!   per rank, one "thread" per subsystem [`Lane`]) loadable in
//!   Perfetto;
//! * [`analyze`] — flat per-rank phase timelines and a cluster-wide
//!   critical-path phase breakdown, both exact partitions of the
//!   virtual wall clock in integer nanoseconds;
//! * [`check`] — a schema validator for the exported JSON (monotonic
//!   timestamps, balanced begin/end pairs), used by `trace-check` in CI;
//! * [`diff`] — aligns two exported runs by `(rank, lane, phase)` and
//!   reports which lane/phase diverged and by how much, used by
//!   `trace-diff` to compare scale-sweep runs.
//!
//! ## Clock domain
//!
//! All timestamps are **virtual nanoseconds** since simulation start —
//! the same integer clock `simcluster::SimTime` wraps. Real (measured)
//! compute time is charged to the virtual clock by the engine before
//! any event is stamped, so traces are deterministic for a fixed seed.

#![warn(missing_docs)]

pub mod analyze;
pub mod check;
pub mod chrome;
mod counters;
pub mod diff;
mod event;
mod sink;

pub use counters::Counters;
pub use event::{ArgVal, Event, EventKind, Lane};
pub use sink::{
    closed_span, counter, install, instant, instant_at, is_installed, now, phase, rank_handle,
    span, span_args, InstallGuard, RankHandle, Span, Trace, Tracer,
};
