//! # simcluster
//!
//! A deterministic discrete-event simulator for a message-passing cluster
//! — the substitute for the SGI Altix and the IBM blade cluster the paper
//! ran on.
//!
//! Every simulated MPI rank is a resumable continuation (a stackful
//! [`fiber`]) executed by a small worker pool and coscheduled by the
//! [`engine`] so exactly one rank runs at a time against a shared
//! virtual clock — 512-rank runs need `pool + 1` OS threads, not 512.
//! Communication and I/O charge *modeled* time; computation can charge
//! either modeled time ([`engine::RankCtx::charge`]) or the *measured*
//! wall time of real code ([`engine::RankCtx::run_measured`]), which is
//! how the benchmark harnesses embed genuine BLAST searches in simulated
//! multi-hundred-rank runs.
//!
//! Services built on the [`engine::SimHandle`] (the `parafs` file system,
//! the `mpisim` communication layer) can schedule and cancel wakes for
//! blocked ranks, enabling contention models that retime pending
//! operations as load changes.

#![warn(missing_docs)]

pub mod engine;
pub mod fiber;
pub mod metrics;
pub mod time;

pub use engine::{
    default_pool_threads, FaultPlan, FaultSpec, FaultTrigger, FaultySimOutcome, Message, RankCtx,
    Sim, SimError, SimHandle, SimOutcome, WakeId,
};
pub use metrics::PhaseTimes;
pub use time::{SimDuration, SimTime};
