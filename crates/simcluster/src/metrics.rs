//! Per-rank phase timing, the currency of every figure in the paper.
//!
//! Rank bodies wrap their stages (`copy`, `input`, `search`, `output`,
//! `other`) in [`PhaseTimes::timed`] and return the table; harnesses merge
//! tables across ranks and print the breakdowns of Table 1 / Figures 1-4.
//!
//! Storage is a [`tracelog::Counters`] registry (phase name → virtual
//! nanoseconds) — the same accounting type the I/O tallies use — so
//! there is exactly one counter path in the suite. Every [`PhaseTimes::add`]
//! additionally mirrors the charge onto the calling rank's
//! [`tracelog::Lane::Phase`] trace timeline when a tracer is installed,
//! which is how the observability plane reconstructs measured per-rank
//! phase timelines without any extra instrumentation in rank bodies.

use tracelog::Counters;

use crate::time::{SimDuration, SimTime};

/// Accumulated virtual time per named phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    counters: Counters,
}

impl PhaseTimes {
    /// An empty table.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Add `d` to `phase`, and mirror the charge as a retroactive span
    /// ending now on the rank's trace (no-op when untraced).
    pub fn add(&mut self, phase: &str, d: SimDuration) {
        self.counters.add(phase, d.0);
        tracelog::phase(phase, d.0);
    }

    /// Time accumulated in `phase` (zero if never recorded).
    pub fn get(&self, phase: &str) -> SimDuration {
        SimDuration(self.counters.get(phase))
    }

    /// Sum of all phases.
    pub fn total(&self) -> SimDuration {
        SimDuration(self.counters.total())
    }

    /// Iterate `(phase, duration)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimDuration)> {
        self.counters.iter().map(|(k, v)| (k, SimDuration(v)))
    }

    /// Merge another table into this one (summing shared phases).
    /// Aggregation only — nothing is mirrored to the trace.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.counters.merge(&other.counters);
    }

    /// Pointwise maximum with another table — the "slowest rank" view
    /// used when phases run concurrently across ranks. Aggregation only.
    pub fn max_merge(&mut self, other: &PhaseTimes) {
        self.counters.max_merge(&other.counters);
    }

    /// The underlying counter registry (phase name → nanoseconds).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Time a closure with a virtual clock sampled before and after, and
    /// record it under `phase`. `now` supplies the current virtual time.
    pub fn timed<T>(&mut self, phase: &str, now: impl Fn() -> SimTime, f: impl FnOnce() -> T) -> T {
        let start = now();
        let out = f();
        self.add(phase, now() - start);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut p = PhaseTimes::new();
        p.add("search", SimDuration::from_secs(2));
        p.add("search", SimDuration::from_secs(3));
        p.add("output", SimDuration::from_secs(1));
        assert_eq!(p.get("search"), SimDuration::from_secs(5));
        assert_eq!(p.get("missing"), SimDuration::ZERO);
        assert_eq!(p.total(), SimDuration::from_secs(6));
        assert_eq!(p.counters().get("search"), 5_000_000_000);
    }

    #[test]
    fn merge_sums_and_max_merge_maxes() {
        let mut a = PhaseTimes::new();
        a.add("x", SimDuration::from_secs(2));
        let mut b = PhaseTimes::new();
        b.add("x", SimDuration::from_secs(3));
        b.add("y", SimDuration::from_secs(1));
        let mut sum = a.clone();
        sum.merge(&b);
        assert_eq!(sum.get("x"), SimDuration::from_secs(5));
        assert_eq!(sum.get("y"), SimDuration::from_secs(1));
        a.max_merge(&b);
        assert_eq!(a.get("x"), SimDuration::from_secs(3));
        assert_eq!(a.get("y"), SimDuration::from_secs(1));
    }

    #[test]
    fn timed_records_elapsed() {
        let mut p = PhaseTimes::new();
        let fake_clock = std::cell::Cell::new(SimTime::ZERO);
        let out = p.timed(
            "stage",
            || fake_clock.get(),
            || {
                fake_clock.set(SimTime(42));
                "done"
            },
        );
        assert_eq!(out, "done");
        assert_eq!(p.get("stage"), SimDuration(42));
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut p = PhaseTimes::new();
        p.add("b", SimDuration(1));
        p.add("a", SimDuration(2));
        let names: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn charges_mirror_to_installed_tracer() {
        let tracer = tracelog::Tracer::new(1);
        let clock = std::rc::Rc::new(std::cell::Cell::new(0u64));
        {
            let c = clock.clone();
            let _g = tracelog::install(tracer.clone(), 0, move || c.get());
            let mut p = PhaseTimes::new();
            clock.set(500);
            p.add("copy", SimDuration(200));
            // Aggregation merges must not re-mirror.
            let other = {
                let mut o = PhaseTimes::new();
                clock.set(900);
                o.add("search", SimDuration(100));
                o
            };
            p.merge(&other);
            p.max_merge(&other);
        }
        let trace = tracer.finish(1000);
        let totals = tracelog::analyze::rank_phase_totals(&trace, 0);
        assert_eq!(totals.get("copy"), 200); // [300, 500]
        assert_eq!(totals.get("search"), 100); // [800, 900] — charged once
        assert_eq!(totals.get("other"), 700);
    }
}
