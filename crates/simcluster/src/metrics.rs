//! Per-rank phase timing, the currency of every figure in the paper.
//!
//! Rank bodies wrap their stages (`copy`, `input`, `search`, `output`,
//! `other`) in [`PhaseTimes::timed`] and return the table; harnesses merge
//! tables across ranks and print the breakdowns of Table 1 / Figures 1-4.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Accumulated virtual time per named phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    phases: BTreeMap<String, SimDuration>,
}

impl PhaseTimes {
    /// An empty table.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Add `d` to `phase`.
    pub fn add(&mut self, phase: &str, d: SimDuration) {
        *self.phases.entry(phase.to_string()).or_default() += d;
    }

    /// Time accumulated in `phase` (zero if never recorded).
    pub fn get(&self, phase: &str) -> SimDuration {
        self.phases.get(phase).copied().unwrap_or_default()
    }

    /// Sum of all phases.
    pub fn total(&self) -> SimDuration {
        self.phases.values().fold(SimDuration::ZERO, |a, &b| a + b)
    }

    /// Iterate `(phase, duration)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimDuration)> {
        self.phases.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merge another table into this one (summing shared phases).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (k, &v) in &other.phases {
            *self.phases.entry(k.clone()).or_default() += v;
        }
    }

    /// Pointwise maximum with another table — the "slowest rank" view
    /// used when phases run concurrently across ranks.
    pub fn max_merge(&mut self, other: &PhaseTimes) {
        for (k, &v) in &other.phases {
            let e = self.phases.entry(k.clone()).or_default();
            if v > *e {
                *e = v;
            }
        }
    }

    /// Time a closure with a virtual clock sampled before and after, and
    /// record it under `phase`. `now` supplies the current virtual time.
    pub fn timed<T>(&mut self, phase: &str, now: impl Fn() -> SimTime, f: impl FnOnce() -> T) -> T {
        let start = now();
        let out = f();
        self.add(phase, now() - start);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut p = PhaseTimes::new();
        p.add("search", SimDuration::from_secs(2));
        p.add("search", SimDuration::from_secs(3));
        p.add("output", SimDuration::from_secs(1));
        assert_eq!(p.get("search"), SimDuration::from_secs(5));
        assert_eq!(p.get("missing"), SimDuration::ZERO);
        assert_eq!(p.total(), SimDuration::from_secs(6));
    }

    #[test]
    fn merge_sums_and_max_merge_maxes() {
        let mut a = PhaseTimes::new();
        a.add("x", SimDuration::from_secs(2));
        let mut b = PhaseTimes::new();
        b.add("x", SimDuration::from_secs(3));
        b.add("y", SimDuration::from_secs(1));
        let mut sum = a.clone();
        sum.merge(&b);
        assert_eq!(sum.get("x"), SimDuration::from_secs(5));
        assert_eq!(sum.get("y"), SimDuration::from_secs(1));
        a.max_merge(&b);
        assert_eq!(a.get("x"), SimDuration::from_secs(3));
        assert_eq!(a.get("y"), SimDuration::from_secs(1));
    }

    #[test]
    fn timed_records_elapsed() {
        let mut p = PhaseTimes::new();
        let fake_clock = std::cell::Cell::new(SimTime::ZERO);
        let out = p.timed(
            "stage",
            || fake_clock.get(),
            || {
                fake_clock.set(SimTime(42));
                "done"
            },
        );
        assert_eq!(out, "done");
        assert_eq!(p.get("stage"), SimDuration(42));
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut p = PhaseTimes::new();
        p.add("b", SimDuration(1));
        p.add("a", SimDuration(2));
        let names: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
