//! Stackful fibers: the resumable continuations behind pooled rank
//! execution.
//!
//! A [`Fiber`] owns a private call stack. [`Fiber::resume`] switches the
//! current OS thread onto that stack and runs the fiber's entry function
//! until it either returns (the fiber is *done*) or calls [`suspend`],
//! which switches back to the resumer. Each direction carries one
//! `usize`: the resumer's argument becomes `suspend`'s return value
//! inside the fiber, and the fiber's `suspend` code (or the entry's
//! return value) becomes `resume`'s return value. The engine layers its
//! own yield protocol on top of these codes.
//!
//! Design constraints, in order:
//!
//! - **No new dependencies.** The context switch is ~20 instructions of
//!   `global_asm!` per architecture (x86-64 SysV and AArch64 AAPCS64),
//!   saving exactly the callee-saved registers plus the FP control
//!   words. There is no `libc` in this workspace, so stacks come from
//!   [`std::alloc`] rather than `mmap`: large allocations are lazily
//!   committed by the allocator anyway, and a canary word at the low end
//!   of each stack (checked on every switch back) substitutes for a
//!   guard page. A clobbered canary aborts the process — a smashed
//!   stack cannot be unwound safely.
//! - **Deterministic teardown.** [`Fiber::unwind`] resumes a suspended
//!   fiber with a reserved argument that makes `suspend` raise
//!   [`ForcedUnwind`], so destructors on the fiber stack run
//!   *synchronously in the caller* — the engine uses this to tear down
//!   killed ranks at their kill time and to drain the pool on a panic
//!   or deadlock. Dropping a suspended fiber force-unwinds it the same
//!   way.
//! - **Thread affinity.** A fiber must always be resumed from the same
//!   OS thread (the engine pins rank `r` to pool worker `r % pool`):
//!   code running inside the fiber may cache thread-locals of the
//!   resuming thread, and migrating a live stack between threads would
//!   invalidate them.

use std::alloc::{alloc, dealloc, Layout};
use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Panic payload raised inside a fiber by [`Fiber::unwind`] (and by
/// dropping a suspended fiber) to run the destructors on its stack.
/// Code inside a fiber that catches panics must let this one pass, or
/// rethrow it, for teardown to terminate.
pub struct ForcedUnwind;

/// Completion code returned by [`Fiber::resume`] or [`Fiber::unwind`]
/// when a [`ForcedUnwind`] unwound the whole entry function (i.e. the
/// entry did not catch it and map it to its own code).
pub const UNWOUND: usize = usize::MAX - 1;

/// Reserved resume argument that triggers the forced unwind;
/// [`suspend`] never returns it.
const RESUME_FORCED_UNWIND: usize = usize::MAX;

/// Stack alignment: generous enough for any ABI frame requirement.
const STACK_ALIGN: usize = 64;

/// Canary written at the low end of every stack and checked after each
/// switch out of the fiber.
const CANARY: u64 = 0x5afe_57ac_4ca8_a87e;

/// Minimum stack size accepted by [`Fiber::new`].
pub const MIN_STACK: usize = 16 * 1024;

// ---------------------------------------------------------------------
// Context switch (x86-64 SysV).
//
// `pio_fiber_switch(save, to, arg)` pushes the callee-saved state on the
// current stack, stores the resulting stack pointer through `save`,
// switches to the stack pointer `to`, restores the state found there,
// and returns `arg` to whatever call site that stack was suspended in.
// A brand-new fiber stack is seeded (see `seed_stack`) so that the first
// switch "returns" into `pio_fiber_boot`, which forwards the fiber
// pointer (parked in rbx/x19) and `arg` to `pio_fiber_main`.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    r#"
    .text
    .p2align 4
    .globl pio_fiber_switch
pio_fiber_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    sub rsp, 8
    stmxcsr [rsp]
    fnstcw [rsp + 4]
    mov [rdi], rsp
    mov rsp, rsi
    ldmxcsr [rsp]
    fldcw [rsp + 4]
    add rsp, 8
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    mov rax, rdx
    ret

    .p2align 4
    .globl pio_fiber_boot
pio_fiber_boot:
    mov rdi, rbx
    mov rsi, rax
    xor ebp, ebp
    call pio_fiber_main
    ud2
"#
);

#[cfg(target_arch = "aarch64")]
std::arch::global_asm!(
    r#"
    .text
    .p2align 4
    .globl pio_fiber_switch
pio_fiber_switch:
    sub sp, sp, #160
    stp x19, x20, [sp, #0]
    stp x21, x22, [sp, #16]
    stp x23, x24, [sp, #32]
    stp x25, x26, [sp, #48]
    stp x27, x28, [sp, #64]
    stp x29, x30, [sp, #80]
    stp d8, d9, [sp, #96]
    stp d10, d11, [sp, #112]
    stp d12, d13, [sp, #128]
    stp d14, d15, [sp, #144]
    mov x9, sp
    str x9, [x0]
    mov sp, x1
    ldp x19, x20, [sp, #0]
    ldp x21, x22, [sp, #16]
    ldp x23, x24, [sp, #32]
    ldp x25, x26, [sp, #48]
    ldp x27, x28, [sp, #64]
    ldp x29, x30, [sp, #80]
    ldp d8, d9, [sp, #96]
    ldp d10, d11, [sp, #112]
    ldp d12, d13, [sp, #128]
    ldp d14, d15, [sp, #144]
    add sp, sp, #160
    mov x0, x2
    ret

    .p2align 4
    .globl pio_fiber_boot
pio_fiber_boot:
    mov x1, x0
    mov x0, x19
    mov x29, xzr
    bl pio_fiber_main
    brk #0x1
"#
);

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!(
    "simcluster's pooled engine needs a fiber context switch for this \
     architecture; x86_64 and aarch64 are provided in fiber.rs"
);

extern "C" {
    fn pio_fiber_switch(save: *mut *mut u8, to: *mut u8, arg: usize) -> usize;
    fn pio_fiber_boot();
}

// ---------------------------------------------------------------------
// Stack memory.
// ---------------------------------------------------------------------

struct Stack {
    base: *mut u8,
    layout: Layout,
}

impl Stack {
    fn new(size: usize) -> Stack {
        let size = size.max(MIN_STACK).next_multiple_of(STACK_ALIGN);
        let layout = Layout::from_size_align(size, STACK_ALIGN).expect("valid stack layout");
        // Untouched pages of a large allocation are lazily committed, so
        // oversizing fiber stacks costs address space, not memory.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "fiber stack allocation failed");
        unsafe { (base as *mut u64).write(CANARY) };
        Stack { base, layout }
    }

    /// One past the highest usable byte; aligned to `STACK_ALIGN`.
    fn top(&self) -> *mut u8 {
        unsafe { self.base.add(self.layout.size()) }
    }

    fn canary_ok(&self) -> bool {
        unsafe { (self.base as *const u64).read() == CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe { dealloc(self.base, self.layout) };
    }
}

// ---------------------------------------------------------------------
// Fiber.
// ---------------------------------------------------------------------

type Entry = Box<dyn FnOnce(usize) -> usize>;

struct FiberInner {
    stack: Stack,
    /// The fiber's saved stack pointer while it is suspended (seeded to
    /// the bootstrap frame before the first resume).
    fiber_sp: Cell<*mut u8>,
    /// The resumer's saved stack pointer while the fiber runs.
    caller_sp: Cell<*mut u8>,
    /// Entry function; taken by `pio_fiber_main` on first resume. The
    /// `'static` here is a lie told via transmute — `Fiber<'a>` carries
    /// the real lifetime and cannot outlive it.
    entry: Cell<Option<Entry>>,
    started: Cell<bool>,
    done: Cell<bool>,
}

thread_local! {
    /// The fiber currently running on this thread, for [`suspend`].
    static CURRENT: Cell<*const FiberInner> = const { Cell::new(std::ptr::null()) };
}

/// A suspended computation with its own stack. See the module docs.
pub struct Fiber<'a> {
    inner: Box<FiberInner>,
    _life: PhantomData<&'a ()>,
}

impl<'a> Fiber<'a> {
    /// Create a fiber that will run `entry` on a fresh stack of at least
    /// `stack_size` bytes (clamped up to [`MIN_STACK`]). The first
    /// [`Fiber::resume`] argument is passed to `entry`; the entry's
    /// return value becomes the final resume's result. `entry` must not
    /// unwind: catch panics inside and map them to a code (an escaped
    /// [`ForcedUnwind`] is tolerated and reported as [`UNWOUND`]; any
    /// other escaped panic aborts the process, since it cannot cross
    /// the context switch).
    pub fn new<F>(stack_size: usize, entry: F) -> Fiber<'a>
    where
        F: FnOnce(usize) -> usize + 'a,
    {
        let boxed: Box<dyn FnOnce(usize) -> usize + 'a> = Box::new(entry);
        // Erase the lifetime for storage; `PhantomData<&'a ()>` on the
        // fiber restores the borrow so the closure's captures must
        // outlive the fiber itself.
        let boxed: Entry = unsafe { std::mem::transmute(boxed) };
        let inner = Box::new(FiberInner {
            stack: Stack::new(stack_size),
            fiber_sp: Cell::new(std::ptr::null_mut()),
            caller_sp: Cell::new(std::ptr::null_mut()),
            entry: Cell::new(Some(boxed)),
            started: Cell::new(false),
            done: Cell::new(false),
        });
        seed_stack(&inner);
        Fiber {
            inner,
            _life: PhantomData,
        }
    }

    /// Has the entry function been entered at least once?
    pub fn started(&self) -> bool {
        self.inner.started.get()
    }

    /// Has the entry function returned (or fully unwound)?
    pub fn is_done(&self) -> bool {
        self.inner.done.get()
    }

    /// Switch onto the fiber's stack until it suspends or completes.
    /// Returns the fiber's `suspend` code, the entry's return value, or
    /// [`UNWOUND`]. `arg` reaches the fiber as `entry`'s parameter (on
    /// first resume) or as [`suspend`]'s return value.
    ///
    /// # Panics
    /// Panics if the fiber is already done, or if `arg` is one of the
    /// reserved control values (`usize::MAX`, [`UNWOUND`]).
    pub fn resume(&mut self, arg: usize) -> usize {
        assert!(!self.inner.done.get(), "resumed a finished fiber");
        assert!(
            arg != RESUME_FORCED_UNWIND && arg != UNWOUND,
            "resume argument {arg:#x} is reserved"
        );
        self.switch_in(arg)
    }

    /// Tear the fiber down: run every destructor on its stack by raising
    /// [`ForcedUnwind`] at its suspension point, synchronously, on this
    /// thread. Returns `None` if there was nothing to unwind (the fiber
    /// never started, or had already completed — the unstarted entry
    /// function is dropped without running); otherwise the completion
    /// code ([`UNWOUND`] unless the entry caught the unwind and returned
    /// its own code).
    pub fn unwind(&mut self) -> Option<usize> {
        if self.inner.done.get() {
            return None;
        }
        if !self.inner.started.get() {
            self.inner.entry.take();
            self.inner.done.set(true);
            return None;
        }
        // If the entry swallows the unwind and suspends again, insist:
        // teardown must terminate (mirrors the old gate-shutdown loop,
        // which re-raised on every subsequent wait).
        loop {
            let code = self.switch_in(RESUME_FORCED_UNWIND);
            if self.inner.done.get() {
                return Some(code);
            }
        }
    }

    fn switch_in(&mut self, arg: usize) -> usize {
        let inner: *const FiberInner = &*self.inner;
        self.inner.started.set(true);
        let prev = CURRENT.with(|c| c.replace(inner));
        let code = unsafe {
            pio_fiber_switch(
                self.inner.caller_sp.as_ptr(),
                self.inner.fiber_sp.get(),
                arg,
            )
        };
        CURRENT.with(|c| c.set(prev));
        if !self.inner.stack.canary_ok() {
            eprintln!("fatal: fiber stack overflow (canary clobbered); aborting");
            std::process::abort();
        }
        code
    }
}

impl Drop for Fiber<'_> {
    fn drop(&mut self) {
        if self.inner.started.get() && !self.inner.done.get() {
            let _ = self.unwind();
        } else if !self.inner.done.get() {
            // Never started: just discard the entry function.
            self.inner.entry.take();
        }
    }
}

/// Suspend the fiber running on this thread, yielding `code` to its
/// resumer. Returns the argument of the next [`Fiber::resume`].
///
/// # Panics
/// Panics if called outside a running fiber. Raises [`ForcedUnwind`]
/// (via `resume_unwind`, skipping the panic hook) when the fiber is
/// being torn down by [`Fiber::unwind`] or drop.
pub fn suspend(code: usize) -> usize {
    let ptr = CURRENT.with(|c| c.get());
    assert!(
        !ptr.is_null(),
        "fiber::suspend called outside a running fiber"
    );
    debug_assert!(
        code != RESUME_FORCED_UNWIND && code != UNWOUND,
        "suspend code {code:#x} is reserved"
    );
    // The inner is owned by the suspended `Fiber`, which the resumer
    // keeps alive for as long as the fiber is live.
    let inner = unsafe { &*ptr };
    let arg = unsafe { pio_fiber_switch(inner.fiber_sp.as_ptr(), inner.caller_sp.get(), code) };
    if arg == RESUME_FORCED_UNWIND {
        std::panic::resume_unwind(Box::new(ForcedUnwind));
    }
    arg
}

/// Is the current thread executing inside a fiber?
pub fn in_fiber() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Entry glue, jumped to by `pio_fiber_boot` on a fiber's first resume.
/// Runs the entry function and switches back out with its completion
/// code; never returns.
#[no_mangle]
extern "C" fn pio_fiber_main(inner: *const FiberInner, first_arg: usize) -> ! {
    // The inner outlives the whole fiber execution: the resuming `Fiber`
    // owns it and cannot drop while the fiber is running.
    let inner = unsafe { &*inner };
    let entry = inner
        .entry
        .take()
        .expect("fiber entry present at first resume");
    let code = match catch_unwind(AssertUnwindSafe(move || entry(first_arg))) {
        Ok(code) => code,
        Err(payload) if payload.is::<ForcedUnwind>() => UNWOUND,
        Err(_) => {
            // A foreign panic cannot unwind across the context switch.
            eprintln!("fatal: panic escaped a fiber entry function; aborting");
            std::process::abort();
        }
    };
    inner.done.set(true);
    unsafe {
        pio_fiber_switch(inner.fiber_sp.as_ptr(), inner.caller_sp.get(), code);
    }
    // A finished fiber must never be resumed again.
    eprintln!("fatal: finished fiber resumed; aborting");
    std::process::abort();
}

/// Seed a fresh stack so the first `pio_fiber_switch` onto it pops a
/// well-formed callee-saved frame and "returns" into `pio_fiber_boot`
/// with the fiber pointer in the parked register.
fn seed_stack(inner: &FiberInner) {
    let top = inner.stack.top();
    let inner_ptr = inner as *const FiberInner as u64;
    let boot = pio_fiber_boot as *const () as usize as u64;
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // Frame layout must mirror the asm pops: [fpu word][r15][r14]
        // [r13][r12][rbx][rbp][return address]. mxcsr/x87cw get the
        // ABI-default values (all exceptions masked, 64-bit precision).
        let sp = top.sub(64);
        let slots = sp as *mut u64;
        slots.add(0).write(0x1F80 | (0x037F << 32));
        slots.add(1).write(0); // r15
        slots.add(2).write(0); // r14
        slots.add(3).write(0); // r13
        slots.add(4).write(0); // r12
        slots.add(5).write(inner_ptr); // rbx -> fiber pointer for boot
        slots.add(6).write(0); // rbp
        slots.add(7).write(boot); // return address
        inner.fiber_sp.set(sp);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        // Mirrors the asm ldp sequence: x19..x28, x29/x30, d8..d15.
        let sp = top.sub(160);
        let slots = sp as *mut u64;
        for i in 0..20 {
            slots.add(i).write(0);
        }
        slots.add(0).write(inner_ptr); // x19 -> fiber pointer for boot
        slots.add(11).write(boot); // x30 -> bootstrap return address
        inner.fiber_sp.set(sp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn resume_and_suspend_carry_values_both_ways() {
        let mut f = Fiber::new(MIN_STACK, |first| {
            let mut v = first;
            for _ in 0..3 {
                v = suspend(v * 2);
            }
            v * 2
        });
        assert!(!f.started());
        assert_eq!(f.resume(3), 6);
        assert!(f.started() && !f.is_done());
        assert_eq!(f.resume(5), 10);
        assert_eq!(f.resume(7), 14);
        assert_eq!(f.resume(9), 18);
        assert!(f.is_done());
    }

    #[test]
    fn fibers_interleave_independently() {
        let make = |step: usize| {
            Fiber::new(MIN_STACK, move |mut v| loop {
                v = suspend(v + step);
            })
        };
        let mut a = make(1);
        let mut b = make(100);
        assert_eq!(a.resume(0), 1);
        assert_eq!(b.resume(0), 100);
        assert_eq!(a.resume(1), 2);
        assert_eq!(b.resume(100), 200);
        drop(a);
        drop(b);
    }

    #[test]
    fn float_state_survives_suspension() {
        let mut f = Fiber::new(MIN_STACK, |_| {
            let x = 0.1f64 + 0.2;
            suspend(0);
            let y = x * 10.0;
            (y.round()) as usize
        });
        f.resume(0);
        // Interleave float work on the resuming thread.
        let noise: f64 = (1..100).map(|i| 1.0 / i as f64).sum();
        assert!(noise > 0.0);
        assert_eq!(f.resume(0), 3);
    }

    #[test]
    fn dropping_a_suspended_fiber_runs_destructors() {
        struct SetOnDrop(Rc<Cell<bool>>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let dropped = Rc::new(Cell::new(false));
        let flag = Rc::clone(&dropped);
        let f = Fiber::new(MIN_STACK, move |_| {
            let _guard = SetOnDrop(flag);
            suspend(1);
            unreachable!("torn down before a second resume");
        });
        let mut f = f;
        assert_eq!(f.resume(0), 1);
        assert!(!dropped.get());
        drop(f);
        assert!(dropped.get());
    }

    #[test]
    fn unwind_reports_entry_code_when_caught() {
        let mut f = Fiber::new(MIN_STACK, |_| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                suspend(1);
            }));
            match r {
                Err(p) if p.is::<ForcedUnwind>() => 42,
                _ => 0,
            }
        });
        assert_eq!(f.resume(0), 1);
        assert_eq!(f.unwind(), Some(42));
        assert!(f.is_done());
    }

    #[test]
    fn unwind_without_catch_reports_unwound() {
        let mut f = Fiber::new(MIN_STACK, |_| {
            suspend(1);
            unreachable!()
        });
        assert_eq!(f.resume(0), 1);
        assert_eq!(f.unwind(), Some(UNWOUND));
    }

    #[test]
    fn unwinding_an_unstarted_fiber_drops_the_entry() {
        struct SetOnDrop(Rc<Cell<bool>>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.set(true);
            }
        }
        let dropped = Rc::new(Cell::new(false));
        let guard = SetOnDrop(Rc::clone(&dropped));
        let mut f = Fiber::new(MIN_STACK, move |arg| {
            let _hold = &guard;
            arg
        });
        assert_eq!(f.unwind(), None);
        assert!(dropped.get(), "unstarted entry dropped without running");
        assert!(f.is_done());
    }

    #[test]
    fn deep_call_chains_fit_the_stack() {
        fn rec(depth: usize) -> usize {
            // A little stack ballast per frame.
            let pad = [depth; 8];
            if depth == 0 {
                suspend(pad[0]);
                0
            } else {
                rec(depth - 1) + 1
            }
        }
        let mut f = Fiber::new(256 * 1024, |_| rec(500));
        assert_eq!(f.resume(0), 0);
        assert_eq!(f.resume(0), 500);
    }

    #[test]
    fn in_fiber_reflects_context() {
        assert!(!in_fiber());
        let mut f = Fiber::new(MIN_STACK, |_| usize::from(in_fiber()));
        assert_eq!(f.resume(0), 1);
        assert!(!in_fiber());
    }
}
