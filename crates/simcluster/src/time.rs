//! Virtual time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since epoch as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From whole microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From fractional seconds, rounding up so nonzero spans never vanish.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).ceil() as u64)
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let t = SimTime::ZERO + SimDuration::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.0, 2_500_000_000);
        assert_eq!(t.as_secs_f64(), 2.5);
        assert_eq!(t - SimTime(500_000_000), SimDuration::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        assert_eq!(SimDuration::from_secs_f64(1e-12).0, 1);
        assert_eq!(SimDuration::from_secs_f64(0.0).0, 0);
        assert_eq!(SimDuration::from_secs_f64(1.5).0, 1_500_000_000);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_duration_panics() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime(1_500_000).to_string(), "0.001500s");
        assert_eq!(SimDuration::from_micros(7).to_string(), "0.000007s");
    }
}
